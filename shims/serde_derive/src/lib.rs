// Vendored shim: lint-exempt from the workspace unwrap/expect audit.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the build container
//! has no `syn`/`quote`), so only the item shapes this workspace actually
//! derives are supported:
//!
//! - structs with named fields,
//! - tuple structs (newtype structs serialise transparently),
//! - unit structs,
//! - enums with unit, tuple and struct variants.
//!
//! Generics and `#[serde(...)]` attributes are rejected with a compile
//! error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour; see the `serde` shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives `serde::Deserialize` (value-tree flavour; see the `serde` shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .expect("literal error");
        }
    };
    let code = match dir {
        Direction::Serialize => gen_serialize(&name, &shape),
        Direction::Deserialize => gen_deserialize(&name, &shape),
    };
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid Rust for {name}: {e:?}\n{code}"))
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Skips outer attributes (`#[...]`, including doc comments) and a
/// visibility qualifier at position `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            (Some(TokenTree::Ident(id)), next) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = next {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) / pub(super) / ...
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    let shape = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_field_names(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_top_level_items(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream())?)
        }
        (_, other) => {
            return Err(format!(
                "serde shim derive cannot handle `{kind} {name}` body {other:?}"
            ))
        }
    };
    Ok((name, shape))
}

/// Splits a delimited token stream into top-level comma-separated chunks.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut depth = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("non-empty").push(t);
    }
    if chunks.last().map(Vec::is_empty).unwrap_or(false) {
        chunks.pop(); // trailing comma
    }
    chunks
}

fn count_top_level_items(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_field_names(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                other => Err(format!("expected field name, found {other:?}")),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected variant name, found {other:?}")),
            };
            i += 1;
            let shape = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_field_names(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_top_level_items(g.stream()))
                }
                None => VariantShape::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantShape::Unit,
                other => return Err(format!("unexpected variant body {other:?}")),
            };
            Ok(Variant { name, shape })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Code generation (string templates parsed back into a TokenStream)
// ---------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!("::serde::Value::Object(vec![{pushes}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(vec![{items}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{pushes}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_named_ctor(path: &str, fields: &[String], source: &str, ty: &str) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::value::field({source}, \"{f}\", \"{ty}\")?)?,"
            )
        })
        .collect();
    format!("{path} {{ {inits} }}")
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let ctor = gen_named_ctor(name, fields, "pairs", name);
            format!(
                "let pairs = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                 Ok({ctor})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                 if items.len() != {n} {{ return Err(::serde::DeError::expected(\"{n}-element array\", \"{name}\")); }}\n\
                 Ok({name}({items}))"
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: String = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let items = inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}::{vn}\"))?;\n\
                                     if items.len() != {n} {{ return Err(::serde::DeError::expected(\"{n}-element array\", \"{name}::{vn}\")); }}\n\
                                     Ok({name}::{vn}({items}))\n\
                                 }}"
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let ctor = gen_named_ctor(
                                &format!("{name}::{vn}"),
                                fields,
                                "pairs",
                                &format!("{name}::{vn}"),
                            );
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let pairs = inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}::{vn}\"))?;\n\
                                     Ok({ctor})\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(::serde::DeError(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => Err(::serde::DeError(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::DeError::expected(\"string or single-key object\", \"{name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
