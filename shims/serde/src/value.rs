//! The in-memory value tree serialisation flows through.

use crate::DeError;
use std::fmt;

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (field order of the deriving type),
/// which keeps rendered JSON stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (exact through `u64::MAX`).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects or absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The pair list of an object (`None` otherwise).
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The element list of an array (`None` otherwise).
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload (`None` otherwise).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders compact JSON (same text as the `Display` impl).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out);
        out
    }
}

/// Looks up a required field while deserialising a derived struct.
///
/// # Errors
///
/// Returns a [`DeError`] naming the missing field.
pub fn field<'a>(pairs: &'a [(String, Value)], name: &str, ty: &str) -> Result<&'a Value, DeError> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field {name:?} while deserialising {ty}")))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip float formatting; integral
                // floats gain a ".0" so they re-parse as floats.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity literal (matches serde_json).
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_json(item, out);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}
