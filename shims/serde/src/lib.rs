// Vendored shim: lint-exempt from the workspace unwrap/expect audit.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build container has no crates.io access, so the workspace
//! path-depends on this shim. It keeps the public *shape* of serde —
//! `Serialize`/`Deserialize` traits, `#[derive(Serialize, Deserialize)]`,
//! `serde::de::DeserializeOwned` — but replaces the visitor machinery with
//! a direct in-memory [`Value`] tree: serialising produces a `Value`,
//! deserialising consumes one. The companion `serde_json` shim renders
//! and parses that tree as JSON.
//!
//! The derive macros (re-exported from `serde_derive`) support the
//! shapes present in this workspace: named-field structs, tuple/newtype
//! structs, and enums with unit, tuple and struct variants. Field
//! attributes (`#[serde(...)]`) are *not* supported.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Deserialisation failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Error for a `Value` of the wrong shape.
    pub fn expected(what: &str, while_parsing: &str) -> Self {
        DeError(format!(
            "expected {what} while deserialising {while_parsing}"
        ))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a value tree produced by [`Serialize::to_value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] naming the mismatched shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

pub mod de {
    //! Deserialisation traits (mirrors `serde::de`).
    pub use crate::Deserialize;
    /// In this shim every deserialisable type is owned, so
    /// `DeserializeOwned` is the same trait as [`Deserialize`].
    pub use crate::Deserialize as DeserializeOwned;
}

pub mod ser {
    //! Serialisation traits (mirrors `serde::ser`).
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------
// Primitive and container implementations.
// ---------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected("unsigned integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // JSON numbers cap at u64 in this shim; larger values travel as
        // decimal strings (lossless, self-describing on the way back in).
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::U64(n) => Ok(u128::from(*n)),
            Value::I64(n) => {
                u128::try_from(*n).map_err(|_| DeError(format!("{n} out of range for u128")))
            }
            Value::Str(s) => s
                .parse()
                .map_err(|_| DeError(format!("{s:?} is not a u128"))),
            _ => Err(DeError::expected("unsigned integer", "u128")),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Upstream serde deserialises `&str` by borrowing from the input;
    /// this shim's input is transient, so the string is leaked instead.
    /// Only the static experiment-registry types rely on this, and they
    /// are deserialised rarely (tests), so the leak is bounded and
    /// acceptable.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string", "&str")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected {N} elements, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::from_value(
                                it.next().ok_or_else(|| DeError::expected("longer array", "tuple"))?,
                            )?,
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::expected("shorter array", "tuple"));
                        }
                        Ok(out)
                    }
                    _ => Err(DeError::expected("array", "tuple")),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Map keys may be composite (e.g. `(u64, u64)`), which JSON
        // objects cannot express; maps therefore travel as ordered
        // `[key, value]` pair arrays.
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(<(K, V)>::from_value).collect(),
            _ => Err(DeError::expected("array of pairs", "BTreeMap")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
