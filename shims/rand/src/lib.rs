// Vendored shim: lint-exempt from the workspace unwrap/expect audit.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The container this repository builds in has no crates.io access,
//! so the workspace path-depends on this shim instead (see
//! `DESIGN.md` § dependencies).
//!
//! Provided surface: [`RngCore`], [`Rng`] (with `gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — a
//! different stream than upstream `rand`'s ChaCha12 `StdRng`, but with
//! the same determinism contract (identical seed ⇒ identical stream) and
//! statistical quality far beyond what the workspace's samplers need.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of
    /// [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors upstream `rand`).
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform over the type's natural domain; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their standard distribution.
pub trait StandardSample {
    /// Draws one value from `rng`'s stream.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
///
/// Implemented generically over [`UniformSampled`] element types so that
/// integer-literal ranges (`rng.gen_range(0..16)`) unify with the
/// surrounding expression's type, exactly as with upstream `rand`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSampled> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: UniformSampled> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// Element types uniformly samplable between two bounds.
pub trait UniformSampled: Copy {
    /// Uniform draw in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    (hi as i128 - lo as i128) as u128 + 1
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    (hi as i128 - lo as i128) as u128
                };
                // Lemire multiply-shift: maps 64 random bits onto the span
                // with negligible bias for the spans used here.
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256++, SplitMix64-seeded).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            let v = rng.gen_range(0..8usize);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(4..16);
            assert!((4..16).contains(&v));
            let f = rng.gen_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
            let i = rng.gen_range(0..=3u32);
            assert!(i <= 3);
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
