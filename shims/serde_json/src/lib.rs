// Vendored shim: lint-exempt from the workspace unwrap/expect audit.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_value`], [`from_str`], and a [`Value`] with
//! `get`/`Display`. Floats round-trip exactly (Rust's shortest-decimal
//! formatting on the way out, exact parsing on the way back in), which is
//! what the upstream `float_roundtrip` feature guaranteed.

pub use serde::Value;

use serde::de::DeserializeOwned;
use serde::{DeError, Serialize};

/// Serialisation/deserialisation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the value model this shim supports; the `Result` shape
/// mirrors upstream `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Converts `value` into a [`Value`] tree.
///
/// # Errors
///
/// Infallible in this shim (`Result` mirrors upstream).
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax error or shape
/// mismatch.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax error.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' but found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' but found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error("lone surrogate".into()));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                        }
                        other => return Err(Error(format!("bad escape \\{}", other as char))),
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?;
        u32::from_str_radix(s, 16).map_err(|_| Error(format!("bad \\u escape {s:?}")))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else if let Some(digits) = text.strip_prefix('-') {
            digits
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::I64)
                .or_else(|| text.parse::<f64>().ok().map(Value::F64))
                .ok_or_else(|| Error(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("0.1").unwrap(), 0.1);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(to_string(&u64::MAX).unwrap(), "18446744073709551615");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0, 42.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(f64, f64)> = vec![(1.5, 2.0), (3.0, 4.25)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1.5,2.0],[3.0,4.25]]");
        assert_eq!(from_str::<Vec<(f64, f64)>>(&s).unwrap(), v);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn value_access_and_display() {
        let v = parse_value(r#"{"a": 1, "b": [true, null, "x"]}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert!(v.get("missing").is_none());
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null,"x"]}"#);
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for bad in ["", "{", "[1,", "\"", "{\"a\"}", "tru", "1e", "[}", "nullx"] {
            assert!(parse_value(bad).is_err(), "{bad:?}");
        }
    }
}
