//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy over both booleans, fair coin.
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

/// `prop::bool::ANY` — a fair coin flip.
pub const ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn sample_one(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
}
