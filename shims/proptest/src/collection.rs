//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A size specification: exact, half-open or inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose
/// length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample_one(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.sample_one(rng)).collect()
    }
}
