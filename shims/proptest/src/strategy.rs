//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a sampler.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample_one(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through a partial function, resampling until
    /// it yields `Some` (upstream's filter-map without shrinking).
    ///
    /// `whence` is reported if sampling keeps failing.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Boxes the strategy (object-safe handle).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample_one(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample_one(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample_one(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample_one(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.sample_one(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected 10000 consecutive samples: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_one(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boxed strategy handle (mirrors `proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample_one(&self, rng: &mut TestRng) -> T {
        self.0.sample_one(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_one(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_one(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_one(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
