// Vendored shim: lint-exempt from the workspace unwrap/expect audit.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Semantics: each `proptest!` test samples its strategies
//! `ProptestConfig::cases` times from a deterministic RNG and runs the
//! body; `prop_assert*` failures panic like ordinary assertions.
//! Shrinking is not implemented — a failing case reports the sampled
//! values via the assertion message instead of a minimised example.
//!
//! Provided surface: range strategies (half-open and inclusive, integer
//! and float), tuple strategies, `Just`, `any::<T>()`,
//! `prop::collection::vec`, `prop::bool::ANY`, `prop_map`,
//! `prop_filter_map`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` macros.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Module-style access (`prop::collection::vec`, `prop::bool::ANY`).
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cases = { $cfg }.cases;
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::sample_one(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
