//! Test configuration and the deterministic RNG behind sampling.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG strategies sample from.
///
/// Seeded from the test's name (plus `PROPTEST_SEED` when set), so every
/// run of a given test explores the same deterministic case sequence —
/// reproducible CI at the cost of proptest's run-to-run exploration.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut seed: u64 = 0xcafe_f00d_d15e_a5e5;
        for b in name.bytes() {
            seed = seed.rotate_left(7) ^ u64::from(b).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                seed ^= n;
            }
        }
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
