//! `any::<T>()` — the canonical strategy per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_one(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

/// Canonical strategy for `T` (uniform over the whole domain for the
/// primitive types implemented here).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary_sample(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

impl Arbitrary for f32 {
    fn arbitrary_sample(rng: &mut TestRng) -> f32 {
        rng.gen()
    }
}
