// Vendored shim: lint-exempt from the workspace unwrap/expect audit.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Offline stand-in for the subset of `criterion` this workspace's bench
//! harness uses. It is a *timer*, not a statistics engine: every
//! registered benchmark runs `sample_size` iterations after one warm-up
//! and the mean wall time is printed, one line per benchmark:
//!
//! ```text
//! bench <id> ... <mean> (<n> iters)
//! ```
//!
//! This keeps every figure/table artefact in `crates/bench` runnable
//! (`cargo bench`) without crates.io access. If the real crate becomes
//! available the workspace dependency can be pointed back at it.

pub use std::hint::black_box;

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Throughput annotation (recorded for display parity, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes per iteration, decimal multiple display.
    BytesDecimal(u64),
}

/// Hierarchical benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter component.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured iteration count, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn print_result(id: &str, iters: u64, elapsed: Duration) {
    let mean = elapsed.as_secs_f64() / iters.max(1) as f64;
    let human = if mean < 1e-6 {
        format!("{:9.1} ns", mean * 1e9)
    } else if mean < 1e-3 {
        format!("{:9.2} µs", mean * 1e6)
    } else if mean < 1.0 {
        format!("{:9.2} ms", mean * 1e3)
    } else {
        format!("{mean:9.3} s ")
    };
    println!("bench {id:<48} ... {human} ({iters} iters)");
}

/// The benchmark driver (named after the real crate's entry point).
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets iterations per benchmark (the shim times exactly this many).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepts CLI arguments for parity; only `--bench` filtering by
    /// substring is honoured (via `NMCACHE_BENCH_FILTER`).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        print_result(id, b.iters, b.elapsed);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput (display parity only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        print_result(&format!("{}/{id}", self.name), b.iters, b.elapsed);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        print_result(&format!("{}/{id}", self.name), b.iters, b.elapsed);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group: either the positional form
/// `criterion_group!(name, target, ...)` or the config form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
