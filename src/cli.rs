//! Command-line parsing for the `nmcache` binary.
//!
//! Hand-rolled (no CLI dependency): a subcommand followed by `--flag
//! value` pairs. See [`USAGE`] for the full surface.

use std::fmt;
use std::path::PathBuf;

/// Usage text printed on `--help` or a parse error.
pub const USAGE: &str = "\
nmcache — power-performance trade-offs in nanometer-scale multi-level caches

USAGE: nmcache <COMMAND> [OPTIONS]

COMMANDS:
  list                 List every reproducible experiment
  fig1                 Figure 1: fixed-Vth vs fixed-Tox curves (16 KB)
  fig2                 Figure 2: (Tox, Vth) tuple problem energy curves
  schemes              Section 4: scheme I/II/III comparison
  l2-sweep             Section 5: L2 size sweep at iso-AMAT
  l1-sweep             Section 5: L1 size sweep at iso-AMAT
  ablation             Section 4: single-knob ablation
  fit                  Section 3: Eq.1/Eq.2 surface-fit quality
  explore              Rank subarray foldings of a cache (CACTI-style)
  missrates            Print the simulated miss-rate table
  variation            Extension: leakage under die-to-die variation
  thermal              Extension: temperature sensitivity
  decay                Extension: process knobs vs cache decay (gated-Vdd)
  split-l1             Extension: split I$/D$ vs unified L1
  trace-sim            Replay a trace file through an L1/L2 hierarchy
  e8                   E8: 3-level mixed-technology hierarchy (SRAM/eDRAM/STT-MRAM)
  campaign             Crash-resumable cross-product sweep with checkpoints
  loadgen              Replay a seeded query mix against one evaluator and
                       publish p50/p95/p99 latency per query class
  benchdiff            Compare two telemetry reports and gate on p99 regression
  analyze              Run the D1-D6 determinism & safety lints over the workspace

ANALYZE OPTIONS (only valid after `analyze`):
  --json <PATH>        Also write the findings as schema-versioned JSON
  --rules <IDS>        Comma-separated rule subset, e.g. D1,D4 (default all)
  --root <PATH>        Workspace root to scan (default .)

CAMPAIGN OPTIONS (only valid after `campaign`):
  --out <DIR>          Campaign directory: checkpoint + persistent store (required)
  --l1-sizes <KBS>     Comma-separated L1 axis in KB (default 16,32)
  --l2-sizes <KBS>     Comma-separated L2 axis in KB (default 256,1024)
  --schemes <NAMES>    Comma-separated schemes (default uniform,split)
  --techs <NAMES>      Comma-separated L2 technologies (default sram)
  --temps <CELSIUS>    Comma-separated temperatures in C (default 80)
  --slack <FRACTION>   AMAT slack per cell over its fastest corner (default 0.15)
  --quick              Shorter simulations and the coarse knob grid
  --checkpoint-every <N>  Cells between atomic checkpoint rewrites (default 8)
  --max-cells <N>      Compute at most N new cells this run, then stop
                       (the checkpoint still lands; rerun to resume)
  --fresh              Discard an existing checkpoint and restart
  --require-store      Fail (exit 6) if the store cannot open, instead of
                       continuing without persistence
  --csv <PATH>         Also write the result table as CSV
  --threads <N>        Worker threads for parallel sweeps
  --stats              Print per-sweep executor statistics after the run
  --metrics <PATH>     Write a schema-versioned JSON telemetry report
                       (includes the campaign.cell.latency histogram)

LOADGEN OPTIONS (only valid after `loadgen`):
  --seed <N>           Mix seed (default 2005); a fixed seed and thread count
                       replay byte-identical counters and mix composition
  --queries <N>        Queries to synthesize (default 200)
  --rate <QPS>         Open-loop arrival rate; omit for closed-loop replay
  --quick              Coarse knob grid (CI-sized work items)
  --threads <N>        Worker threads for the replay pool
  --out <PATH>         Report path (default BENCH_serve.json)

BENCHDIFF OPTIONS (usage: `benchdiff <BASELINE.json> <CANDIDATE.json>`):
  --max-ratio <R>      Highest allowed candidate/baseline p99 ratio after
                       machine-scale normalization (default 2.0)

OPTIONS:
  --quick              Shorter architectural simulations (tests/smoke)
  --slack <FRACTION>   AMAT slack over the best corner (default 0.15)
  --scheme <NAME>      uniform | split | per-component (default uniform)
  --steps <N>          Sweep steps (default 8)
  --samples <N>        Monte-Carlo samples (default 400)
  --suite <NAME>       Workload suite: spec2000 | tpcc | specweb | pointer-chase
  --csv <PATH>         Also write the result table as CSV
  --trace <PATH>       Trace file for trace-sim
  --l1 <KB>            L1 size in KB (default 16)
  --l2 <KB>            L2 size in KB (default 1024)
  --l1-size <KB>       e8: L1 size in KB (default 16)
  --l2-size <KB>       e8: L2 size in KB (default 256)
  --l3-size <KB>       e8: L3 size in KB (default 4096)
  --l1-tech <NAME>     e8: L1 technology: sram | edram | stt-mram (default sram)
  --l2-tech <NAME>     e8: L2 technology (default sram)
  --l3-tech <NAME>     e8: restrict the swept L3 technology to one candidate
  --threads <N>        Worker threads for parallel sweeps
                       (default: NMCACHE_THREADS or all cores)
  --stats              Print per-sweep executor statistics after the run
  --metrics <PATH>     Write a schema-versioned JSON telemetry report
  --trace-out <PATH>   Write a Chrome/Perfetto trace-event JSON of the run
  --log-level <LEVEL>  Span logging on stderr: off | info | debug (default off)
  -h, --help           Show this help

EXIT CODES:
  0  success (for analyze: no findings, no stale allowlist entries)
  2  usage error (unknown command/flag, bad value, malformed analyze.allow)
  3  study or model error; for analyze: findings or stale allowlist entries
  4  trace format error (parse failure, corrupt/truncated binary)
  5  I/O error (missing trace file, unwritable CSV path)
  6  persistence error (corrupt or mismatched campaign checkpoint,
     checkpoint write failure, or --require-store with no usable store)
  7  SLO regression (benchdiff: a candidate p99 exceeded --max-ratio x
     the baseline p99 after machine-scale normalization)
";

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Figure 1 curves.
    Fig1(Options),
    /// Figure 2 tuple curves.
    Fig2(Options),
    /// Scheme comparison table.
    Schemes(Options),
    /// L2 size sweep.
    L2Sweep(Options),
    /// L1 size sweep.
    L1Sweep(Options),
    /// Single-knob ablation.
    Ablation(Options),
    /// Surface-fit report.
    Fit(Options),
    /// Organisation exploration.
    Explore(Options),
    /// Miss-rate table dump.
    MissRates(Options),
    /// Variation study.
    Variation(Options),
    /// Temperature study.
    Thermal(Options),
    /// Knobs-vs-decay study.
    Decay(Options),
    /// Split I$/D$ study.
    SplitL1(Options),
    /// Trace replay.
    TraceSim(Options),
    /// E8 mixed-technology three-level study.
    E8(Options),
    /// Crash-resumable cross-product campaign.
    Campaign(CampaignOptions),
    /// Deterministic query-mix load generation.
    Loadgen(LoadgenOptions),
    /// Report comparison with the p99 SLO gate.
    Benchdiff(BenchdiffOptions),
    /// Static-analysis run (D1–D6 lints).
    Analyze(AnalyzeOptions),
    /// Experiment registry listing.
    List,
    /// Help requested.
    Help,
}

/// Options for the `analyze` subcommand (distinct from the study
/// [`Options`]: the lint pass shares none of the sweep knobs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalyzeOptions {
    /// JSON report output path (`--json`).
    pub json: Option<PathBuf>,
    /// Rule-id subset from `--rules` (e.g. `["D1", "D4"]`); empty means
    /// all rules. Validated against the real rule set by the runner so
    /// the parser stays dependency-free.
    pub rules: Vec<String>,
    /// Workspace root to scan (`--root`, default `.`).
    pub root: Option<PathBuf>,
}

/// Options for the `campaign` subcommand (distinct from the study
/// [`Options`]: every axis is a list, and the persistence knobs have no
/// meaning elsewhere).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOptions {
    /// Campaign directory holding the checkpoint and the store
    /// (`--out`, required).
    pub out: PathBuf,
    /// L1 size axis in bytes (`--l1-sizes`, KB on the command line).
    pub l1_sizes: Vec<u64>,
    /// L2 size axis in bytes (`--l2-sizes`, KB on the command line).
    pub l2_sizes: Vec<u64>,
    /// Scheme axis (`--schemes`).
    pub schemes: Vec<SchemeArg>,
    /// L2 technology axis, unresolved names (`--techs`).
    pub techs: Vec<String>,
    /// Temperature axis in °C (`--temps`).
    pub temps_c: Vec<f64>,
    /// AMAT slack fraction per cell (`--slack`).
    pub slack: f64,
    /// Shorter simulations and the coarse knob grid (`--quick`).
    pub quick: bool,
    /// Cells between checkpoint rewrites (`--checkpoint-every`).
    pub checkpoint_every: usize,
    /// New-cell budget for this run (`--max-cells`).
    pub max_cells: Option<usize>,
    /// Discard an existing checkpoint (`--fresh`).
    pub fresh: bool,
    /// Treat an unusable store as fatal (`--require-store`).
    pub require_store: bool,
    /// CSV output path (`--csv`).
    pub csv: Option<PathBuf>,
    /// Worker-thread override for parallel sweeps (`--threads`).
    pub threads: Option<usize>,
    /// Print per-sweep executor statistics after the run (`--stats`).
    pub stats: bool,
    /// Telemetry report output path (`--metrics`).
    pub metrics: Option<PathBuf>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            out: PathBuf::new(),
            l1_sizes: vec![16 * 1024, 32 * 1024],
            l2_sizes: vec![256 * 1024, 1024 * 1024],
            schemes: vec![SchemeArg::Uniform, SchemeArg::Split],
            techs: vec!["sram".to_owned()],
            temps_c: vec![80.0],
            slack: 0.15,
            quick: false,
            checkpoint_every: 8,
            max_cells: None,
            fresh: false,
            require_store: false,
            csv: None,
            threads: None,
            stats: false,
            metrics: None,
        }
    }
}

/// Options for the `loadgen` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenOptions {
    /// Mix seed (`--seed`).
    pub seed: u64,
    /// Queries to synthesize (`--queries`).
    pub queries: usize,
    /// Open-loop arrival rate (`--rate`); `None` = closed loop.
    pub rate_qps: Option<f64>,
    /// Coarse knob grid (`--quick`).
    pub quick: bool,
    /// Worker-thread override for the replay pool (`--threads`).
    pub threads: Option<usize>,
    /// Report output path (`--out`).
    pub out: PathBuf,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            seed: 2005,
            queries: 200,
            rate_qps: None,
            quick: false,
            threads: None,
            out: PathBuf::from("BENCH_serve.json"),
        }
    }
}

/// Options for the `benchdiff` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchdiffOptions {
    /// Baseline report path (first positional).
    pub baseline: PathBuf,
    /// Candidate report path (second positional).
    pub candidate: PathBuf,
    /// Highest allowed normalized p99 ratio (`--max-ratio`).
    pub max_ratio: f64,
}

/// Assignment scheme selector (mirrors `nm_cache_core::groups::Scheme`
/// without importing it here, keeping the parser dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchemeArg {
    /// One pair for the whole cache.
    #[default]
    Uniform,
    /// Cell-array/periphery pairs.
    Split,
    /// Independent per-component pairs.
    PerComponent,
}

/// Common options across subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Shorter simulations.
    pub quick: bool,
    /// AMAT slack fraction.
    pub slack: f64,
    /// Assignment scheme.
    pub scheme: SchemeArg,
    /// Sweep steps.
    pub steps: usize,
    /// Monte-Carlo samples.
    pub samples: usize,
    /// Workload suite name (resolved by the runner; `None` = default).
    pub suite: Option<String>,
    /// CSV output path.
    pub csv: Option<PathBuf>,
    /// Trace file path.
    pub trace: Option<PathBuf>,
    /// L1 size in bytes.
    pub l1_bytes: u64,
    /// L2 size in bytes.
    pub l2_bytes: u64,
    /// e8: per-level size overrides in bytes (L1, L2, L3); `None` keeps
    /// the study's standard shape.
    pub level_sizes: [Option<u64>; 3],
    /// e8: L1/L2 technology names (`None` = SRAM).
    pub upstream_techs: [Option<String>; 2],
    /// e8: restrict the swept L3 technology to this one candidate.
    pub l3_tech: Option<String>,
    /// Worker-thread override for parallel sweeps (`None` = default).
    pub threads: Option<usize>,
    /// Print per-sweep executor statistics after the run.
    pub stats: bool,
    /// Telemetry report output path (`--metrics`).
    pub metrics: Option<PathBuf>,
    /// Chrome trace-event output path (`--trace-out`).
    pub trace_out: Option<PathBuf>,
    /// Span-logging verbosity on stderr (`--log-level`).
    pub log_level: LogLevelArg,
}

/// Span-logging verbosity selector (mirrors `nm_telemetry::LogLevel`
/// without importing it here, keeping the parser dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogLevelArg {
    /// No span logging (the default).
    #[default]
    Off,
    /// Top-level spans only.
    Info,
    /// Every span, indented by nesting depth.
    Debug,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            slack: 0.15,
            scheme: SchemeArg::default(),
            steps: 8,
            samples: 400,
            suite: None,
            csv: None,
            trace: None,
            l1_bytes: 16 * 1024,
            l2_bytes: 1024 * 1024,
            level_sizes: [None, None, None],
            upstream_techs: [None, None],
            l3_tech: None,
            threads: None,
            stats: false,
            metrics: None,
            trace_out: None,
            log_level: LogLevelArg::Off,
        }
    }
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the first unknown command, unknown
/// flag, or malformed value.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let mut args = args.into_iter();
    let Some(cmd) = args.next() else {
        return Ok(Command::Help);
    };
    if cmd == "-h" || cmd == "--help" || cmd == "help" {
        return Ok(Command::Help);
    }
    if cmd == "analyze" {
        return parse_analyze(args);
    }
    if cmd == "campaign" {
        return parse_campaign(args);
    }
    if cmd == "loadgen" {
        return parse_loadgen(args);
    }
    if cmd == "benchdiff" {
        return parse_benchdiff(args);
    }

    let mut opts = Options::default();
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("flag {flag} needs a value")))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--quick" => opts.quick = true,
            "-h" | "--help" => return Ok(Command::Help),
            "--slack" => {
                let v = value(&mut i, "--slack")?;
                opts.slack = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --slack value {v:?}")))?;
                if !(0.0..=10.0).contains(&opts.slack) {
                    return Err(CliError(format!("--slack {v} out of range [0, 10]")));
                }
            }
            "--scheme" => {
                opts.scheme = match value(&mut i, "--scheme")?.as_str() {
                    "uniform" | "iii" | "III" => SchemeArg::Uniform,
                    "split" | "ii" | "II" => SchemeArg::Split,
                    "per-component" | "i" | "I" => SchemeArg::PerComponent,
                    other => return Err(CliError(format!("unknown scheme {other:?}"))),
                };
            }
            "--steps" => {
                let v = value(&mut i, "--steps")?;
                opts.steps = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --steps value {v:?}")))?;
                if opts.steps == 0 {
                    return Err(CliError("--steps must be positive".into()));
                }
            }
            "--samples" => {
                let v = value(&mut i, "--samples")?;
                opts.samples = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --samples value {v:?}")))?;
                if opts.samples == 0 {
                    return Err(CliError("--samples must be positive".into()));
                }
            }
            "--suite" => opts.suite = Some(value(&mut i, "--suite")?),
            "--csv" => opts.csv = Some(PathBuf::from(value(&mut i, "--csv")?)),
            "--trace" => opts.trace = Some(PathBuf::from(value(&mut i, "--trace")?)),
            "--l1" => {
                let v = value(&mut i, "--l1")?;
                let kb: u64 = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --l1 value {v:?}")))?;
                opts.l1_bytes = kb * 1024;
            }
            "--l2" => {
                let v = value(&mut i, "--l2")?;
                let kb: u64 = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --l2 value {v:?}")))?;
                opts.l2_bytes = kb * 1024;
            }
            "--l1-size" | "--l2-size" | "--l3-size" => {
                let flag = rest[i].clone();
                let idx = match flag.as_str() {
                    "--l1-size" => 0,
                    "--l2-size" => 1,
                    _ => 2,
                };
                let v = value(&mut i, &flag)?;
                let kb: u64 = v
                    .parse()
                    .map_err(|_| CliError(format!("bad {flag} value {v:?}")))?;
                if kb == 0 {
                    return Err(CliError(format!("{flag} must be positive")));
                }
                opts.level_sizes[idx] = Some(kb * 1024);
            }
            "--l1-tech" | "--l2-tech" | "--l3-tech" => {
                let flag = rest[i].clone();
                let v = value(&mut i, &flag)?;
                match flag.as_str() {
                    "--l1-tech" => opts.upstream_techs[0] = Some(v),
                    "--l2-tech" => opts.upstream_techs[1] = Some(v),
                    _ => opts.l3_tech = Some(v),
                }
            }
            "--threads" => {
                let v = value(&mut i, "--threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --threads value {v:?}")))?;
                if n == 0 {
                    return Err(CliError("--threads must be positive".into()));
                }
                opts.threads = Some(n);
            }
            "--stats" => opts.stats = true,
            "--metrics" => opts.metrics = Some(PathBuf::from(value(&mut i, "--metrics")?)),
            "--trace-out" => opts.trace_out = Some(PathBuf::from(value(&mut i, "--trace-out")?)),
            "--log-level" => {
                opts.log_level = match value(&mut i, "--log-level")?.as_str() {
                    "off" => LogLevelArg::Off,
                    "info" => LogLevelArg::Info,
                    "debug" => LogLevelArg::Debug,
                    other => {
                        return Err(CliError(format!(
                            "unknown log level {other:?} (expected off, info or debug)"
                        )))
                    }
                };
            }
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
        i += 1;
    }

    let command = match cmd.as_str() {
        "list" => Command::List,
        "fig1" => Command::Fig1(opts),
        "fig2" => Command::Fig2(opts),
        "schemes" => Command::Schemes(opts),
        "l2-sweep" => Command::L2Sweep(opts),
        "l1-sweep" => Command::L1Sweep(opts),
        "ablation" => Command::Ablation(opts),
        "fit" => Command::Fit(opts),
        "explore" => Command::Explore(opts),
        "missrates" => Command::MissRates(opts),
        "variation" => Command::Variation(opts),
        "thermal" => Command::Thermal(opts),
        "decay" => Command::Decay(opts),
        "split-l1" => Command::SplitL1(opts),
        "trace-sim" => {
            if opts.trace.is_none() {
                return Err(CliError("trace-sim requires --trace <PATH>".into()));
            }
            Command::TraceSim(opts)
        }
        "e8" => Command::E8(opts),
        other => return Err(CliError(format!("unknown command {other:?}"))),
    };
    Ok(command)
}

/// Parses the flags of the `analyze` subcommand.
fn parse_analyze<I: Iterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let mut opts = AnalyzeOptions::default();
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("flag {flag} needs a value")))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "-h" | "--help" => return Ok(Command::Help),
            "--json" => opts.json = Some(PathBuf::from(value(&mut i, "--json")?)),
            "--root" => opts.root = Some(PathBuf::from(value(&mut i, "--root")?)),
            "--rules" => {
                let v = value(&mut i, "--rules")?;
                let ids: Vec<String> = v
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                if ids.is_empty() {
                    return Err(CliError(format!("--rules {v:?} names no rules")));
                }
                opts.rules.extend(ids);
            }
            other => return Err(CliError(format!("unknown flag {other:?} for analyze"))),
        }
        i += 1;
    }
    Ok(Command::Analyze(opts))
}

/// Parses a comma-separated list, one parsed element per non-empty
/// entry; an empty or all-comma value is an error (an empty axis is a
/// mistake, not a request for a zero-cell campaign).
fn parse_list<T>(
    flag: &str,
    raw: &str,
    elem: impl FnMut(&str) -> Result<T, CliError>,
) -> Result<Vec<T>, CliError> {
    let items: Vec<&str> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if items.is_empty() {
        return Err(CliError(format!("{flag} {raw:?} names no values")));
    }
    items.into_iter().map(elem).collect()
}

/// Parses the flags of the `campaign` subcommand.
fn parse_campaign<I: Iterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let mut opts = CampaignOptions::default();
    let mut have_out = false;
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("flag {flag} needs a value")))
    };
    let size_axis = |flag: &str, raw: &str| -> Result<Vec<u64>, CliError> {
        parse_list(flag, raw, |s| {
            let kb: u64 = s
                .parse()
                .map_err(|_| CliError(format!("bad {flag} entry {s:?}")))?;
            if kb == 0 {
                return Err(CliError(format!("{flag} entries must be positive")));
            }
            Ok(kb * 1024)
        })
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "-h" | "--help" => return Ok(Command::Help),
            "--out" => {
                opts.out = PathBuf::from(value(&mut i, "--out")?);
                have_out = true;
            }
            "--l1-sizes" => opts.l1_sizes = size_axis("--l1-sizes", &value(&mut i, "--l1-sizes")?)?,
            "--l2-sizes" => opts.l2_sizes = size_axis("--l2-sizes", &value(&mut i, "--l2-sizes")?)?,
            "--schemes" => {
                let v = value(&mut i, "--schemes")?;
                opts.schemes = parse_list("--schemes", &v, |s| match s {
                    "uniform" | "iii" | "III" => Ok(SchemeArg::Uniform),
                    "split" | "ii" | "II" => Ok(SchemeArg::Split),
                    "per-component" | "i" | "I" => Ok(SchemeArg::PerComponent),
                    other => Err(CliError(format!("unknown scheme {other:?}"))),
                })?;
            }
            "--techs" => {
                let v = value(&mut i, "--techs")?;
                opts.techs = parse_list("--techs", &v, |s| Ok(s.to_owned()))?;
            }
            "--temps" => {
                let v = value(&mut i, "--temps")?;
                opts.temps_c = parse_list("--temps", &v, |s| {
                    let t: f64 = s
                        .parse()
                        .map_err(|_| CliError(format!("bad --temps entry {s:?}")))?;
                    if !t.is_finite() {
                        return Err(CliError(format!("--temps entry {s:?} is not finite")));
                    }
                    Ok(t)
                })?;
            }
            "--slack" => {
                let v = value(&mut i, "--slack")?;
                opts.slack = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --slack value {v:?}")))?;
                if !(0.0..=10.0).contains(&opts.slack) {
                    return Err(CliError(format!("--slack {v} out of range [0, 10]")));
                }
            }
            "--quick" => opts.quick = true,
            "--checkpoint-every" => {
                let v = value(&mut i, "--checkpoint-every")?;
                opts.checkpoint_every = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --checkpoint-every value {v:?}")))?;
                if opts.checkpoint_every == 0 {
                    return Err(CliError("--checkpoint-every must be positive".into()));
                }
            }
            "--max-cells" => {
                let v = value(&mut i, "--max-cells")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --max-cells value {v:?}")))?;
                opts.max_cells = Some(n);
            }
            "--fresh" => opts.fresh = true,
            "--require-store" => opts.require_store = true,
            "--csv" => opts.csv = Some(PathBuf::from(value(&mut i, "--csv")?)),
            "--threads" => {
                let v = value(&mut i, "--threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --threads value {v:?}")))?;
                if n == 0 {
                    return Err(CliError("--threads must be positive".into()));
                }
                opts.threads = Some(n);
            }
            "--stats" => opts.stats = true,
            "--metrics" => opts.metrics = Some(PathBuf::from(value(&mut i, "--metrics")?)),
            other => return Err(CliError(format!("unknown flag {other:?} for campaign"))),
        }
        i += 1;
    }
    if !have_out {
        return Err(CliError("campaign requires --out <DIR>".into()));
    }
    Ok(Command::Campaign(opts))
}

/// Parses the flags of the `loadgen` subcommand.
fn parse_loadgen<I: Iterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let mut opts = LoadgenOptions::default();
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("flag {flag} needs a value")))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "-h" | "--help" => return Ok(Command::Help),
            "--seed" => {
                let v = value(&mut i, "--seed")?;
                opts.seed = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --seed value {v:?}")))?;
            }
            "--queries" => {
                let v = value(&mut i, "--queries")?;
                opts.queries = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --queries value {v:?}")))?;
                if opts.queries == 0 {
                    return Err(CliError("--queries must be positive".into()));
                }
            }
            "--rate" => {
                let v = value(&mut i, "--rate")?;
                let rate: f64 = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --rate value {v:?}")))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(CliError(format!("--rate {v} must be a positive rate")));
                }
                opts.rate_qps = Some(rate);
            }
            "--quick" => opts.quick = true,
            "--threads" => {
                let v = value(&mut i, "--threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --threads value {v:?}")))?;
                if n == 0 {
                    return Err(CliError("--threads must be positive".into()));
                }
                opts.threads = Some(n);
            }
            "--out" => opts.out = PathBuf::from(value(&mut i, "--out")?),
            other => return Err(CliError(format!("unknown flag {other:?} for loadgen"))),
        }
        i += 1;
    }
    Ok(Command::Loadgen(opts))
}

/// Parses the `benchdiff` subcommand: two positional report paths, then
/// flags.
fn parse_benchdiff<I: Iterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let rest: Vec<String> = args.collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut max_ratio = 2.0f64;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("flag {flag} needs a value")))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "-h" | "--help" => return Ok(Command::Help),
            "--max-ratio" => {
                let v = value(&mut i, "--max-ratio")?;
                max_ratio = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --max-ratio value {v:?}")))?;
                if !max_ratio.is_finite() || max_ratio <= 0.0 {
                    return Err(CliError(format!(
                        "--max-ratio {v} must be a positive ratio"
                    )));
                }
            }
            flag if flag.starts_with('-') => {
                return Err(CliError(format!("unknown flag {flag:?} for benchdiff")))
            }
            path => paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    let [baseline, candidate] = <[PathBuf; 2]>::try_from(paths).map_err(|got| {
        CliError(format!(
            "benchdiff needs exactly two report paths (<BASELINE> <CANDIDATE>), got {}",
            got.len()
        ))
    })?;
    Ok(Command::Benchdiff(BenchdiffOptions {
        baseline,
        candidate,
        max_ratio,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(s: &str) -> Result<Command, CliError> {
        parse(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn list_parses() {
        assert_eq!(parse_str("list"), Ok(Command::List));
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_str(""), Ok(Command::Help));
        assert_eq!(parse_str("--help"), Ok(Command::Help));
        assert_eq!(parse_str("fig1 --help"), Ok(Command::Help));
    }

    #[test]
    fn subcommands_parse_with_defaults() {
        match parse_str("fig1").unwrap() {
            Command::Fig1(o) => {
                assert!(!o.quick);
                assert_eq!(o.l1_bytes, 16 * 1024);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flags_apply() {
        match parse_str("l2-sweep --scheme split --slack 0.08 --quick --l1 32").unwrap() {
            Command::L2Sweep(o) => {
                assert_eq!(o.scheme, SchemeArg::Split);
                assert!((o.slack - 0.08).abs() < 1e-12);
                assert!(o.quick);
                assert_eq!(o.l1_bytes, 32 * 1024);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scheme_numerals_accepted() {
        match parse_str("schemes --scheme I").unwrap() {
            Command::Schemes(o) => assert_eq!(o.scheme, SchemeArg::PerComponent),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_unknowns_and_bad_values() {
        assert!(parse_str("bogus").is_err());
        assert!(parse_str("fig1 --wat").is_err());
        assert!(parse_str("fig1 --slack nope").is_err());
        assert!(parse_str("fig1 --slack").is_err());
        assert!(parse_str("fig1 --steps 0").is_err());
        assert!(parse_str("fig1 --slack 99").is_err());
        assert!(parse_str("l2-sweep --scheme bogus").is_err());
    }

    #[test]
    fn trace_sim_requires_trace() {
        assert!(parse_str("trace-sim").is_err());
        match parse_str("trace-sim --trace t.txt --l2 512").unwrap() {
            Command::TraceSim(o) => {
                assert_eq!(o.trace.unwrap(), PathBuf::from("t.txt"));
                assert_eq!(o.l2_bytes, 512 * 1024);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extension_commands_parse() {
        assert!(matches!(parse_str("decay").unwrap(), Command::Decay(_)));
        assert!(matches!(
            parse_str("split-l1 --l2 512").unwrap(),
            Command::SplitL1(_)
        ));
        match parse_str("decay --suite tpcc").unwrap() {
            Command::Decay(o) => assert_eq!(o.suite.as_deref(), Some("tpcc")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn threads_and_stats_flags_parse() {
        match parse_str("fig2 --threads 4 --stats").unwrap() {
            Command::Fig2(o) => {
                assert_eq!(o.threads, Some(4));
                assert!(o.stats);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_str("fig2 --threads 0").is_err());
        assert!(parse_str("fig2 --threads many").is_err());
        match parse_str("fig1").unwrap() {
            Command::Fig1(o) => {
                assert_eq!(o.threads, None);
                assert!(!o.stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn telemetry_flags_parse() {
        match parse_str("schemes --metrics m.json --trace-out t.json --log-level debug").unwrap() {
            Command::Schemes(o) => {
                assert_eq!(o.metrics.unwrap(), PathBuf::from("m.json"));
                assert_eq!(o.trace_out.unwrap(), PathBuf::from("t.json"));
                assert_eq!(o.log_level, LogLevelArg::Debug);
            }
            other => panic!("{other:?}"),
        }
        match parse_str("schemes --log-level info").unwrap() {
            Command::Schemes(o) => assert_eq!(o.log_level, LogLevelArg::Info),
            other => panic!("{other:?}"),
        }
        // Defaults: everything off.
        match parse_str("schemes").unwrap() {
            Command::Schemes(o) => {
                assert_eq!(o.metrics, None);
                assert_eq!(o.trace_out, None);
                assert_eq!(o.log_level, LogLevelArg::Off);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_str("schemes --log-level verbose").is_err());
        assert!(parse_str("schemes --metrics").is_err());
        assert!(parse_str("schemes --trace-out").is_err());
    }

    #[test]
    fn e8_parses_with_level_knobs() {
        match parse_str("e8 --quick --l3-tech edram --l2-tech sram --l3-size 8192 --l1-size 32")
            .unwrap()
        {
            Command::E8(o) => {
                assert!(o.quick);
                assert_eq!(o.l3_tech.as_deref(), Some("edram"));
                assert_eq!(o.upstream_techs[0], None);
                assert_eq!(o.upstream_techs[1].as_deref(), Some("sram"));
                assert_eq!(o.level_sizes, [Some(32 * 1024), None, Some(8192 * 1024)]);
            }
            other => panic!("{other:?}"),
        }
        match parse_str("e8").unwrap() {
            Command::E8(o) => {
                assert_eq!(o.level_sizes, [None, None, None]);
                assert_eq!(o.l3_tech, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_str("e8 --l3-size 0").is_err());
        assert!(parse_str("e8 --l3-size lots").is_err());
        assert!(parse_str("e8 --l3-tech").is_err());
    }

    #[test]
    fn analyze_parses_with_its_own_flags() {
        match parse_str("analyze").unwrap() {
            Command::Analyze(o) => {
                assert_eq!(o.json, None);
                assert!(o.rules.is_empty());
                assert_eq!(o.root, None);
            }
            other => panic!("{other:?}"),
        }
        match parse_str("analyze --json out.json --rules D1,D4 --root sub/dir").unwrap() {
            Command::Analyze(o) => {
                assert_eq!(o.json.unwrap(), PathBuf::from("out.json"));
                assert_eq!(o.rules, vec!["D1".to_owned(), "D4".to_owned()]);
                assert_eq!(o.root.unwrap(), PathBuf::from("sub/dir"));
            }
            other => panic!("{other:?}"),
        }
        // Study flags are not valid after `analyze`, and vice versa.
        assert!(parse_str("analyze --quick").is_err());
        assert!(parse_str("analyze --rules").is_err());
        assert!(parse_str("analyze --rules ,").is_err());
        assert!(parse_str("fig1 --json out.json").is_err());
        assert_eq!(parse_str("analyze --help"), Ok(Command::Help));
    }

    #[test]
    fn campaign_parses_with_defaults_and_requires_out() {
        assert!(parse_str("campaign").is_err());
        match parse_str("campaign --out runs/a").unwrap() {
            Command::Campaign(o) => {
                assert_eq!(o.out, PathBuf::from("runs/a"));
                assert_eq!(o.l1_sizes, vec![16 * 1024, 32 * 1024]);
                assert_eq!(o.l2_sizes, vec![256 * 1024, 1024 * 1024]);
                assert_eq!(o.schemes, vec![SchemeArg::Uniform, SchemeArg::Split]);
                assert_eq!(o.techs, vec!["sram".to_owned()]);
                assert_eq!(o.temps_c, vec![80.0]);
                assert_eq!(o.checkpoint_every, 8);
                assert_eq!(o.max_cells, None);
                assert!(!o.fresh);
                assert!(!o.require_store);
                assert!(!o.quick);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_str("campaign --help"), Ok(Command::Help));
    }

    #[test]
    fn campaign_axes_parse_as_lists() {
        match parse_str(
            "campaign --out d --l1-sizes 8,16 --l2-sizes 512 --schemes uniform,per-component \
             --techs sram,edram --temps 40,80,110 --slack 0.2 --quick \
             --checkpoint-every 2 --max-cells 3 --fresh --require-store --csv t.csv",
        )
        .unwrap()
        {
            Command::Campaign(o) => {
                assert_eq!(o.l1_sizes, vec![8 * 1024, 16 * 1024]);
                assert_eq!(o.l2_sizes, vec![512 * 1024]);
                assert_eq!(o.schemes, vec![SchemeArg::Uniform, SchemeArg::PerComponent]);
                assert_eq!(o.techs, vec!["sram".to_owned(), "edram".to_owned()]);
                assert_eq!(o.temps_c, vec![40.0, 80.0, 110.0]);
                assert!((o.slack - 0.2).abs() < 1e-12);
                assert!(o.quick);
                assert_eq!(o.checkpoint_every, 2);
                assert_eq!(o.max_cells, Some(3));
                assert!(o.fresh);
                assert!(o.require_store);
                assert_eq!(o.csv.unwrap(), PathBuf::from("t.csv"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn campaign_rejects_bad_values() {
        assert!(parse_str("campaign --out d --l1-sizes 0").is_err());
        assert!(parse_str("campaign --out d --l1-sizes lots").is_err());
        assert!(parse_str("campaign --out d --l2-sizes ,").is_err());
        assert!(parse_str("campaign --out d --schemes bogus").is_err());
        assert!(parse_str("campaign --out d --temps warm").is_err());
        assert!(parse_str("campaign --out d --temps nan").is_err());
        assert!(parse_str("campaign --out d --checkpoint-every 0").is_err());
        assert!(parse_str("campaign --out d --slack 99").is_err());
        assert!(parse_str("campaign --out d --steps 4").is_err());
        assert!(parse_str("fig1 --out d").is_err());
    }

    #[test]
    fn campaign_telemetry_flags_parse() {
        match parse_str("campaign --out d --threads 2 --stats --metrics m.json").unwrap() {
            Command::Campaign(o) => {
                assert_eq!(o.threads, Some(2));
                assert!(o.stats);
                assert_eq!(o.metrics.unwrap(), PathBuf::from("m.json"));
            }
            other => panic!("{other:?}"),
        }
        match parse_str("campaign --out d").unwrap() {
            Command::Campaign(o) => {
                assert_eq!(o.threads, None);
                assert!(!o.stats);
                assert_eq!(o.metrics, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_str("campaign --out d --threads 0").is_err());
    }

    #[test]
    fn loadgen_parses_with_defaults_and_flags() {
        match parse_str("loadgen").unwrap() {
            Command::Loadgen(o) => {
                assert_eq!(o.seed, 2005);
                assert_eq!(o.queries, 200);
                assert_eq!(o.rate_qps, None);
                assert!(!o.quick);
                assert_eq!(o.threads, None);
                assert_eq!(o.out, PathBuf::from("BENCH_serve.json"));
            }
            other => panic!("{other:?}"),
        }
        match parse_str(
            "loadgen --seed 7 --queries 32 --rate 120.5 --quick --threads 3 --out s.json",
        )
        .unwrap()
        {
            Command::Loadgen(o) => {
                assert_eq!(o.seed, 7);
                assert_eq!(o.queries, 32);
                assert_eq!(o.rate_qps, Some(120.5));
                assert!(o.quick);
                assert_eq!(o.threads, Some(3));
                assert_eq!(o.out, PathBuf::from("s.json"));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_str("loadgen --help"), Ok(Command::Help));
        assert!(parse_str("loadgen --queries 0").is_err());
        assert!(parse_str("loadgen --rate -4").is_err());
        assert!(parse_str("loadgen --rate fast").is_err());
        assert!(parse_str("loadgen --threads 0").is_err());
        assert!(parse_str("loadgen --seed minus-one").is_err());
        assert!(parse_str("loadgen --csv x.csv").is_err());
    }

    #[test]
    fn benchdiff_takes_two_positional_reports() {
        match parse_str("benchdiff base.json cand.json").unwrap() {
            Command::Benchdiff(o) => {
                assert_eq!(o.baseline, PathBuf::from("base.json"));
                assert_eq!(o.candidate, PathBuf::from("cand.json"));
                assert!((o.max_ratio - 2.0).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
        match parse_str("benchdiff a.json b.json --max-ratio 1.5").unwrap() {
            Command::Benchdiff(o) => assert!((o.max_ratio - 1.5).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_str("benchdiff --help"), Ok(Command::Help));
        assert!(parse_str("benchdiff").is_err());
        assert!(parse_str("benchdiff one.json").is_err());
        assert!(parse_str("benchdiff a.json b.json c.json").is_err());
        assert!(parse_str("benchdiff a.json b.json --max-ratio 0").is_err());
        assert!(parse_str("benchdiff a.json b.json --max-ratio huge").is_err());
        assert!(parse_str("benchdiff a.json b.json --wat").is_err());
    }

    #[test]
    fn csv_path_captured() {
        match parse_str("fit --csv out.csv").unwrap() {
            Command::Fit(o) => assert_eq!(o.csv.unwrap(), PathBuf::from("out.csv")),
            other => panic!("{other:?}"),
        }
    }
}
