//! # nmcache — facade crate
//!
//! Re-exports the public API of the `nmcache` workspace, a reproduction of
//! *"Power-Performance Trade-Offs in Nanometer-Scale Multi-Level Caches
//! Considering Total Leakage"* (Bai et al., DATE 2005).
//!
//! See [`nm_cache_core`] for the experiment drivers, [`nm_device`] for the
//! 65 nm device models, [`nm_geometry`] for the cache circuit model,
//! [`nm_archsim`] for the architectural simulator and [`nm_opt`] for the
//! Vth/Tox assignment optimisers.

pub mod cli;

pub use nm_analyze as analyze;
pub use nm_archsim as archsim;
pub use nm_cache_core as core;
pub use nm_device as device;
pub use nm_geometry as geometry;
pub use nm_loadgen as loadgen;
pub use nm_opt as opt;
pub use nm_store as store;
pub use nm_sweep as sweep;
pub use nm_telemetry as telemetry;
