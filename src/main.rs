//! `nmcache` — reproduce the DATE 2005 experiments from the command line.

use nmcache::analyze::{self, rules::RuleId, AnalyzeError};
use nmcache::archsim::cache::{CacheParams, Replacement};
use nmcache::archsim::hierarchy::TwoLevel;
use nmcache::archsim::trace::{
    read_trace, read_trace_binary, TraceError, TraceWorkload, BINARY_MAGIC,
};
use nmcache::archsim::workload::{SuiteKind, Workload};
use nmcache::archsim::MissRateTable;
use nmcache::cli::{
    self, AnalyzeOptions, BenchdiffOptions, CampaignOptions, CliError, Command, LoadgenOptions,
    LogLevelArg, Options, SchemeArg,
};
use nmcache::core::amat::MainMemory;
use nmcache::core::campaign::{Campaign, CampaignConfig, CampaignError};
use nmcache::core::decay::DecayStudy;
use nmcache::core::fitcheck::fit_report;
use nmcache::core::groups::Scheme;
use nmcache::core::memsys::{MemorySystemStudy, TupleCounts};
use nmcache::core::mixedtech::{MixedTechStudy, STANDARD_SIZES};
use nmcache::core::report::{cell, Series, Table};
use nmcache::core::single::SingleCacheStudy;
use nmcache::core::splitl1::SplitL1Study;
use nmcache::core::thermal::ThermalStudy;
use nmcache::core::twolevel::{TwoLevelStudy, STANDARD_SUITES};
use nmcache::core::variation::{paper_16kb_variation, VariationStudy};
use nmcache::core::StudyError;
use nmcache::device::{KnobGrid, TechProfile, TechnologyNode};
use nmcache::store::Store;
use std::fmt;
use std::process::ExitCode;
use std::sync::Arc;

/// A fatal error, classified so each failure class maps to a distinct,
/// documented exit code (see `EXIT CODES` in [`cli::USAGE`]).
#[derive(Debug)]
enum AppError {
    /// Malformed invocation: unknown command/flag or a bad value.
    Usage(CliError),
    /// A study or device/geometry model rejected the configuration.
    Study(StudyError),
    /// A trace file failed to parse or validate.
    Trace(TraceError),
    /// The filesystem said no (missing trace file, unwritable CSV, ...).
    Io(std::io::Error),
    /// `nmcache analyze` found violations or stale allowlist entries.
    /// The findings themselves were already printed; this only carries
    /// the summary line for the final `error:` message.
    Findings(String),
    /// The persistence layer failed: a corrupt or mismatched campaign
    /// checkpoint, a checkpoint write failure, or `--require-store`
    /// with no usable store.
    Store(String),
    /// `nmcache benchdiff` found at least one histogram whose candidate
    /// p99 exceeds the allowed ratio over the baseline. The comparison
    /// table was already printed; this carries the summary line.
    Slo(String),
}

impl AppError {
    /// The process exit code for this failure class.
    fn exit_code(&self) -> u8 {
        match self {
            AppError::Usage(_) => 2,
            AppError::Study(_) | AppError::Findings(_) => 3,
            AppError::Trace(_) => 4,
            AppError::Io(_) => 5,
            AppError::Store(_) => 6,
            AppError::Slo(_) => 7,
        }
    }
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Usage(e) => write!(f, "{e}"),
            AppError::Study(e) => write!(f, "{e}"),
            AppError::Trace(e) => write!(f, "trace: {e}"),
            AppError::Io(e) => write!(f, "{e}"),
            AppError::Findings(summary) => write!(f, "{summary}"),
            AppError::Store(e) => write!(f, "{e}"),
            AppError::Slo(summary) => write!(f, "{summary}"),
        }
    }
}

impl From<CliError> for AppError {
    fn from(e: CliError) -> Self {
        AppError::Usage(e)
    }
}

impl From<StudyError> for AppError {
    fn from(e: StudyError) -> Self {
        AppError::Study(e)
    }
}

impl From<nmcache::geometry::GeometryError> for AppError {
    fn from(e: nmcache::geometry::GeometryError) -> Self {
        AppError::Study(e.into())
    }
}

impl From<nmcache::archsim::SimError> for AppError {
    fn from(e: nmcache::archsim::SimError) -> Self {
        AppError::Study(e.into())
    }
}

impl From<TraceError> for AppError {
    fn from(e: TraceError) -> Self {
        AppError::Trace(e)
    }
}

impl From<std::io::Error> for AppError {
    fn from(e: std::io::Error) -> Self {
        AppError::Io(e)
    }
}

impl From<CampaignError> for AppError {
    fn from(e: CampaignError) -> Self {
        // A per-cell model failure is a study problem (exit 3); every
        // other variant is the persistence layer failing (exit 6).
        match e {
            CampaignError::Study(e) => AppError::Study(e),
            other => AppError::Store(other.to_string()),
        }
    }
}

impl From<AnalyzeError> for AppError {
    fn from(e: AnalyzeError) -> Self {
        // Unreadable files are I/O failures (exit 5); a malformed
        // allowlist is a usage problem (exit 2) — the side file is part
        // of the invocation, like a bad flag value.
        if e.is_io() {
            AppError::Io(std::io::Error::other(e.to_string()))
        } else {
            AppError::Usage(CliError(e.to_string()))
        }
    }
}

fn main() -> ExitCode {
    let command = match cli::parse(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            return ExitCode::from(AppError::Usage(e).exit_code());
        }
    };
    let telemetry = configure_telemetry(&command);
    let result = run(command).and_then(|()| finish_telemetry(&telemetry));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("hint: run `nmcache help` for usage and exit codes");
            ExitCode::from(e.exit_code())
        }
    }
}

/// What to do with the telemetry registry once the command finishes.
#[derive(Debug, Default)]
struct TelemetryPlan {
    show_stats: bool,
    metrics: Option<std::path::PathBuf>,
    trace_out: Option<std::path::PathBuf>,
}

/// Applies the `--threads` override and arms the unified telemetry
/// registry when any observability flag (`--stats`, `--metrics`,
/// `--trace-out`, `--log-level`) asks for it. With all of them off the
/// registry stays disabled and instrumented code pays one relaxed
/// atomic load per call site, keeping golden outputs byte-identical.
fn configure_telemetry(command: &Command) -> TelemetryPlan {
    // Campaign and loadgen carry their own thread/telemetry flags
    // (loadgen arms and drains the registry itself — its report *is*
    // the command's product, not an optional add-on).
    if let Command::Campaign(opts) = command {
        if let Some(n) = opts.threads {
            nmcache::sweep::set_global_workers(Some(n));
        }
        if opts.stats || opts.metrics.is_some() {
            nmcache::telemetry::enable();
            nmcache::telemetry::set_note("command", "campaign");
        }
        return TelemetryPlan {
            show_stats: opts.stats,
            metrics: opts.metrics.clone(),
            trace_out: None,
        };
    }
    if let Command::Loadgen(opts) = command {
        if let Some(n) = opts.threads {
            nmcache::sweep::set_global_workers(Some(n));
        }
        return TelemetryPlan::default();
    }
    let Some(opts) = options_of(command) else {
        return TelemetryPlan::default();
    };
    if let Some(n) = opts.threads {
        nmcache::sweep::set_global_workers(Some(n));
    }
    let level = match opts.log_level {
        LogLevelArg::Off => nmcache::telemetry::LogLevel::Off,
        LogLevelArg::Info => nmcache::telemetry::LogLevel::Info,
        LogLevelArg::Debug => nmcache::telemetry::LogLevel::Debug,
    };
    nmcache::telemetry::set_log_level(level);
    let wanted = opts.stats
        || opts.metrics.is_some()
        || opts.trace_out.is_some()
        || level != nmcache::telemetry::LogLevel::Off;
    if wanted {
        nmcache::telemetry::enable();
        nmcache::telemetry::set_note("command", command_name(command));
    }
    TelemetryPlan {
        show_stats: opts.stats,
        metrics: opts.metrics.clone(),
        trace_out: opts.trace_out.clone(),
    }
}

/// Exports the run's telemetry per the plan: the `--stats` table, the
/// `--metrics` JSON report and the `--trace-out` Chrome trace all read
/// one registry snapshot, so they always agree with each other.
fn finish_telemetry(plan: &TelemetryPlan) -> Result<(), AppError> {
    if !plan.show_stats && plan.metrics.is_none() && plan.trace_out.is_none() {
        return Ok(());
    }
    let snapshot = nmcache::telemetry::snapshot();
    if let Some(path) = &plan.metrics {
        nmcache::telemetry::RunReport::from_snapshot(snapshot.clone())
            .write(path)
            .map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("cannot write metrics report {}: {e}", path.display()),
                )
            })?;
        eprintln!("[metrics] {}", path.display());
    }
    if let Some(path) = &plan.trace_out {
        nmcache::telemetry::report::write_chrome_trace(&snapshot, path).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!("cannot write trace {}: {e}", path.display()),
            )
        })?;
        eprintln!("[trace] {}", path.display());
    }
    if plan.show_stats {
        let recorded: Vec<nmcache::sweep::SweepStats> = snapshot
            .sweeps
            .iter()
            .map(|r| nmcache::sweep::SweepStats {
                label: r.label.clone(),
                items: r.items,
                workers: r.workers,
                wall: std::time::Duration::from_nanos(r.wall_ns),
                faults: r.faults,
                retries: r.retries,
                poisoned_workers: r.poisoned_workers,
            })
            .collect();
        if !recorded.is_empty() {
            println!("\n{}", nmcache::core::report::sweep_stats_table(&recorded));
        }
    }
    Ok(())
}

/// The subcommand's name, recorded as the report's `command` note.
fn command_name(command: &Command) -> &'static str {
    match command {
        Command::Fig1(_) => "fig1",
        Command::Fig2(_) => "fig2",
        Command::Schemes(_) => "schemes",
        Command::L2Sweep(_) => "l2-sweep",
        Command::L1Sweep(_) => "l1-sweep",
        Command::Ablation(_) => "ablation",
        Command::Fit(_) => "fit",
        Command::Explore(_) => "explore",
        Command::MissRates(_) => "missrates",
        Command::Variation(_) => "variation",
        Command::Thermal(_) => "thermal",
        Command::Decay(_) => "decay",
        Command::SplitL1(_) => "split-l1",
        Command::TraceSim(_) => "trace-sim",
        Command::E8(_) => "e8",
        Command::Campaign(_) => "campaign",
        Command::Loadgen(_) => "loadgen",
        Command::Benchdiff(_) => "benchdiff",
        Command::Analyze(_) => "analyze",
        Command::List => "list",
        Command::Help => "help",
    }
}

fn options_of(command: &Command) -> Option<&Options> {
    match command {
        Command::Fig1(o)
        | Command::Fig2(o)
        | Command::Schemes(o)
        | Command::L2Sweep(o)
        | Command::L1Sweep(o)
        | Command::Ablation(o)
        | Command::Fit(o)
        | Command::Explore(o)
        | Command::MissRates(o)
        | Command::Variation(o)
        | Command::Thermal(o)
        | Command::Decay(o)
        | Command::SplitL1(o)
        | Command::TraceSim(o)
        | Command::E8(o) => Some(o),
        Command::Campaign(_)
        | Command::Loadgen(_)
        | Command::Benchdiff(_)
        | Command::Analyze(_)
        | Command::List
        | Command::Help => None,
    }
}

fn suite_of(opts: &Options) -> Result<SuiteKind, AppError> {
    match &opts.suite {
        None => Ok(SuiteKind::Spec2000),
        Some(name) => SuiteKind::from_name(name)
            .ok_or_else(|| CliError(format!("unknown suite {name:?}")).into()),
    }
}

fn scheme_of(arg: SchemeArg) -> Scheme {
    match arg {
        SchemeArg::Uniform => Scheme::Uniform,
        SchemeArg::Split => Scheme::Split,
        SchemeArg::PerComponent => Scheme::PerComponent,
    }
}

fn emit(table: &Table, opts: &Options) -> Result<(), AppError> {
    println!("{table}");
    if let Some(path) = &opts.csv {
        table.write_csv(path)?;
        println!("[csv] {}", path.display());
    }
    Ok(())
}

fn run(command: Command) -> Result<(), AppError> {
    match command {
        Command::Help => {
            println!("{}", cli::USAGE);
            Ok(())
        }
        Command::List => {
            println!("{}", nmcache::core::experiments::registry_table());
            Ok(())
        }
        Command::Fig1(opts) => {
            let study = SingleCacheStudy::paper_16kb()?;
            let series = study.fixed_knob_curves()?;
            println!(
                "{}",
                nmcache::core::plot::ascii_plot(
                    &series,
                    72,
                    22,
                    "access time (ps)",
                    "leakage (mW)"
                )
            );
            let table = Series::to_table(
                &series,
                "Figure 1: fixed Vth vs fixed Tox (16KB)",
                "access time (ps)",
                "leakage (mW)",
            );
            emit(&table, &opts)
        }
        Command::Fig2(opts) => {
            let missrates = build_missrates(&[opts.l1_bytes], &[opts.l2_bytes], opts.quick);
            let stats = *missrates.get(opts.l1_bytes, opts.l2_bytes).ok_or(
                StudyError::MissingMissRates {
                    l1_bytes: opts.l1_bytes,
                    l2_bytes: opts.l2_bytes,
                },
            )?;
            let study = MemorySystemStudy::new(
                opts.l1_bytes,
                opts.l2_bytes,
                stats,
                &TechnologyNode::bptm65(),
                KnobGrid::coarse(),
                MainMemory::default(),
            )?;
            let targets = study.amat_sweep(opts.steps);
            let curves = study.tuple_curves(&TupleCounts::FIGURE2, &targets);
            println!(
                "{}",
                nmcache::core::plot::ascii_plot(&curves, 72, 22, "AMAT (ps)", "total energy (pJ)")
            );
            emit(&study.tuple_table(&TupleCounts::FIGURE2, &targets), &opts)
        }
        Command::Schemes(opts) => {
            let study = SingleCacheStudy::paper_16kb()?;
            let deadlines: Vec<_> = study
                .delay_sweep(opts.steps + 1)
                .into_iter()
                .skip(1)
                .collect();
            emit(&study.scheme_comparison(&deadlines), &opts)
        }
        Command::Ablation(opts) => {
            let study = SingleCacheStudy::paper_16kb()?;
            let deadlines: Vec<_> = study
                .delay_sweep(opts.steps + 2)
                .into_iter()
                .skip(2)
                .collect();
            emit(&study.knob_ablation(&deadlines), &opts)
        }
        Command::Fit(opts) => {
            let tech = TechnologyNode::bptm65();
            let circuit = nmcache::geometry::CacheCircuit::new(
                nmcache::geometry::CacheConfig::new(opts.l1_bytes, 64, 4)?,
                &tech,
            );
            emit(&fit_report(&circuit, &KnobGrid::paper())?, &opts)
        }
        Command::Explore(opts) => {
            let tech = TechnologyNode::bptm65();
            let config = nmcache::geometry::CacheConfig::new(opts.l1_bytes, 64, 4)?;
            let ranked = nmcache::geometry::explore::explore(
                config,
                &tech,
                nmcache::geometry::explore::Objective::EnergyDelay,
            );
            let mut table = Table::new(
                format!("Subarray foldings of {config}, ranked by energy-delay product"),
                &[
                    "rows",
                    "cols",
                    "mats",
                    "access (ps)",
                    "read (pJ)",
                    "leak (mW)",
                ],
            );
            for e in ranked.iter().take(opts.steps) {
                table.push_row(vec![
                    e.org.rows.to_string(),
                    e.org.cols.to_string(),
                    e.org.subarrays.to_string(),
                    cell(e.metrics.access_time().picos(), 0),
                    cell(e.metrics.read_energy().picos(), 2),
                    cell(e.metrics.leakage().total().milli(), 3),
                ]);
            }
            emit(&table, &opts)
        }
        Command::L2Sweep(opts) => {
            let study = TwoLevelStudy::standard(opts.quick);
            let l2_sizes = TwoLevelStudy::standard_l2_sizes();
            let target = study.amat_target(opts.l1_bytes, &l2_sizes, opts.slack)?;
            let sweep =
                study.l2_size_sweep(opts.l1_bytes, &l2_sizes, scheme_of(opts.scheme), target)?;
            emit(&sweep.to_table(), &opts)?;
            if let Some(w) = sweep.winner() {
                println!("winner: {} KB", w.size_bytes / 1024);
            }
            Ok(())
        }
        Command::L1Sweep(opts) => {
            let study = TwoLevelStudy::standard(opts.quick);
            let l1_sizes = TwoLevelStudy::standard_l1_sizes();
            let mut best = f64::INFINITY;
            for &l1 in &l1_sizes {
                best = best.min(study.min_amat_l1_fixed(l1, opts.l2_bytes)?.0);
            }
            let target = nmcache::device::units::Seconds(best * (1.0 + opts.slack));
            let sweep = study.l1_size_sweep(&l1_sizes, opts.l2_bytes, target)?;
            emit(&sweep.to_table(), &opts)?;
            if let Some(w) = sweep.winner() {
                println!("winner: {} KB", w.size_bytes / 1024);
            }
            Ok(())
        }
        Command::MissRates(opts) => {
            let table = build_missrates(
                &TwoLevelStudy::standard_l1_sizes(),
                &TwoLevelStudy::standard_l2_sizes(),
                opts.quick,
            );
            let mut out = Table::new(
                format!("Miss rates averaged over {:?}", table.suites()),
                &["L1 (KB)", "L2 (KB)", "m1", "m2", "global"],
            );
            for (&(l1, l2), s) in table.iter() {
                out.push_row(vec![
                    cell(l1 as f64 / 1024.0, 0),
                    cell(l2 as f64 / 1024.0, 0),
                    cell(s.l1_miss_rate, 4),
                    cell(s.l2_local_miss_rate, 4),
                    cell(s.global_miss_rate(), 5),
                ]);
            }
            emit(&out, &opts)
        }
        Command::Variation(opts) => {
            let vs: VariationStudy = paper_16kb_variation(opts.samples, 65)?;
            let deadlines: Vec<_> = vs
                .study()
                .delay_sweep(opts.steps)
                .into_iter()
                .skip(2)
                .collect();
            emit(&vs.to_table(&deadlines), &opts)
        }
        Command::Thermal(opts) => {
            let study = ThermalStudy::paper_16kb()?;
            emit(&study.to_table(opts.slack), &opts)
        }
        Command::Decay(opts) => {
            let single = SingleCacheStudy::paper_16kb()?;
            let study = DecayStudy::new(single, suite_of(&opts)?, 300_000);
            let deadline = study.study().delay_sweep(5)[2] * (1.0 + opts.slack - 0.15);
            emit(&study.to_table(deadline), &opts)
        }
        Command::SplitL1(opts) => {
            let study = SplitL1Study::new(
                opts.l1_bytes,
                opts.l1_bytes,
                opts.l2_bytes,
                suite_of(&opts)?,
                if opts.quick { 150_000 } else { 500_000 },
                KnobGrid::paper(),
            )?;
            emit(&study.to_table(&[0.08, opts.slack, 0.30]), &opts)
        }
        Command::TraceSim(opts) => {
            // The parser guarantees --trace was given; fail as a usage
            // error rather than panicking if that invariant ever breaks.
            let Some(path) = opts.trace.as_ref() else {
                return Err(CliError("trace-sim requires --trace <PATH>".into()).into());
            };
            let bytes = std::fs::read(path).map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("cannot read trace {}: {e}", path.display()),
                )
            })?;
            // Auto-detect the compact binary format by its magic.
            let trace = if bytes.starts_with(&BINARY_MAGIC) {
                read_trace_binary(bytes.as_slice())?
            } else {
                read_trace(bytes.as_slice())?
            };
            println!("{}: {} references", path.display(), trace.len());
            let mut workload = TraceWorkload::try_new(trace)?;
            let mut h = TwoLevel::new(
                CacheParams::new(opts.l1_bytes, 64, 4)?,
                CacheParams::new(opts.l2_bytes, 64, 8)?,
                Replacement::Lru,
            );
            let n = (workload.len() as u64).max(1);
            for _ in 0..n {
                h.access(workload.next_access());
            }
            let s = h.stats();
            let mut table = Table::new(
                format!(
                    "Trace replay, L1 {} KB / L2 {} KB",
                    opts.l1_bytes / 1024,
                    opts.l2_bytes / 1024
                ),
                &["references", "m1", "m2", "global", "L1 writebacks"],
            );
            table.push_row(vec![
                n.to_string(),
                cell(s.l1_miss_rate(), 4),
                cell(s.l2_local_miss_rate(), 4),
                cell(s.l2_global_miss_rate(), 5),
                s.l1_writebacks.to_string(),
            ]);
            emit(&table, &opts)
        }
        Command::E8(opts) => {
            let sizes = [
                opts.level_sizes[0].unwrap_or(STANDARD_SIZES[0]),
                opts.level_sizes[1].unwrap_or(STANDARD_SIZES[1]),
                opts.level_sizes[2].unwrap_or(STANDARD_SIZES[2]),
            ];
            let upstream = [
                tech_of(opts.upstream_techs[0].as_deref())?,
                tech_of(opts.upstream_techs[1].as_deref())?,
            ];
            let candidates: Vec<TechProfile> = match &opts.l3_tech {
                Some(name) => vec![tech_of(Some(name))?],
                None => TechProfile::KNOWN_NAMES
                    .iter()
                    .map(|n| tech_of(Some(n)))
                    .collect::<Result<_, _>>()?,
            };
            let study = MixedTechStudy::with_shape(opts.quick, sizes, upstream)?;
            let outcome = study.compare(&candidates, opts.slack)?;
            emit(&outcome.to_table(), &opts)
        }
        Command::Campaign(opts) => run_campaign(&opts),
        Command::Loadgen(opts) => run_loadgen(&opts),
        Command::Benchdiff(opts) => run_benchdiff(&opts),
        Command::Analyze(opts) => run_analyze(&opts),
    }
}

/// Replays a deterministic query mix against the in-process evaluator
/// and publishes the drained telemetry registry as a schema-versioned
/// serve report (`BENCH_serve.json` by default) with p50/p95/p99 per
/// query class.
fn run_loadgen(opts: &LoadgenOptions) -> Result<(), AppError> {
    let config = nmcache::loadgen::LoadgenConfig {
        seed: opts.seed,
        queries: opts.queries,
        mode: match opts.rate_qps {
            Some(rate_qps) => nmcache::loadgen::Mode::Open { rate_qps },
            None => nmcache::loadgen::Mode::Closed,
        },
        quick: opts.quick,
    };
    nmcache::telemetry::reset();
    nmcache::telemetry::enable();
    nmcache::telemetry::set_note("command", "loadgen");
    let summary = nmcache::loadgen::run(&config)?;
    let snapshot = nmcache::telemetry::drain();
    nmcache::telemetry::disable();

    let mut table = Table::new(
        format!(
            "Serve latency, seed {} ({} queries)",
            opts.seed, summary.queries
        ),
        &["class", "queries", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
    );
    for class in nmcache::loadgen::QueryClass::ALL {
        let Some(h) = snapshot.histograms.get(class.latency_name()) else {
            continue;
        };
        table.push_row(vec![
            class.label().to_string(),
            h.count.to_string(),
            cell(h.quantile(0.50) * 1e3, 3),
            cell(h.quantile(0.95) * 1e3, 3),
            cell(h.quantile(0.99) * 1e3, 3),
        ]);
    }
    println!("{table}");
    println!(
        "loadgen: {} queries ({} feasible, {} infeasible, {} errors) \
         in {:.2}s, {:.1} qps",
        summary.queries,
        summary.feasible,
        summary.infeasible,
        summary.errors,
        summary.wall_seconds,
        summary.throughput_qps,
    );
    if let Some(msg) = &summary.first_error {
        eprintln!("warning: first query error: {msg}");
    }
    nmcache::telemetry::RunReport::from_snapshot(snapshot)
        .write(&opts.out)
        .map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!("cannot write serve report {}: {e}", opts.out.display()),
            )
        })?;
    println!("[serve] {}", opts.out.display());
    Ok(())
}

/// Compares two serve reports and fails with the SLO exit code when the
/// candidate's p99 regresses past `--max-ratio` on any histogram.
fn run_benchdiff(opts: &BenchdiffOptions) -> Result<(), AppError> {
    let read = |path: &std::path::Path| -> Result<String, AppError> {
        std::fs::read_to_string(path)
            .map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("cannot read report {}: {e}", path.display()),
                )
            })
            .map_err(AppError::from)
    };
    let baseline = read(&opts.baseline)?;
    let candidate = read(&opts.candidate)?;
    let report = nmcache::loadgen::diff(&baseline, &candidate, opts.max_ratio)
        .map_err(|e| AppError::Usage(CliError(e.to_string())))?;

    let mut table = Table::new(
        format!(
            "p99 comparison, {} vs {} (max ratio {}, machine scale {:.3})",
            opts.baseline.display(),
            opts.candidate.display(),
            opts.max_ratio,
            report.machine_scale,
        ),
        &[
            "histogram",
            "base p99 (ms)",
            "cand p99 (ms)",
            "ratio",
            "verdict",
        ],
    );
    for h in &report.histograms {
        table.push_row(vec![
            h.name.clone(),
            cell(h.base_p99 * 1e3, 3),
            cell(h.cand_p99 * 1e3, 3),
            cell(h.ratio, 3),
            if h.regressed { "REGRESSED" } else { "ok" }.to_string(),
        ]);
    }
    println!("{table}");
    let regressions = report.regressions();
    if regressions > 0 {
        return Err(AppError::Slo(format!(
            "benchdiff: {regressions} histogram(s) regressed past {}x p99",
            opts.max_ratio
        )));
    }
    println!(
        "benchdiff: {} histogram(s) compared, none regressed",
        report.histograms.len()
    );
    Ok(())
}

/// Runs a crash-resumable cross-product campaign rooted at `--out`:
/// checkpoint at `<out>/checkpoint.nmck`, persistent store at
/// `<out>/store`. An interrupted campaign (`--max-cells`, a crash, a
/// kill) resumes by rerunning the same command.
fn run_campaign(opts: &CampaignOptions) -> Result<(), AppError> {
    let config = CampaignConfig {
        l1_sizes: opts.l1_sizes.clone(),
        l2_sizes: opts.l2_sizes.clone(),
        schemes: opts.schemes.iter().copied().map(scheme_of).collect(),
        l2_techs: opts
            .techs
            .iter()
            .map(|n| tech_of(Some(n)))
            .collect::<Result<_, _>>()?,
        temperatures_c: opts.temps_c.clone(),
        slack: opts.slack,
        quick: opts.quick,
        checkpoint_every: opts.checkpoint_every,
    };
    std::fs::create_dir_all(&opts.out).map_err(|e| {
        AppError::Store(format!(
            "cannot create campaign directory {}: {e}",
            opts.out.display()
        ))
    })?;
    // The store is an accelerator, not a correctness requirement: if it
    // cannot open, warn and run without it — unless --require-store
    // promotes that to a persistence failure.
    let store = match Store::open(&opts.out.join("store")) {
        Ok(s) => Some(Arc::new(s)),
        Err(e) if opts.require_store => {
            return Err(AppError::Store(format!("cannot open store: {e}")));
        }
        Err(e) => {
            eprintln!("warning: continuing without store: {e}");
            None
        }
    };
    let checkpoint = opts.out.join("checkpoint.nmck");
    let campaign = Campaign::new(config, store);
    let outcome = campaign.run(&checkpoint, opts.fresh, opts.max_cells)?;

    let table = outcome.to_table();
    println!("{table}");
    if let Some(path) = &opts.csv {
        table.write_csv(path)?;
        println!("[csv] {}", path.display());
    }
    for (cell, reason) in outcome.failures() {
        eprintln!("warning: cell {cell} failed: {reason}");
    }
    println!(
        "campaign: {} computed, {} resumed, {} failed, {} of {} cells done",
        outcome.computed,
        outcome.resumed,
        outcome.failed,
        outcome.computed + outcome.resumed,
        outcome.total,
    );
    if !outcome.complete {
        println!(
            "rerun the same command to resume from {}",
            checkpoint.display()
        );
    }
    Ok(())
}

/// Runs the D1–D6 static-analysis pass and maps the outcome onto the
/// exit-code discipline: clean → 0, findings or stale allowlist
/// entries → 3, malformed side file → 2, unreadable file → 5.
fn run_analyze(opts: &AnalyzeOptions) -> Result<(), AppError> {
    let root = opts.root.clone().unwrap_or_else(|| ".".into());
    let mut config = analyze::Config::for_root(root);
    if !opts.rules.is_empty() {
        let mut rules = Vec::new();
        for name in &opts.rules {
            let rule = RuleId::from_name(name)
                .ok_or_else(|| CliError(format!("unknown rule {name:?} (expected D1..D6)")))?;
            if !rules.contains(&rule) {
                rules.push(rule);
            }
        }
        config.rules = rules;
    }
    let analysis = analyze::analyze(&config)?;
    print!("{}", analyze::report::render_text(&analysis));
    if let Some(path) = &opts.json {
        std::fs::write(path, analyze::report::render_json(&analysis)).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!("cannot write findings report {}: {e}", path.display()),
            )
        })?;
        eprintln!("[analyze] {}", path.display());
    }
    if analysis.is_clean() {
        Ok(())
    } else {
        Err(AppError::Findings(format!(
            "analyze: {} finding(s), {} stale allowlist entr{}",
            analysis.findings.len(),
            analysis.stale.len(),
            if analysis.stale.len() == 1 {
                "y"
            } else {
                "ies"
            },
        )))
    }
}

/// Resolves a `--l<i>-tech` name; `None` means the SRAM baseline.
fn tech_of(name: Option<&str>) -> Result<TechProfile, AppError> {
    match name {
        None => Ok(TechProfile::sram()),
        Some(n) => TechProfile::by_name(n).ok_or_else(|| {
            CliError(format!(
                "unknown technology {n:?} (expected one of {:?})",
                TechProfile::KNOWN_NAMES
            ))
            .into()
        }),
    }
}

fn build_missrates(l1_sizes: &[u64], l2_sizes: &[u64], quick: bool) -> MissRateTable {
    let (warmup, measure) = if quick {
        (50_000, 100_000)
    } else {
        (300_000, 600_000)
    };
    MissRateTable::build(l1_sizes, l2_sizes, &STANDARD_SUITES, 2005, warmup, measure)
}
