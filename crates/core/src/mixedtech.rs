//! E8: a three-level, mixed-technology hierarchy.
//!
//! The paper stops at two SRAM levels; this study extends its exact
//! machinery — miss-rate chain → AMAT weights → iso-AMAT leakage
//! minimisation — one level further and lets the L3's cell technology
//! vary. An L1/L2 of SRAM backed by a 4 MB L3 of SRAM, eDRAM or STT-MRAM
//! (plus the DRAM backstop) is evaluated under one shared AMAT target,
//! and the study reports which technology leaks least once every level's
//! knobs are re-optimised around it:
//!
//! * eDRAM trades 3× array latency for ~16× lower array leakage plus a
//!   knob-independent refresh floor,
//! * STT-MRAM trades 5× array latency (and a 10× write energy) for
//!   near-zero array leakage,
//! * SRAM keeps its latency advantage but pays full leakage, so its knobs
//!   must run far more conservative to compete on power.
//!
//! The per-level delay weights come from [`HierarchySpec::try_amat_weights`]
//! over the simulated miss-rate chain — the N-level generalisation of the
//! paper's `AMAT = t_L1 + m1·(t_L2 + m2·t_mem)`.

use crate::amat::MainMemory;
use crate::eval::{Evaluator, HierarchySpec};
use crate::groups::{CostKind, Scheme};
use crate::report::{cell, Table};
use crate::twolevel::{BLOCK_BYTES, STANDARD_SUITES};
use crate::StudyError;
use nm_archsim::{simulate_chain, CacheParams};
use nm_device::units::{Seconds, Watts};
use nm_device::{KnobGrid, TechProfile, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig, ComponentKnobs};
use nm_opt::objective::Deadline;
use serde::{Deserialize, Serialize};

/// Default level sizes (bytes): 16 KB L1, 256 KB L2, 4 MB L3.
pub const STANDARD_SIZES: [u64; 3] = [16 * 1024, 256 * 1024, 4 * 1024 * 1024];

/// Per-level associativities (4-way L1, 8-way L2, 16-way L3).
pub const STANDARD_WAYS: [u64; 3] = [4, 8, 16];

/// One L3-technology candidate's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedRow {
    /// L3 technology name.
    pub tech: String,
    /// L1 local miss rate.
    pub m1: f64,
    /// L2 local miss rate.
    pub m2: f64,
    /// L3 local miss rate.
    pub m3: f64,
    /// Achieved AMAT when feasible.
    pub amat: Option<Seconds>,
    /// Optimised L3 leakage (including any refresh floor) when feasible.
    pub l3_leakage: Option<Watts>,
    /// Total system (L1 + L2 + L3) leakage when feasible.
    pub total_leakage: Option<Watts>,
    /// Winning per-level knob assignments (L1, L2, L3) when feasible.
    pub knobs: Option<Vec<ComponentKnobs>>,
}

/// A completed technology comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedOutcome {
    /// Table title.
    pub title: String,
    /// The shared iso-AMAT target every candidate was optimised under.
    pub amat_target: Seconds,
    /// Per-candidate rows in input order.
    pub rows: Vec<MixedRow>,
}

impl MixedOutcome {
    /// The feasible row with the least total leakage.
    pub fn winner(&self) -> Option<&MixedRow> {
        self.rows
            .iter()
            .filter_map(|r| r.total_leakage.map(|w| (r, w.0)))
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(r, _)| r)
    }

    /// Renders the comparison as a text/CSV table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            self.title.clone(),
            &[
                "L3 tech",
                "m1",
                "m2",
                "m3",
                "AMAT (ps)",
                "L3 leak (mW)",
                "total leak (mW)",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.tech.clone(),
                cell(r.m1, 4),
                cell(r.m2, 4),
                cell(r.m3, 4),
                r.amat
                    .map_or_else(|| "infeasible".to_owned(), |a| cell(a.picos(), 0)),
                r.l3_leakage
                    .map_or_else(|| "-".to_owned(), |w| cell(w.milli(), 3)),
                r.total_leakage
                    .map_or_else(|| "-".to_owned(), |w| cell(w.milli(), 3)),
            ]);
        }
        t
    }
}

/// The E8 study: a simulated three-level miss-rate chain, a CMOS base
/// node, per-level technologies for L1/L2, and the candidate set for L3.
#[derive(Debug, Clone)]
pub struct MixedTechStudy {
    tech: TechnologyNode,
    eval: Evaluator,
    memory: MainMemory,
    sizes: [u64; 3],
    upstream: [TechProfile; 2],
    rates: [f64; 3],
    write_fraction: f64,
}

impl MixedTechStudy {
    /// Builds the standard study shape ([`STANDARD_SIZES`], SRAM L1/L2)
    /// with miss rates averaged over [`STANDARD_SUITES`]. `quick` trades
    /// simulation length for speed (tests, CI golden checks).
    ///
    /// # Errors
    ///
    /// Propagates impossible cache shapes and invalid simulated rates.
    pub fn standard(quick: bool) -> Result<Self, StudyError> {
        Self::with_shape(
            quick,
            STANDARD_SIZES,
            [TechProfile::sram(), TechProfile::sram()],
        )
    }

    /// [`standard`](Self::standard) with custom level sizes and L1/L2
    /// technologies.
    ///
    /// # Errors
    ///
    /// Propagates impossible cache shapes and invalid simulated rates.
    pub fn with_shape(
        quick: bool,
        sizes: [u64; 3],
        upstream: [TechProfile; 2],
    ) -> Result<Self, StudyError> {
        let (warmup, measure) = if quick {
            (50_000, 100_000)
        } else {
            (300_000, 600_000)
        };
        let params: Vec<CacheParams> = sizes
            .iter()
            .zip(STANDARD_WAYS)
            .map(|(&b, w)| CacheParams::new(b, BLOCK_BYTES, w))
            .collect::<Result<_, _>>()?;
        // Average the chain over the paper's suite trio, like the
        // two-level miss-rate tables.
        let mut rates = [0.0f64; 3];
        let mut write_fraction = 0.0;
        for suite in STANDARD_SUITES {
            let mut w = suite.build(2005);
            let s = simulate_chain(&params, w.as_mut(), warmup, measure)?;
            for (acc, m) in rates.iter_mut().zip(&s.local_miss_rates) {
                *acc += m;
            }
            write_fraction += s.write_fraction;
        }
        let n = STANDARD_SUITES.len() as f64;
        for acc in &mut rates {
            *acc /= n;
        }
        write_fraction /= n;
        Ok(MixedTechStudy {
            tech: TechnologyNode::bptm65(),
            eval: Evaluator::new(KnobGrid::paper()),
            memory: MainMemory::default(),
            sizes,
            upstream,
            rates,
            write_fraction,
        })
    }

    /// The averaged local miss-rate chain `[m1, m2, m3]`.
    pub fn miss_rates(&self) -> [f64; 3] {
        self.rates
    }

    /// Store fraction of the reference stream.
    pub fn write_fraction(&self) -> f64 {
        self.write_fraction
    }

    /// The memoizing evaluator behind the comparison (its
    /// [`stats`](Evaluator::stats) expose surface/front build counters).
    pub fn evaluator(&self) -> &Evaluator {
        &self.eval
    }

    fn level_circuit(&self, i: usize, profile: TechProfile) -> Result<CacheCircuit, StudyError> {
        Ok(CacheCircuit::with_technology(
            CacheConfig::new(self.sizes[i], BLOCK_BYTES, STANDARD_WAYS[i])?,
            &self.tech,
            profile,
        ))
    }

    fn spec(&self, l3: &TechProfile, weights: &[f64]) -> Result<HierarchySpec, StudyError> {
        Ok(HierarchySpec::new()
            .level(
                "L1",
                self.level_circuit(0, self.upstream[0].clone())?,
                Scheme::Split,
                weights[0],
                CostKind::LeakagePower,
            )
            .level(
                "L2",
                self.level_circuit(1, self.upstream[1].clone())?,
                Scheme::Split,
                weights[1],
                CostKind::LeakagePower,
            )
            .level(
                "L3",
                self.level_circuit(2, l3.clone())?,
                Scheme::Split,
                weights[2],
                CostKind::LeakagePower,
            ))
    }

    /// The knob-independent AMAT floor: `m1·m2·m3·t_mem`.
    pub fn amat_floor(&self) -> Seconds {
        self.memory.access_time * (self.rates[0] * self.rates[1] * self.rates[2])
    }

    /// Optimises each L3 technology candidate under one shared iso-AMAT
    /// target — `(1 + slack)` over the *worst* candidate's fastest
    /// achievable AMAT, so the comparison never writes a technology off
    /// as infeasible merely for being slow.
    ///
    /// # Errors
    ///
    /// Propagates invalid miss rates, impossible geometry and surface
    /// failures.
    pub fn compare(
        &self,
        candidates: &[TechProfile],
        slack: f64,
    ) -> Result<MixedOutcome, StudyError> {
        let weights = HierarchySpec::try_amat_weights(&self.rates[..2])?;
        let floor = self.amat_floor();
        let specs: Vec<(TechProfile, HierarchySpec)> = candidates
            .iter()
            .map(|p| Ok((p.clone(), self.spec(p, &weights)?)))
            .collect::<Result<_, StudyError>>()?;
        // The tightest meaningful target per candidate: every level fully
        // aggressive. The shared target adds slack over the slowest one.
        let worst_min = specs
            .iter()
            .map(|(_, spec)| {
                floor.0
                    + spec
                        .levels()
                        .iter()
                        .map(|l| l.circuit().fastest_access_time().0 * l.delay_weight())
                        .sum::<f64>()
            })
            .fold(0.0f64, f64::max);
        let amat_target = Seconds(worst_min * (1.0 + slack));
        let budget = amat_target.0 - floor.0;

        let mut rows = Vec::with_capacity(specs.len());
        for (profile, spec) in &specs {
            let mut row = MixedRow {
                tech: profile.name.clone(),
                m1: self.rates[0],
                m2: self.rates[1],
                m3: self.rates[2],
                amat: None,
                l3_leakage: None,
                total_leakage: None,
                knobs: None,
            };
            if budget > 0.0 {
                if let Some(sol) = self.eval.try_solve(spec, &Deadline(budget))? {
                    let l3_leak = self
                        .eval
                        .analyze(spec.levels()[2].circuit(), &sol.knobs[2])
                        .leakage()
                        .total();
                    row.amat = Some(Seconds(floor.0 + sol.delay));
                    row.l3_leakage = Some(l3_leak);
                    row.total_leakage = Some(Watts(sol.cost));
                    row.knobs = Some(sol.knobs);
                }
            }
            rows.push(row);
        }
        let title = format!(
            "E8: 3-level mixed-technology hierarchy (L1 {} KB / L2 {} KB / L3 {} KB, \
             iso-AMAT {:.0} ps)",
            self.sizes[0] / 1024,
            self.sizes[1] / 1024,
            self.sizes[2] / 1024,
            amat_target.picos(),
        );
        Ok(MixedOutcome {
            title,
            amat_target,
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> MixedTechStudy {
        MixedTechStudy::standard(true).expect("standard study builds")
    }

    #[test]
    fn chain_rates_are_probabilities() {
        let s = study();
        for m in s.miss_rates() {
            assert!((0.0..=1.0).contains(&m), "rate {m}");
        }
        let wf = s.write_fraction();
        assert!((0.0..=1.0).contains(&wf));
        assert!(s.amat_floor().0 >= 0.0);
    }

    #[test]
    fn all_three_technologies_are_feasible_under_the_shared_target() {
        let s = study();
        let out = s
            .compare(
                &[
                    TechProfile::sram(),
                    TechProfile::edram(),
                    TechProfile::stt_mram(),
                ],
                0.15,
            )
            .unwrap();
        assert_eq!(out.rows.len(), 3);
        for row in &out.rows {
            assert!(row.amat.is_some(), "{} infeasible", row.tech);
            assert!(row.amat.unwrap().0 <= out.amat_target.0 * (1.0 + 1e-9));
            let knobs = row.knobs.as_ref().unwrap();
            assert_eq!(knobs.len(), 3);
            assert!(row.l3_leakage.unwrap().0 <= row.total_leakage.unwrap().0);
        }
        assert!(out.winner().is_some());
    }

    #[test]
    fn low_leakage_technologies_beat_sram_on_power() {
        let s = study();
        let out = s
            .compare(&[TechProfile::sram(), TechProfile::stt_mram()], 0.15)
            .unwrap();
        let sram = out.rows[0].l3_leakage.unwrap().0;
        let mram = out.rows[1].l3_leakage.unwrap().0;
        assert!(
            mram < sram,
            "MRAM L3 leaks {mram} W vs SRAM {sram} W under the same AMAT"
        );
        assert_eq!(out.winner().unwrap().tech, "stt-mram");
    }

    #[test]
    fn table_renders_every_candidate() {
        let s = study();
        let out = s
            .compare(&[TechProfile::sram(), TechProfile::edram()], 0.2)
            .unwrap();
        let text = out.to_table().to_string();
        assert!(text.contains("sram") && text.contains("edram"), "{text}");
        assert!(text.contains("E8"), "{text}");
    }
}
