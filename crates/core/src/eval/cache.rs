//! Compute-once storage for per-component metric surfaces.
//!
//! The studies repeatedly evaluate the same circuits over the same knob
//! grid — E3 and E4 share every surface across schemes, the Figure 2
//! tuple sweep re-prices identical surfaces at every (tuple, target)
//! cell. [`MetricsCache`] keys a [`ComponentSurface`] per
//! `(circuit, component)` so [`CacheCircuit::analyze_component`] runs at
//! most once per `(component, knob point)` within one
//! [`Evaluator`](crate::eval::Evaluator).

use nm_device::KnobPoint;
use nm_geometry::{CacheCircuit, ComponentId, ComponentSurface};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// One cached circuit: the circuit identity plus a compute-once slot per
/// component surface.
#[derive(Debug, Default)]
struct Surfaces {
    slots: [OnceLock<Arc<ComponentSurface>>; 4],
}

/// Find-or-compute store of component surfaces, shared across every query
/// an evaluator answers. Circuits are matched structurally (`PartialEq`)
/// by linear scan — a study touches a handful of circuits, never enough
/// to need hashing.
#[derive(Debug, Default)]
pub(crate) struct MetricsCache {
    entries: RwLock<Vec<(CacheCircuit, Arc<Surfaces>)>>,
    built: AtomicUsize,
    hits: AtomicUsize,
}

impl MetricsCache {
    /// The compute-once slot set for a circuit, inserting an empty entry
    /// on first sight.
    fn surfaces_of(&self, circuit: &CacheCircuit) -> Arc<Surfaces> {
        if let Some((_, s)) = self
            .entries
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .find(|(c, _)| c == circuit)
        {
            return Arc::clone(s);
        }
        let mut entries = self
            .entries
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Re-check under the write lock: another thread may have inserted.
        if let Some((_, s)) = entries.iter().find(|(c, _)| c == circuit) {
            return Arc::clone(s);
        }
        let surfaces = Arc::new(Surfaces::default());
        entries.push((circuit.clone(), Arc::clone(&surfaces)));
        surfaces
    }

    /// The already-built surface for `(circuit, id)`, if any. Does not
    /// count as a cache hit — used to plan bulk builds and for opportunistic
    /// single-point lookups.
    pub(crate) fn peek(
        &self,
        circuit: &CacheCircuit,
        id: ComponentId,
    ) -> Option<Arc<ComponentSurface>> {
        self.entries
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .find(|(c, _)| c == circuit)
            .and_then(|(_, s)| s.slots[id.index()].get().cloned())
    }

    /// The surface for `(circuit, id)`, computing it over `points` when
    /// absent. The computation runs at most once per slot even under
    /// concurrent callers.
    pub(crate) fn surface(
        &self,
        circuit: &CacheCircuit,
        id: ComponentId,
        points: &[KnobPoint],
    ) -> Arc<ComponentSurface> {
        let surfaces = self.surfaces_of(circuit);
        let slot = &surfaces.slots[id.index()];
        if let Some(existing) = slot.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            nm_telemetry::counter_inc(crate::names::EVAL_SURFACE_HIT);
            return Arc::clone(existing);
        }
        let built = slot.get_or_init(|| {
            self.built.fetch_add(1, Ordering::Relaxed);
            nm_telemetry::counter_inc(crate::names::EVAL_SURFACE_BUILT);
            Arc::new(circuit.component_surface(id, points))
        });
        Arc::clone(built)
    }

    /// Installs a surface built externally (the evaluator's parallel bulk
    /// build). A concurrently installed surface wins the race and this one
    /// is dropped — both are bit-identical by purity of the circuit model.
    pub(crate) fn install(
        &self,
        circuit: &CacheCircuit,
        id: ComponentId,
        surface: ComponentSurface,
    ) {
        let surfaces = self.surfaces_of(circuit);
        if surfaces.slots[id.index()].set(Arc::new(surface)).is_ok() {
            self.built.fetch_add(1, Ordering::Relaxed);
            nm_telemetry::counter_inc(crate::names::EVAL_SURFACE_BUILT);
        }
    }

    /// Installs a surface loaded from the persistence tier: like
    /// [`install`](Self::install), but the surface does not count as
    /// *built* — it was loaded, not computed (the caller accounts for
    /// loads separately, so `surfaces_built` keeps meaning "circuit
    /// model passes actually run").
    pub(crate) fn install_loaded(
        &self,
        circuit: &CacheCircuit,
        id: ComponentId,
        surface: ComponentSurface,
    ) {
        let surfaces = self.surfaces_of(circuit);
        let _ = surfaces.slots[id.index()].set(Arc::new(surface));
    }

    /// `(surfaces built, cache hits)` so far.
    pub(crate) fn stats(&self) -> (usize, usize) {
        (
            self.built.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::{KnobGrid, TechnologyNode};
    use nm_geometry::CacheConfig;

    fn circuit(bytes: u64) -> CacheCircuit {
        let tech = TechnologyNode::bptm65();
        CacheCircuit::new(CacheConfig::new(bytes, 64, 4).unwrap(), &tech)
    }

    #[test]
    fn second_lookup_hits_without_rebuilding() {
        let cache = MetricsCache::default();
        let c = circuit(16 * 1024);
        let points: Vec<KnobPoint> = KnobGrid::coarse().points().collect();
        let a = cache.surface(&c, ComponentId::Decoder, &points);
        let b = cache.surface(&c, ComponentId::Decoder, &points);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn distinct_circuits_get_distinct_surfaces() {
        let cache = MetricsCache::default();
        let points: Vec<KnobPoint> = KnobGrid::coarse().points().collect();
        let small = cache.surface(&circuit(16 * 1024), ComponentId::MemoryArray, &points);
        let big = cache.surface(&circuit(64 * 1024), ComponentId::MemoryArray, &points);
        assert_ne!(small.metric_at(0), big.metric_at(0));
        assert_eq!(cache.stats(), (2, 0));
    }

    #[test]
    fn peek_and_install_round_trip() {
        let cache = MetricsCache::default();
        let c = circuit(16 * 1024);
        let points: Vec<KnobPoint> = KnobGrid::coarse().points().collect();
        assert!(cache.peek(&c, ComponentId::DataBus).is_none());
        cache.install(
            &c,
            ComponentId::DataBus,
            c.component_surface(ComponentId::DataBus, &points),
        );
        let peeked = cache.peek(&c, ComponentId::DataBus).expect("installed");
        assert_eq!(peeked.len(), points.len());
        assert_eq!(cache.stats(), (1, 0));
    }
}
