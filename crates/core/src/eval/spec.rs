//! Declarative description of what a study evaluates: the cache levels,
//! their knob-grouping schemes, and how each level's delay and cost enter
//! the system objective.

use crate::error::StudyError;
use crate::groups::{knobs_from_choice, CostKind, Scheme};
use nm_device::{KnobPoint, TechProfile};
use nm_geometry::{CacheCircuit, ComponentKnobs};

/// One cache level of a hierarchy: a circuit, the device technology its
/// cells are built from, the assignment [`Scheme`] grouping its knobs,
/// the weight its delay carries in the system objective (1 for an L1, the
/// L1 miss rate for an L2 in an AMAT study) and the [`CostKind`] its
/// groups are priced under.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSpec {
    label: String,
    circuit: CacheCircuit,
    technology: TechProfile,
    scheme: Scheme,
    delay_weight: f64,
    cost: CostKind,
}

impl LevelSpec {
    /// Human-readable level label ("L1", "D$", …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The level's circuit model.
    pub fn circuit(&self) -> &CacheCircuit {
        &self.circuit
    }

    /// The level's device technology (taken from the circuit at
    /// construction; SRAM for plain circuits).
    pub fn technology(&self) -> &TechProfile {
        &self.technology
    }

    /// The knob-grouping scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The level's delay weight in the system objective.
    pub fn delay_weight(&self) -> f64 {
        self.delay_weight
    }

    /// How the level's groups are priced.
    pub fn cost(&self) -> CostKind {
        self.cost
    }
}

/// An ordered set of [`LevelSpec`]s — the full description of one
/// evaluation problem. Two equal specs describe the same optimisation, so
/// the [`Evaluator`](crate::eval::Evaluator) memoizes fronts keyed on it.
///
/// Group order across the system is the concatenation of each level's
/// [`Scheme::layout`] in level order; a front point's choice vector uses
/// the same order, and [`knobs_from_choice`](Self::knobs_from_choice) is
/// the one canonical way to slice it back into per-level assignments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HierarchySpec {
    levels: Vec<LevelSpec>,
}

impl HierarchySpec {
    /// An empty hierarchy; add levels with [`level`](Self::level).
    pub fn new() -> Self {
        HierarchySpec { levels: Vec::new() }
    }

    /// Appends a cache level (builder style). Levels are evaluated — and
    /// their groups ordered — in insertion order.
    #[must_use]
    pub fn level(
        mut self,
        label: impl Into<String>,
        circuit: CacheCircuit,
        scheme: Scheme,
        delay_weight: f64,
        cost: CostKind,
    ) -> Self {
        let technology = circuit.technology().clone();
        self.levels.push(LevelSpec {
            label: label.into(),
            circuit,
            technology,
            scheme,
            delay_weight,
            cost,
        });
        self
    }

    /// A one-level hierarchy (the Section 4 single-cache studies).
    pub fn single(
        circuit: CacheCircuit,
        scheme: Scheme,
        delay_weight: f64,
        cost: CostKind,
    ) -> Self {
        Self::new().level("cache", circuit, scheme, delay_weight, cost)
    }

    /// The levels, in evaluation order.
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// Total number of knob-sharing groups across all levels — the length
    /// of a front point's choice vector for this spec.
    pub fn group_count(&self) -> usize {
        self.levels.iter().map(|l| l.scheme.group_count()).sum()
    }

    /// Derives per-level AMAT delay weights from the miss-rate chain:
    /// level *i* is reached once per access to level 0 times the product
    /// of all upstream local miss rates, so
    /// `weights = [1, m₁, m₁·m₂, …]` for local miss rates
    /// `[m₁, m₂, …, m_N]` (one per level except the last, whose misses go
    /// to main memory and are priced by the study's memory model, not a
    /// cache level).
    ///
    /// The fold starts at exactly `1.0` and multiplies left-to-right, so
    /// for an N=2 hierarchy the weights are bit-for-bit `[1.0, m₁]` — the
    /// constants the two-level studies used to pass by hand.
    ///
    /// # Errors
    ///
    /// [`StudyError::MissRateRange`] when any rate is non-finite or
    /// outside `[0, 1]`.
    pub fn try_amat_weights(miss_rates: &[f64]) -> Result<Vec<f64>, StudyError> {
        for (index, &value) in miss_rates.iter().enumerate() {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(StudyError::MissRateRange { index, value });
            }
        }
        let mut weights = Vec::with_capacity(miss_rates.len() + 1);
        let mut w = 1.0;
        weights.push(w);
        for &m in miss_rates {
            w *= m;
            weights.push(w);
        }
        Ok(weights)
    }

    /// Infallible [`try_amat_weights`](Self::try_amat_weights).
    ///
    /// # Panics
    ///
    /// Panics when a miss rate is non-finite or outside `[0, 1]`.
    #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: documented panicking wrapper
    pub fn amat_weights(miss_rates: &[f64]) -> Vec<f64> {
        Self::try_amat_weights(miss_rates).expect("miss rates must be probabilities")
    }

    /// Non-panicking [`knobs_from_choice`](Self::knobs_from_choice):
    /// reconstructs each level's [`ComponentKnobs`] from a front point's
    /// choice vector, or reports the length mismatch as a typed error.
    ///
    /// # Errors
    ///
    /// [`StudyError::ChoiceLength`] when `choice` does not have exactly
    /// [`group_count`](Self::group_count) entries.
    pub fn try_knobs_from_choice(
        &self,
        choice: &[KnobPoint],
    ) -> Result<Vec<ComponentKnobs>, StudyError> {
        let expected = self.group_count();
        if choice.len() != expected {
            return Err(StudyError::ChoiceLength {
                expected,
                got: choice.len(),
            });
        }
        let mut offset = 0;
        Ok(self
            .levels
            .iter()
            .map(|l| {
                let n = l.scheme.group_count();
                let knobs = knobs_from_choice(l.scheme, &choice[offset..offset + n]);
                offset += n;
                knobs
            })
            .collect())
    }

    /// Reconstructs each level's [`ComponentKnobs`] from a front point's
    /// choice vector — the single canonical choice-slicing path (each
    /// level consumes [`Scheme::group_count`] entries in level order).
    ///
    /// # Panics
    ///
    /// Panics when `choice` does not have exactly
    /// [`group_count`](Self::group_count) entries. Library code should
    /// prefer [`try_knobs_from_choice`](Self::try_knobs_from_choice).
    #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: length asserted above
    pub fn knobs_from_choice(&self, choice: &[KnobPoint]) -> Vec<ComponentKnobs> {
        assert_eq!(
            choice.len(),
            self.group_count(),
            "choice length does not match the spec's group count"
        );
        self.try_knobs_from_choice(choice)
            .expect("length checked above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::TechnologyNode;
    use nm_geometry::{CacheConfig, ComponentId};

    fn circuit(bytes: u64) -> CacheCircuit {
        let tech = TechnologyNode::bptm65();
        CacheCircuit::new(CacheConfig::new(bytes, 64, 4).unwrap(), &tech)
    }

    #[test]
    fn group_count_sums_levels() {
        let spec = HierarchySpec::new()
            .level(
                "L1",
                circuit(16 * 1024),
                Scheme::Split,
                1.0,
                CostKind::LeakagePower,
            )
            .level(
                "L2",
                circuit(64 * 1024),
                Scheme::PerComponent,
                0.05,
                CostKind::LeakagePower,
            );
        assert_eq!(spec.group_count(), 6);
        assert_eq!(spec.levels().len(), 2);
        assert_eq!(spec.levels()[0].label(), "L1");
    }

    #[test]
    fn knobs_from_choice_slices_per_level() {
        let spec = HierarchySpec::new()
            .level(
                "L1",
                circuit(16 * 1024),
                Scheme::Split,
                1.0,
                CostKind::LeakagePower,
            )
            .level(
                "L2",
                circuit(64 * 1024),
                Scheme::Uniform,
                0.05,
                CostKind::LeakagePower,
            );
        let a = KnobPoint::fastest();
        let b = KnobPoint::lowest_leakage();
        let n = KnobPoint::nominal();
        let knobs = spec.knobs_from_choice(&[b, a, n]);
        assert_eq!(knobs.len(), 2);
        assert_eq!(knobs[0][ComponentId::MemoryArray], b);
        assert_eq!(knobs[0][ComponentId::Decoder], a);
        assert_eq!(knobs[1][ComponentId::MemoryArray], n);
        assert_eq!(knobs[1][ComponentId::DataBus], n);
    }

    #[test]
    #[should_panic(expected = "group count")]
    fn wrong_choice_length_panics() {
        let spec = HierarchySpec::single(
            circuit(16 * 1024),
            Scheme::Split,
            1.0,
            CostKind::LeakagePower,
        );
        let _ = spec.knobs_from_choice(&[KnobPoint::nominal()]);
    }

    #[test]
    fn try_knobs_from_choice_reports_lengths() {
        let spec = HierarchySpec::single(
            circuit(16 * 1024),
            Scheme::Split,
            1.0,
            CostKind::LeakagePower,
        );
        let err = spec
            .try_knobs_from_choice(&[KnobPoint::nominal()])
            .unwrap_err();
        assert_eq!(
            err,
            StudyError::ChoiceLength {
                expected: 2,
                got: 1
            }
        );
        let ok = spec
            .try_knobs_from_choice(&[KnobPoint::nominal(), KnobPoint::fastest()])
            .unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn amat_weights_chain_products() {
        let w = HierarchySpec::amat_weights(&[0.05, 0.25]);
        assert_eq!(w, vec![1.0, 0.05, 0.05 * 0.25]);
        assert_eq!(HierarchySpec::amat_weights(&[]), vec![1.0]);
    }

    #[test]
    fn amat_weights_first_weight_is_exactly_one_and_m1_exact() {
        // Bit-identity with the hand-passed constants the two-level
        // studies used: weights[0] is the literal 1.0 and weights[1] is
        // the literal m1, not a rounded product.
        let m1 = 0.123456789_f64;
        let w = HierarchySpec::amat_weights(&[m1]);
        assert_eq!(w[0].to_bits(), 1.0_f64.to_bits());
        assert_eq!(w[1].to_bits(), m1.to_bits());
    }

    #[test]
    fn amat_weights_reject_bad_rates() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = HierarchySpec::try_amat_weights(&[0.1, bad]).unwrap_err();
            match err {
                StudyError::MissRateRange { index, .. } => assert_eq!(index, 1),
                other => panic!("unexpected error {other}"),
            }
        }
    }

    #[test]
    fn level_technology_tracks_the_circuit() {
        use nm_device::TechProfile;
        use nm_geometry::CacheConfig;
        let tech = TechnologyNode::bptm65();
        let edram = CacheCircuit::with_technology(
            CacheConfig::new(4 * 1024 * 1024, 64, 16).unwrap(),
            &tech,
            TechProfile::edram(),
        );
        let spec = HierarchySpec::new()
            .level(
                "L1",
                circuit(16 * 1024),
                Scheme::Split,
                1.0,
                CostKind::LeakagePower,
            )
            .level("L3", edram, Scheme::Uniform, 0.01, CostKind::LeakagePower);
        assert_eq!(spec.levels()[0].technology().name, "sram");
        assert_eq!(spec.levels()[1].technology().name, "edram");
        assert!(spec.levels()[0].technology().is_identity());
    }
}
