//! Declarative description of what a study evaluates: the cache levels,
//! their knob-grouping schemes, and how each level's delay and cost enter
//! the system objective.

use crate::groups::{knobs_from_choice, CostKind, Scheme};
use nm_device::KnobPoint;
use nm_geometry::{CacheCircuit, ComponentKnobs};

/// One cache level of a hierarchy: a circuit, the assignment [`Scheme`]
/// grouping its knobs, the weight its delay carries in the system
/// objective (1 for an L1, the L1 miss rate for an L2 in an AMAT study)
/// and the [`CostKind`] its groups are priced under.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSpec {
    label: String,
    circuit: CacheCircuit,
    scheme: Scheme,
    delay_weight: f64,
    cost: CostKind,
}

impl LevelSpec {
    /// Human-readable level label ("L1", "D$", …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The level's circuit model.
    pub fn circuit(&self) -> &CacheCircuit {
        &self.circuit
    }

    /// The knob-grouping scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The level's delay weight in the system objective.
    pub fn delay_weight(&self) -> f64 {
        self.delay_weight
    }

    /// How the level's groups are priced.
    pub fn cost(&self) -> CostKind {
        self.cost
    }
}

/// An ordered set of [`LevelSpec`]s — the full description of one
/// evaluation problem. Two equal specs describe the same optimisation, so
/// the [`Evaluator`](crate::eval::Evaluator) memoizes fronts keyed on it.
///
/// Group order across the system is the concatenation of each level's
/// [`Scheme::layout`] in level order; a front point's choice vector uses
/// the same order, and [`knobs_from_choice`](Self::knobs_from_choice) is
/// the one canonical way to slice it back into per-level assignments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HierarchySpec {
    levels: Vec<LevelSpec>,
}

impl HierarchySpec {
    /// An empty hierarchy; add levels with [`level`](Self::level).
    pub fn new() -> Self {
        HierarchySpec { levels: Vec::new() }
    }

    /// Appends a cache level (builder style). Levels are evaluated — and
    /// their groups ordered — in insertion order.
    #[must_use]
    pub fn level(
        mut self,
        label: impl Into<String>,
        circuit: CacheCircuit,
        scheme: Scheme,
        delay_weight: f64,
        cost: CostKind,
    ) -> Self {
        self.levels.push(LevelSpec {
            label: label.into(),
            circuit,
            scheme,
            delay_weight,
            cost,
        });
        self
    }

    /// A one-level hierarchy (the Section 4 single-cache studies).
    pub fn single(
        circuit: CacheCircuit,
        scheme: Scheme,
        delay_weight: f64,
        cost: CostKind,
    ) -> Self {
        Self::new().level("cache", circuit, scheme, delay_weight, cost)
    }

    /// The levels, in evaluation order.
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// Total number of knob-sharing groups across all levels — the length
    /// of a front point's choice vector for this spec.
    pub fn group_count(&self) -> usize {
        self.levels.iter().map(|l| l.scheme.group_count()).sum()
    }

    /// Reconstructs each level's [`ComponentKnobs`] from a front point's
    /// choice vector — the single canonical choice-slicing path (each
    /// level consumes [`Scheme::group_count`] entries in level order).
    ///
    /// # Panics
    ///
    /// Panics when `choice` does not have exactly
    /// [`group_count`](Self::group_count) entries.
    pub fn knobs_from_choice(&self, choice: &[KnobPoint]) -> Vec<ComponentKnobs> {
        assert_eq!(
            choice.len(),
            self.group_count(),
            "choice length does not match the spec's group count"
        );
        let mut offset = 0;
        self.levels
            .iter()
            .map(|l| {
                let n = l.scheme.group_count();
                let knobs = knobs_from_choice(l.scheme, &choice[offset..offset + n]);
                offset += n;
                knobs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::TechnologyNode;
    use nm_geometry::{CacheConfig, ComponentId};

    fn circuit(bytes: u64) -> CacheCircuit {
        let tech = TechnologyNode::bptm65();
        CacheCircuit::new(CacheConfig::new(bytes, 64, 4).unwrap(), &tech)
    }

    #[test]
    fn group_count_sums_levels() {
        let spec = HierarchySpec::new()
            .level(
                "L1",
                circuit(16 * 1024),
                Scheme::Split,
                1.0,
                CostKind::LeakagePower,
            )
            .level(
                "L2",
                circuit(64 * 1024),
                Scheme::PerComponent,
                0.05,
                CostKind::LeakagePower,
            );
        assert_eq!(spec.group_count(), 6);
        assert_eq!(spec.levels().len(), 2);
        assert_eq!(spec.levels()[0].label(), "L1");
    }

    #[test]
    fn knobs_from_choice_slices_per_level() {
        let spec = HierarchySpec::new()
            .level(
                "L1",
                circuit(16 * 1024),
                Scheme::Split,
                1.0,
                CostKind::LeakagePower,
            )
            .level(
                "L2",
                circuit(64 * 1024),
                Scheme::Uniform,
                0.05,
                CostKind::LeakagePower,
            );
        let a = KnobPoint::fastest();
        let b = KnobPoint::lowest_leakage();
        let n = KnobPoint::nominal();
        let knobs = spec.knobs_from_choice(&[b, a, n]);
        assert_eq!(knobs.len(), 2);
        assert_eq!(knobs[0][ComponentId::MemoryArray], b);
        assert_eq!(knobs[0][ComponentId::Decoder], a);
        assert_eq!(knobs[1][ComponentId::MemoryArray], n);
        assert_eq!(knobs[1][ComponentId::DataBus], n);
    }

    #[test]
    #[should_panic(expected = "group count")]
    fn wrong_choice_length_panics() {
        let spec = HierarchySpec::single(
            circuit(16 * 1024),
            Scheme::Split,
            1.0,
            CostKind::LeakagePower,
        );
        let _ = spec.knobs_from_choice(&[KnobPoint::nominal()]);
    }
}
