//! The shared evaluation engine behind every study pipeline.
//!
//! Historically each study (Section 4 single-cache, Section 5 two-level,
//! the split-L1 extension, the Figure 2 memory system) wired its own
//! copy of the same pipeline: enumerate the knob grid per component
//! group, price candidates, merge to a system Pareto front, read the
//! optimum off it, and reconstruct knob assignments from the winning
//! choice vector. This module owns that pipeline once:
//!
//! * a [`HierarchySpec`] *describes* the problem — cache levels, their
//!   [`Scheme`](crate::groups::Scheme) grouping, delay weights and
//!   [`CostKind`](crate::groups::CostKind) pricing;
//! * any [`Constraint`](nm_opt::objective::Constraint) describes what
//!   "optimal" means (a [`Deadline`](nm_opt::objective::Deadline) for the
//!   iso-delay/iso-AMAT studies);
//! * the [`Evaluator`] runs the pipeline, **memoizing** component metric
//!   surfaces per `(circuit, component)` and Pareto fronts per spec, so
//!   each `(component, knob point)` is analysed exactly once no matter
//!   how many schemes, deadlines or tuple restrictions ride on it.
//!
//! Results are bit-identical to the direct pipeline: the circuit model is
//! pure, so cached metrics equal freshly computed ones, and the engine
//! routes pricing through the same
//! [`candidate_from_metrics`](crate::groups::candidate_from_metrics) path
//! with the same summation order as [`crate::groups::cache_groups`].

mod cache;
mod spec;

pub use spec::{HierarchySpec, LevelSpec};

use crate::groups::candidate_from_metrics;
use crate::StudyError;
use cache::MetricsCache;
use nm_device::{KnobGrid, KnobPoint, PrimsTable, TechnologyNode};
use nm_geometry::{
    CacheCircuit, CacheMetrics, ComponentId, ComponentKnobs, ComponentMetrics, ComponentSurface,
    COMPONENT_IDS,
};
use nm_opt::merge::{FrontPoint, MergeBase};
use nm_opt::objective::Constraint;
use nm_opt::{Candidate, Group};
use nm_sweep::ParallelSweep;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A constrained optimum produced by [`Evaluator::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Weighted system delay of the winning point (seconds).
    pub delay: f64,
    /// Total system cost of the winning point (watts or joules, per the
    /// spec's [`CostKind`](crate::groups::CostKind)s).
    pub cost: f64,
    /// The winning per-group knob choice, in spec group order.
    pub choice: Vec<KnobPoint>,
    /// The choice resolved to one [`ComponentKnobs`] per level, via the
    /// canonical [`HierarchySpec::knobs_from_choice`].
    pub knobs: Vec<ComponentKnobs>,
}

/// Memoization counters of one [`Evaluator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Component surfaces computed (grid-wide `analyze_component` passes).
    pub surfaces_built: usize,
    /// Surface requests served from the cache.
    pub surface_hits: usize,
    /// System Pareto fronts merged.
    pub fronts_built: usize,
    /// Front requests served from the cache.
    pub front_hits: usize,
    /// Front merges that reused at least one cached merge layer instead
    /// of folding every group from scratch.
    pub fronts_incremental: usize,
    /// Computed surfaces rejected by validation (never cached).
    pub surfaces_rejected: usize,
    /// Surfaces and fronts loaded from the persistent store instead of
    /// being recomputed.
    pub store_loaded: usize,
    /// Persisted payloads rejected (decode or validation failure) and
    /// recomputed.
    pub store_rejected: usize,
    /// Store read/write failures absorbed by the in-memory fallback.
    pub store_errors: usize,
}

/// One memoized front: the spec it answers, the merged front served to
/// queries, and the merge base later specs extend incrementally. Fronts
/// loaded from the persistent store carry no base — they skipped the
/// merge, so there are no layers to extend (later specs simply merge
/// from scratch, which is bit-identical).
type FrontEntry = (HierarchySpec, Arc<Vec<FrontPoint>>, Option<Arc<MergeBase>>);

/// The memoizing evaluation pipeline. One evaluator owns one knob grid;
/// every query against it shares the same metric-surface and front
/// caches.
pub struct Evaluator {
    grid: KnobGrid,
    points: Vec<KnobPoint>,
    cache: MetricsCache,
    prims: RwLock<Vec<(TechnologyNode, Arc<PrimsTable>)>>,
    fronts: RwLock<Vec<FrontEntry>>,
    restricted_base: Mutex<Option<Arc<MergeBase>>>,
    /// Optional write-through persistence tier under the memo caches.
    /// Content-addressed and strictly best-effort: a missing, corrupt
    /// or failing store degrades to recompute — never to an abort.
    store: Option<Arc<nm_store::Store>>,
    fronts_built: AtomicUsize,
    fronts_incremental: AtomicUsize,
    front_hits: AtomicUsize,
    surfaces_rejected: AtomicUsize,
    store_loaded: AtomicUsize,
    store_rejected: AtomicUsize,
    store_errors: AtomicUsize,
}

/// `true` when every value in a metric buffer is finite and
/// non-negative. Written as a branch-free accumulating scan so the
/// healthy case (all of them, outside fault injection) vectorizes over
/// the surface's contiguous buffers instead of branching per value.
fn buffer_ok(values: &[f64]) -> bool {
    let mut ok = true;
    for &v in values {
        ok &= v.is_finite() & (v >= 0.0);
    }
    ok
}

/// Checks every metric of a freshly computed surface before it may enter
/// the memo cache: delay, each leakage component, both dynamic energies
/// and area must be finite and non-negative. The paper's Eq.1/Eq.2
/// exponential fits can overflow to `inf`/NaN when driven outside their
/// characterized `Vth`/`Tox` region; a poisoned surface cached here would
/// corrupt every study that later shares it.
///
/// The healthy path is a flat scan over the surface's
/// structure-of-arrays buffers; only a failed scan falls back to the
/// point-major walk that names the first offending `(point, metric)` in
/// the same order the pre-SoA validator reported it.
fn validate_surface(
    circuit: &CacheCircuit,
    component: ComponentId,
    surface: &ComponentSurface,
) -> Result<(), StudyError> {
    let buffers: [&[f64]; 7] = [
        surface.delays(),
        surface.subthreshold_leakages(),
        surface.gate_leakages(),
        surface.junction_leakages(),
        surface.read_energies(),
        surface.write_energies(),
        surface.areas(),
    ];
    if buffers.iter().all(|b| buffer_ok(b)) {
        return Ok(());
    }
    for (p, m) in surface.iter() {
        let checks: [(&'static str, f64); 7] = [
            ("delay", m.delay.0),
            ("subthreshold leakage", m.leakage.subthreshold.0),
            ("gate leakage", m.leakage.gate.0),
            ("junction leakage", m.leakage.junction.0),
            ("read energy", m.read_energy.0),
            ("write energy", m.write_energy.0),
            ("area", m.area.0),
        ];
        for (metric, value) in checks {
            if !value.is_finite() || value < 0.0 {
                return Err(StudyError::InvalidSurface {
                    circuit: circuit.config().to_string(),
                    component,
                    vth: p.vth().0,
                    tox: p.tox().0,
                    metric,
                    value,
                });
            }
        }
    }
    unreachable!("buffer scan flagged a surface the point walk found healthy")
}

/// Logs a persistence-tier degradation to stderr when span logging is
/// on. Store failures are absorbed (counted + fallback), so this is the
/// only place they become visible interactively.
fn log_store_event(message: &str) {
    if nm_telemetry::log_level() != nm_telemetry::LogLevel::Off {
        eprintln!("nmcache: {message}");
    }
}

/// Swaps in a NaN-delay metric record when a [`Fault::Nan`]
/// (`nm_sweep::faultinject::Fault::Nan`) is armed for this
/// `eval-surfaces` job index — the injection point proving that
/// validation keeps poisoned surfaces out of the memo cache.
#[cfg(feature = "faultinject")]
fn poison_if_armed(surface: ComponentSurface, job_index: usize) -> ComponentSurface {
    if !nm_sweep::faultinject::take_nan(Some("eval-surfaces"), job_index) {
        return surface;
    }
    let points = surface.points().to_vec();
    let mut metrics = surface.metrics_vec();
    if let Some(m) = metrics.first_mut() {
        m.delay = nm_device::units::Seconds(f64::NAN);
    }
    ComponentSurface::from_parts(points, metrics)
}

impl Evaluator {
    /// Creates an evaluator over a knob grid with empty caches.
    pub fn new(grid: KnobGrid) -> Self {
        let points = grid.points().collect();
        Evaluator {
            grid,
            points,
            cache: MetricsCache::default(),
            prims: RwLock::new(Vec::new()),
            fronts: RwLock::new(Vec::new()),
            restricted_base: Mutex::new(None),
            store: None,
            fronts_built: AtomicUsize::new(0),
            fronts_incremental: AtomicUsize::new(0),
            front_hits: AtomicUsize::new(0),
            surfaces_rejected: AtomicUsize::new(0),
            store_loaded: AtomicUsize::new(0),
            store_rejected: AtomicUsize::new(0),
            store_errors: AtomicUsize::new(0),
        }
    }

    /// Creates an evaluator backed by a persistent store: surfaces and
    /// fronts are looked up by content key before being computed, and
    /// fresh computations are written through. The store is strictly a
    /// cache tier below the in-memory memo caches — every load is
    /// re-validated before install, rejected or unreadable records fall
    /// back to recompute, and write failures are counted, not raised.
    pub fn with_store(grid: KnobGrid, store: Arc<nm_store::Store>) -> Self {
        let mut e = Evaluator::new(grid);
        e.store = Some(store);
        e
    }

    /// The persistent store backing this evaluator, if any.
    pub fn store(&self) -> Option<&Arc<nm_store::Store>> {
        self.store.as_ref()
    }

    /// The knob grid every surface and front is enumerated over.
    pub fn grid(&self) -> &KnobGrid {
        &self.grid
    }

    /// Memoization counters so far.
    pub fn stats(&self) -> EvalStats {
        let (surfaces_built, surface_hits) = self.cache.stats();
        EvalStats {
            surfaces_built,
            surface_hits,
            fronts_built: self.fronts_built.load(Ordering::Relaxed),
            front_hits: self.front_hits.load(Ordering::Relaxed),
            fronts_incremental: self.fronts_incremental.load(Ordering::Relaxed),
            surfaces_rejected: self.surfaces_rejected.load(Ordering::Relaxed),
            store_loaded: self.store_loaded.load(Ordering::Relaxed),
            store_rejected: self.store_rejected.load(Ordering::Relaxed),
            store_errors: self.store_errors.load(Ordering::Relaxed),
        }
    }

    /// Tries to satisfy one missing surface job from the persistent
    /// store. A loaded surface passes the same validation gate as a
    /// computed one before it may enter the memo cache; any failure —
    /// read error, decode error, validation reject — degrades to
    /// recompute and is counted.
    fn surface_from_store(&self, circuit: &CacheCircuit, id: ComponentId) -> bool {
        let Some(store) = &self.store else {
            return false;
        };
        let key = crate::persist::surface_key(circuit, id, &self.points);
        let bytes = match store.get(key) {
            Ok(Some(bytes)) => bytes,
            Ok(None) => return false,
            Err(e) => {
                self.store_errors.fetch_add(1, Ordering::Relaxed);
                nm_telemetry::counter_inc(crate::names::EVAL_STORE_ERRORS);
                log_store_event(&format!("store read failed, recomputing: {e}"));
                return false;
            }
        };
        let surface = match crate::persist::decode_surface(&bytes) {
            Ok(surface) => surface,
            Err(e) => {
                self.store_rejected.fetch_add(1, Ordering::Relaxed);
                nm_telemetry::counter_inc(crate::names::EVAL_STORE_REJECTED);
                log_store_event(&format!("persisted surface rejected, recomputing: {e}"));
                return false;
            }
        };
        if surface.points() != self.points.as_slice()
            || validate_surface(circuit, id, &surface).is_err()
        {
            self.store_rejected.fetch_add(1, Ordering::Relaxed);
            nm_telemetry::counter_inc(crate::names::EVAL_STORE_REJECTED);
            return false;
        }
        self.cache.install_loaded(circuit, id, surface);
        self.store_loaded.fetch_add(1, Ordering::Relaxed);
        nm_telemetry::counter_inc(crate::names::EVAL_STORE_LOADED);
        true
    }

    /// Tries to satisfy a front query from the persistent store. A
    /// loaded front is sanity-checked against the spec (choice lengths,
    /// finite metrics) before it is installed; it carries no merge base,
    /// so later specs extending it merge from scratch (bit-identical).
    fn front_from_store(&self, spec: &HierarchySpec) -> Option<Arc<Vec<FrontPoint>>> {
        self.store.as_ref()?;
        let key = crate::persist::front_key(spec, &self.points);
        let bytes = match self.store.as_ref()?.get(key) {
            Ok(Some(bytes)) => bytes,
            Ok(None) => return None,
            Err(e) => {
                self.store_errors.fetch_add(1, Ordering::Relaxed);
                nm_telemetry::counter_inc(crate::names::EVAL_STORE_ERRORS);
                log_store_event(&format!("store read failed, recomputing: {e}"));
                return None;
            }
        };
        let front = match crate::persist::decode_front(&bytes) {
            Ok(front) => front,
            Err(e) => {
                self.store_rejected.fetch_add(1, Ordering::Relaxed);
                nm_telemetry::counter_inc(crate::names::EVAL_STORE_REJECTED);
                log_store_event(&format!("persisted front rejected, recomputing: {e}"));
                return None;
            }
        };
        let groups = spec.group_count();
        let healthy = front
            .iter()
            .all(|p| p.choice.len() == groups && p.delay.is_finite() && p.cost.is_finite());
        if !healthy {
            self.store_rejected.fetch_add(1, Ordering::Relaxed);
            nm_telemetry::counter_inc(crate::names::EVAL_STORE_REJECTED);
            log_store_event("persisted front rejected, recomputing: shape mismatch");
            return None;
        }
        let front = Arc::new(front);
        let mut fronts = self
            .fronts
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some((_, existing, _)) = fronts.iter().find(|(s, _, _)| s == spec) {
            return Some(Arc::clone(existing));
        }
        fronts.push((spec.clone(), Arc::clone(&front), None));
        self.store_loaded.fetch_add(1, Ordering::Relaxed);
        nm_telemetry::counter_inc(crate::names::EVAL_STORE_LOADED);
        Some(front)
    }

    /// Best-effort write-through of a payload already installed in the
    /// memo caches. Failures are counted and noted, never raised.
    fn store_put(&self, key: u128, payload: &[u8]) {
        let Some(store) = &self.store else { return };
        if let Err(e) = store.put(key, payload) {
            self.store_errors.fetch_add(1, Ordering::Relaxed);
            nm_telemetry::counter_inc(crate::names::EVAL_STORE_ERRORS);
            log_store_event(&format!("store write failed, continuing in memory: {e}"));
        }
    }

    /// Builds every not-yet-cached component surface a spec needs, fanning
    /// the builds out through one bounded [`ParallelSweep`].
    ///
    /// Calling this before spawning parallel per-query jobs (the Figure 2
    /// tuple sweep) pre-warms the cache so the jobs never start nested
    /// sweeps; it is also called internally by [`groups`](Self::groups),
    /// where an all-cached spec skips the sweep entirely.
    pub fn ensure_surfaces(&self, spec: &HierarchySpec) {
        if let Err(e) = self.try_ensure_surfaces(spec) {
            panic!("surface build failed: {e}");
        }
    }

    /// The hoisted-primitives table for `tech` over this evaluator's
    /// grid, built on first request and cached for the evaluator's
    /// lifetime. The table depends only on `(tech, points)` — both fixed
    /// per evaluator — so rebuilding it per `ensure_surfaces` call was
    /// pure cold-path overhead.
    fn prims_table(&self, tech: &TechnologyNode) -> Arc<PrimsTable> {
        if let Some(table) = self
            .prims
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .find(|(t, _)| t == tech)
            .map(|(_, table)| Arc::clone(table))
        {
            return table;
        }
        let table = Arc::new(PrimsTable::new(tech, &self.points));
        let mut cached = self
            .prims
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // A racing builder may have won; keep the installed one so every
        // caller shares a single allocation per node.
        if let Some(existing) = cached.iter().find(|(t, _)| t == tech) {
            return Arc::clone(&existing.1);
        }
        cached.push((tech.clone(), Arc::clone(&table)));
        table
    }

    /// Fallible [`ensure_surfaces`](Self::ensure_surfaces): builds every
    /// not-yet-cached component surface a spec needs with per-item panic
    /// containment and validates each one *before* it is installed, so a
    /// failed or poisoned computation never enters the memo cache.
    ///
    /// Every healthy surface is still installed even when some jobs fail
    /// (partial progress is kept); the first failure, in job order, is
    /// returned as [`StudyError::WorkerPanic`] (contained panic) or
    /// [`StudyError::InvalidSurface`] (NaN/Inf/negative metric, also
    /// counted in [`EvalStats::surfaces_rejected`]).
    ///
    /// # Errors
    ///
    /// The first failed or rejected surface build, in job order.
    pub fn try_ensure_surfaces(&self, spec: &HierarchySpec) -> Result<(), StudyError> {
        let _span = nm_telemetry::span(crate::names::EVAL_ENSURE_SURFACES);
        let mut jobs: Vec<(CacheCircuit, ComponentId)> = Vec::new();
        for level in spec.levels() {
            for id in COMPONENT_IDS {
                if self.cache.peek(level.circuit(), id).is_none()
                    && !jobs.iter().any(|(c, i)| *i == id && c == level.circuit())
                {
                    jobs.push((level.circuit().clone(), id));
                }
            }
        }
        // Persistence tier: satisfy what the store already holds before
        // spending compute. Loads are re-validated inside; any failure
        // leaves the job in place for the sweep below.
        if self.store.is_some() {
            jobs.retain(|(circuit, id)| !self.surface_from_store(circuit, *id));
        }
        if jobs.is_empty() {
            return Ok(());
        }
        // One hoisted-primitives table per distinct technology node,
        // resolved up front (and cached for the evaluator's lifetime) so
        // every component surface of the same node shares it. Jobs keep
        // their per-(circuit, component) granularity and submission
        // order — fault-injection indices and `WorkerPanic` indices stay
        // stable.
        let mut tables: Vec<(TechnologyNode, Arc<PrimsTable>)> = Vec::new();
        for (circuit, _) in &jobs {
            if !tables.iter().any(|(t, _)| t == circuit.tech()) {
                tables.push((circuit.tech().clone(), self.prims_table(circuit.tech())));
            }
        }
        #[allow(clippy::expect_used)]
        // fingerprinted in analyze.allow: table built in the loop above
        let table_for = |circuit: &CacheCircuit| -> &PrimsTable {
            tables
                .iter()
                .find(|(t, _)| t == circuit.tech())
                .map(|(_, prims)| prims.as_ref())
                .expect("every job's technology node has a precomputed table")
        };
        let run = ParallelSweep::new()
            .labeled("eval-surfaces")
            .try_map(&jobs, |(circuit, id)| {
                let prims = table_for(circuit);
                if nm_telemetry::enabled() {
                    let t0 = nm_telemetry::Stopwatch::start();
                    let surface = circuit.component_surface_with(*id, &self.points, prims);
                    t0.observe(crate::names::EVAL_SURFACE_BUILD_SECONDS);
                    surface
                } else {
                    circuit.component_surface_with(*id, &self.points, prims)
                }
            });

        let mut first_error: Option<StudyError> = None;
        for (job_index, ((circuit, id), outcome)) in jobs.iter().zip(run.results).enumerate() {
            match outcome {
                Ok(surface) => {
                    #[cfg(feature = "faultinject")]
                    let surface = poison_if_armed(surface, job_index);
                    #[cfg(not(feature = "faultinject"))]
                    let _ = job_index;
                    match validate_surface(circuit, *id, &surface) {
                        Ok(()) => {
                            nm_telemetry::counter_add(
                                crate::names::SURFACE_SOA_POINTS,
                                surface.len() as u64,
                            );
                            if self.store.is_some() {
                                self.store_put(
                                    crate::persist::surface_key(circuit, *id, &self.points),
                                    &crate::persist::encode_surface(&surface),
                                );
                            }
                            self.cache.install(circuit, *id, surface);
                        }
                        Err(e) => {
                            self.surfaces_rejected.fetch_add(1, Ordering::Relaxed);
                            nm_telemetry::counter_inc(crate::names::EVAL_SURFACE_REJECTED);
                            first_error.get_or_insert(e);
                        }
                    }
                }
                Err(fault) => {
                    first_error.get_or_insert(StudyError::WorkerPanic {
                        label: "eval-surfaces".to_owned(),
                        index: fault.index,
                        message: fault.message,
                    });
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The optimiser groups of a spec — bit-identical to concatenating
    /// [`cache_groups`](crate::groups::cache_groups) per level, but the
    /// metric surfaces behind the candidates are memoized.
    pub fn groups(&self, spec: &HierarchySpec) -> Vec<Group> {
        self.ensure_surfaces(spec);
        spec.levels()
            .iter()
            .flat_map(|level| self.level_groups(level))
            .collect()
    }

    /// Fallible [`groups`](Self::groups): propagates surface-build
    /// failures instead of panicking.
    ///
    /// # Errors
    ///
    /// Any error from [`try_ensure_surfaces`](Self::try_ensure_surfaces).
    pub fn try_groups(&self, spec: &HierarchySpec) -> Result<Vec<Group>, StudyError> {
        self.try_ensure_surfaces(spec)?;
        Ok(spec
            .levels()
            .iter()
            .flat_map(|level| self.level_groups(level))
            .collect())
    }

    fn level_groups(&self, level: &LevelSpec) -> Vec<Group> {
        let surfaces: [Arc<ComponentSurface>; 4] =
            COMPONENT_IDS.map(|id| self.cache.surface(level.circuit(), id, &self.points));
        // Materialize each surface's point-major metric column once per
        // level, so pricing reads the exact per-point records the pre-SoA
        // layout stored and `candidate_from_metrics` sums them in the
        // identical order.
        let columns: [Vec<ComponentMetrics>; 4] =
            COMPONENT_IDS.map(|id| surfaces[id.index()].metrics_vec());
        level
            .scheme()
            .layout()
            .iter()
            .map(|(ids, suffix)| {
                let candidates: Vec<Candidate> = self
                    .points
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        candidate_from_metrics(
                            ids.iter().map(|id| &columns[id.index()][i]),
                            p,
                            level.delay_weight(),
                            level.cost(),
                        )
                    })
                    .collect();
                // Non-SRAM levels carry the technology in the group name so
                // diagnostics distinguish, say, an eDRAM L3 from an SRAM
                // one of the same shape (identity profiles keep the
                // original names, and merge reuse compares candidates, not
                // names).
                let name = if level.technology().is_identity() {
                    format!("{}:{suffix}", level.circuit().config())
                } else {
                    format!(
                        "{}[{}]:{suffix}",
                        level.circuit().config(),
                        level.technology().name
                    )
                };
                Group::new(name, candidates)
            })
            .collect()
    }

    /// The system Pareto front of a spec, memoized per spec.
    pub fn front(&self, spec: &HierarchySpec) -> Arc<Vec<FrontPoint>> {
        self.try_front(spec)
            .unwrap_or_else(|e| panic!("front build failed: {e}"))
    }

    /// Fallible [`front`](Self::front): the memoized system Pareto front,
    /// propagating surface-build failures. A failed build memoizes
    /// nothing — neither surfaces nor front — so a later retry starts
    /// from a clean cache.
    ///
    /// # Errors
    ///
    /// Any error from [`try_ensure_surfaces`](Self::try_ensure_surfaces).
    pub fn try_front(&self, spec: &HierarchySpec) -> Result<Arc<Vec<FrontPoint>>, StudyError> {
        let _span = nm_telemetry::span(crate::names::EVAL_FRONT);
        if let Some(front) = self.cached_front(spec) {
            self.front_hits.fetch_add(1, Ordering::Relaxed);
            nm_telemetry::counter_inc(crate::names::EVAL_FRONT_HIT);
            return Ok(front);
        }
        if let Some(front) = self.front_from_store(spec) {
            return Ok(front);
        }
        let groups = self.try_groups(spec)?;
        // Offer every cached spec's merge base: a spec sharing a group
        // prefix (same circuits, weights and costs on its leading levels)
        // re-merges only the layers past the shared prefix.
        let bases: Vec<Arc<MergeBase>> = self
            .fronts
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .filter_map(|(_, _, b)| b.clone())
            .collect();
        let (base, reused) = MergeBase::try_new_with_bases(&groups, bases.iter().map(Arc::as_ref))?;
        if reused > 0 {
            self.fronts_incremental.fetch_add(1, Ordering::Relaxed);
            nm_telemetry::counter_add(crate::names::FRONT_MERGE_INCREMENTAL, reused as u64);
        }
        let front = Arc::new(base.front());
        let mut fronts = self
            .fronts
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Keep the first-stored front if another thread raced us there —
        // both are bit-identical, but callers may compare Arc pointers.
        if let Some((_, existing, _)) = fronts.iter().find(|(s, _, _)| s == spec) {
            return Ok(Arc::clone(existing));
        }
        if self.store.is_some() {
            self.store_put(
                crate::persist::front_key(spec, &self.points),
                &crate::persist::encode_front(&front),
            );
        }
        fronts.push((spec.clone(), Arc::clone(&front), Some(Arc::new(base))));
        self.fronts_built.fetch_add(1, Ordering::Relaxed);
        nm_telemetry::counter_inc(crate::names::EVAL_FRONT_BUILT);
        // Hierarchy shape of this run, for `--metrics` reports: depth per
        // freshly-built front plus the per-level technology mix.
        if nm_telemetry::enabled() {
            nm_telemetry::counter_add(crate::names::EVAL_LEVELS, spec.levels().len() as u64);
            for level in spec.levels() {
                nm_telemetry::counter_inc(&format!("device.tech.{}", level.technology().name));
            }
        }
        Ok(front)
    }

    fn cached_front(&self, spec: &HierarchySpec) -> Option<Arc<Vec<FrontPoint>>> {
        self.fronts
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .find(|(s, _, _)| s == spec)
            .map(|(_, f, _)| Arc::clone(f))
    }

    /// Reads a constrained optimum off the spec's (memoized) front, or
    /// `None` when the constraint is infeasible.
    pub fn solve<C: Constraint>(&self, spec: &HierarchySpec, constraint: &C) -> Option<Solution> {
        let front = self.front(spec);
        let point = constraint.select(&front)?;
        Some(self.solution(spec, point))
    }

    /// Fallible [`solve`](Self::solve): `Ok(None)` means the constraint
    /// is infeasible; `Err` means evaluation itself failed.
    ///
    /// # Errors
    ///
    /// Any error from [`try_ensure_surfaces`](Self::try_ensure_surfaces).
    pub fn try_solve<C: Constraint>(
        &self,
        spec: &HierarchySpec,
        constraint: &C,
    ) -> Result<Option<Solution>, StudyError> {
        let _span = nm_telemetry::span(crate::names::EVAL_SOLVE);
        let front = self.try_front(spec)?;
        constraint
            .select(&front)
            .map(|point| self.try_solution(spec, point))
            .transpose()
    }

    /// [`solve`](Self::solve) with every group restricted to knob values
    /// drawn from the given `Vth`/`Tox` value sets (the single-knob
    /// ablation and tuple-count experiments). Returns `None` when the
    /// restriction empties a group or the constraint is infeasible.
    ///
    /// Restricted fronts are not memoized — value-set restrictions are
    /// exponentially many — but the metric surfaces they re-price are.
    pub fn solve_restricted<C: Constraint>(
        &self,
        spec: &HierarchySpec,
        vths: &[f64],
        toxes: &[f64],
        constraint: &C,
    ) -> Option<Solution> {
        self.try_solve_restricted(spec, vths, toxes, constraint)
            .unwrap_or_else(|e| panic!("restricted solve failed: {e}"))
    }

    /// Fallible [`solve_restricted`](Self::solve_restricted): `Ok(None)`
    /// when the restriction empties a group or the constraint is
    /// infeasible, `Err` when evaluation itself failed.
    ///
    /// # Errors
    ///
    /// Any error from [`try_ensure_surfaces`](Self::try_ensure_surfaces).
    pub fn try_solve_restricted<C: Constraint>(
        &self,
        spec: &HierarchySpec,
        vths: &[f64],
        toxes: &[f64],
        constraint: &C,
    ) -> Result<Option<Solution>, StudyError> {
        let groups = self.try_groups(spec)?;
        let restricted: Option<Vec<Group>> =
            groups.iter().map(|g| g.restricted(vths, toxes)).collect();
        let Some(restricted) = restricted else {
            return Ok(None);
        };
        // Tuple-count sweeps grow value sets monotonically, so successive
        // restrictions often share leading groups verbatim; keep the last
        // restricted merge base around (plus every cached spec base) and
        // re-merge only past the shared prefix.
        let last = self
            .restricted_base
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        let mut bases: Vec<Arc<MergeBase>> = last.into_iter().collect();
        bases.extend(
            self.fronts
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .iter()
                .filter_map(|(_, _, b)| b.clone()),
        );
        let (base, reused) =
            MergeBase::try_new_with_bases(&restricted, bases.iter().map(Arc::as_ref))?;
        if reused > 0 {
            self.fronts_incremental.fetch_add(1, Ordering::Relaxed);
            nm_telemetry::counter_add(crate::names::FRONT_MERGE_INCREMENTAL, reused as u64);
        }
        let front = base.front();
        *self
            .restricted_base
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(Arc::new(base));
        constraint
            .select(&front)
            .map(|point| self.try_solution(spec, point))
            .transpose()
    }

    fn solution(&self, spec: &HierarchySpec, point: &FrontPoint) -> Solution {
        self.try_solution(spec, point)
            .unwrap_or_else(|e| panic!("front point does not fit the spec: {e}"))
    }

    fn try_solution(
        &self,
        spec: &HierarchySpec,
        point: &FrontPoint,
    ) -> Result<Solution, StudyError> {
        Ok(Solution {
            delay: point.delay,
            cost: point.cost,
            choice: point.choice.clone(),
            knobs: spec.try_knobs_from_choice(&point.choice)?,
        })
    }

    /// Analyses a whole cache under an assignment, reading per-component
    /// metrics from already-built surfaces where the knob pair is on the
    /// grid and falling back to direct analysis where it is not. Both
    /// paths are bit-identical — the circuit model is pure.
    pub fn analyze(&self, circuit: &CacheCircuit, knobs: &ComponentKnobs) -> CacheMetrics {
        let per_component = COMPONENT_IDS.map(|id| {
            let p = knobs.get(id);
            self.cache
                .peek(circuit, id)
                .and_then(|s| s.lookup(p))
                .unwrap_or_else(|| circuit.analyze_component(id, p))
        });
        CacheMetrics::from_components(per_component)
    }
}

impl Clone for Evaluator {
    /// A fresh evaluator over the same grid; memoized state is not
    /// carried over (it regrows on first use). The persistence tier is
    /// shared — it is content-addressed, so sharing is always safe.
    fn clone(&self) -> Self {
        let mut e = Evaluator::new(self.grid.clone());
        e.store = self.store.clone();
        e
    }
}

impl fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Evaluator")
            .field("grid", &self.grid)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::{cache_groups, CostKind, Scheme};
    use nm_device::TechnologyNode;
    use nm_geometry::CacheConfig;
    use nm_opt::constraint::best_under_deadline;
    use nm_opt::merge::system_front;
    use nm_opt::objective::Deadline;

    fn circuit(bytes: u64) -> CacheCircuit {
        let tech = TechnologyNode::bptm65();
        CacheCircuit::new(CacheConfig::new(bytes, 64, 4).unwrap(), &tech)
    }

    fn eval() -> Evaluator {
        Evaluator::new(KnobGrid::coarse())
    }

    #[test]
    fn groups_match_direct_cache_groups_exactly() {
        let e = eval();
        let c = circuit(16 * 1024);
        for scheme in Scheme::ALL {
            let spec = HierarchySpec::single(c.clone(), scheme, 1.0, CostKind::LeakagePower);
            let direct = cache_groups(&c, scheme, e.grid(), 1.0, CostKind::LeakagePower);
            assert_eq!(e.groups(&spec), direct, "{scheme}");
        }
        // All three schemes priced the same four surfaces: 4 builds.
        assert_eq!(e.stats().surfaces_built, 4);
    }

    #[test]
    fn front_is_memoized_per_spec() {
        let e = eval();
        let spec = HierarchySpec::single(
            circuit(16 * 1024),
            Scheme::Split,
            1.0,
            CostKind::LeakagePower,
        );
        let a = e.front(&spec);
        let b = e.front(&spec);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(e.stats().fronts_built, 1);
        assert_eq!(e.stats().front_hits, 1);
        // A different weight is a different spec.
        let other = HierarchySpec::single(
            circuit(16 * 1024),
            Scheme::Split,
            0.5,
            CostKind::LeakagePower,
        );
        let c = e.front(&other);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(e.stats().fronts_built, 2);
    }

    #[test]
    fn solve_matches_manual_pipeline() {
        let e = eval();
        let c = circuit(16 * 1024);
        let spec = HierarchySpec::single(c.clone(), Scheme::Split, 1.0, CostKind::LeakagePower);
        let front = system_front(&cache_groups(
            &c,
            Scheme::Split,
            e.grid(),
            1.0,
            CostKind::LeakagePower,
        ));
        let deadline = front.last().expect("non-empty front").delay;
        let manual = best_under_deadline(&front, deadline).expect("feasible");
        let sol = e.solve(&spec, &Deadline(deadline)).expect("feasible");
        assert_eq!(sol.delay, manual.delay);
        assert_eq!(sol.cost, manual.cost);
        assert_eq!(sol.choice, manual.choice);
        assert_eq!(sol.knobs.len(), 1);
        // Infeasible deadline: None.
        assert!(e.solve(&spec, &Deadline(front[0].delay * 0.5)).is_none());
    }

    #[test]
    fn ensure_surfaces_prewarms_and_is_idempotent() {
        let e = eval();
        let spec = HierarchySpec::new()
            .level(
                "L1",
                circuit(16 * 1024),
                Scheme::Split,
                1.0,
                CostKind::LeakagePower,
            )
            .level(
                "L2",
                circuit(64 * 1024),
                Scheme::Split,
                0.05,
                CostKind::LeakagePower,
            );
        e.ensure_surfaces(&spec);
        assert_eq!(e.stats().surfaces_built, 8);
        e.ensure_surfaces(&spec);
        assert_eq!(e.stats().surfaces_built, 8);
        // Repeated levels of the same circuit build only once.
        let dup = HierarchySpec::new()
            .level(
                "a",
                circuit(32 * 1024),
                Scheme::Uniform,
                1.0,
                CostKind::LeakagePower,
            )
            .level(
                "b",
                circuit(32 * 1024),
                Scheme::Split,
                1.0,
                CostKind::LeakagePower,
            );
        e.ensure_surfaces(&dup);
        assert_eq!(e.stats().surfaces_built, 12);
    }

    #[test]
    fn analyze_agrees_with_direct_analysis() {
        let e = eval();
        let c = circuit(16 * 1024);
        // Off-grid (cache cold): pure fallback.
        let knobs = ComponentKnobs::default();
        assert_eq!(e.analyze(&c, &knobs), c.analyze(&knobs));
        // On-grid after warming: served from surfaces, still identical.
        let spec = HierarchySpec::single(c.clone(), Scheme::Uniform, 1.0, CostKind::LeakagePower);
        e.ensure_surfaces(&spec);
        let p = e.grid().snap(KnobPoint::nominal());
        let on_grid = ComponentKnobs::uniform(p);
        assert_eq!(e.analyze(&c, &on_grid), c.analyze(&on_grid));
    }

    #[test]
    fn try_solve_matches_solve_on_the_healthy_path() {
        let e = eval();
        let spec = HierarchySpec::single(
            circuit(16 * 1024),
            Scheme::Split,
            1.0,
            CostKind::LeakagePower,
        );
        let front = e.try_front(&spec).expect("healthy build");
        let deadline = front.last().expect("non-empty front").delay;
        let via_try = e
            .try_solve(&spec, &Deadline(deadline))
            .expect("healthy build")
            .expect("feasible");
        let via_solve = e.solve(&spec, &Deadline(deadline)).expect("feasible");
        assert_eq!(via_try, via_solve);
        // Infeasible is Ok(None), not Err.
        let infeasible = e.try_solve(&spec, &Deadline(front[0].delay * 0.5));
        assert_eq!(infeasible, Ok(None));
        assert_eq!(e.stats().surfaces_rejected, 0);
    }

    #[test]
    fn healthy_surfaces_pass_validation() {
        let c = circuit(16 * 1024);
        let points: Vec<KnobPoint> = KnobGrid::coarse().points().collect();
        for id in COMPONENT_IDS {
            let s = c.component_surface(id, &points);
            assert_eq!(validate_surface(&c, id, &s), Ok(()), "{id}");
        }
    }

    #[test]
    fn validation_rejects_nan_with_the_offending_coordinate() {
        let c = circuit(16 * 1024);
        let points: Vec<KnobPoint> = KnobGrid::coarse().points().collect();
        let healthy = c.component_surface(ComponentId::Decoder, &points);
        let mut metrics = healthy.metrics_vec();
        metrics[2].delay = nm_device::units::Seconds(f64::NAN);
        let poisoned = ComponentSurface::from_parts(healthy.points().to_vec(), metrics);
        let err = validate_surface(&c, ComponentId::Decoder, &poisoned)
            .expect_err("NaN delay must be rejected");
        match err {
            StudyError::InvalidSurface {
                component,
                vth,
                tox,
                metric,
                value,
                ..
            } => {
                assert_eq!(component, ComponentId::Decoder);
                assert_eq!(metric, "delay");
                assert!(value.is_nan());
                assert_eq!(vth, points[2].vth().0);
                assert_eq!(tox, points[2].tox().0);
            }
            other => panic!("wrong error class: {other:?}"),
        }
    }

    #[test]
    fn validation_rejects_negative_leakage_and_infinite_energy() {
        let c = circuit(16 * 1024);
        let points: Vec<KnobPoint> = KnobGrid::coarse().points().collect();
        let healthy = c.component_surface(ComponentId::DataBus, &points);

        let mut negative = healthy.metrics_vec();
        negative[0].leakage.gate = nm_device::units::Watts(-1e-6);
        let s = ComponentSurface::from_parts(healthy.points().to_vec(), negative);
        let err = validate_surface(&c, ComponentId::DataBus, &s).expect_err("negative leakage");
        assert!(matches!(
            err,
            StudyError::InvalidSurface {
                metric: "gate leakage",
                ..
            }
        ));

        let mut infinite = healthy.metrics_vec();
        infinite[1].read_energy = nm_device::units::Joules(f64::INFINITY);
        let s = ComponentSurface::from_parts(healthy.points().to_vec(), infinite);
        let err = validate_surface(&c, ComponentId::DataBus, &s).expect_err("infinite energy");
        assert!(matches!(
            err,
            StudyError::InvalidSurface {
                metric: "read energy",
                ..
            }
        ));
    }

    #[test]
    fn zero_level_spec_is_a_typed_error_not_a_panic() {
        let e = eval();
        let empty = HierarchySpec::new();
        assert_eq!(e.try_front(&empty).unwrap_err(), StudyError::EmptySystem);
        let err = e
            .try_solve(&empty, &Deadline(1.0))
            .expect_err("no groups to merge");
        assert_eq!(err, StudyError::EmptySystem);
        let err = e
            .try_solve_restricted(&empty, &[0.3], &[12.0], &Deadline(1.0))
            .expect_err("no groups to merge");
        assert_eq!(err, StudyError::EmptySystem);
        // Nothing was memoized for the failed spec.
        assert_eq!(e.stats().fronts_built, 0);
    }

    #[test]
    fn shared_prefix_specs_remerge_incrementally() {
        let e = eval();
        let l1 = circuit(16 * 1024);
        let full = HierarchySpec::new()
            .level("L1", l1.clone(), Scheme::Split, 1.0, CostKind::LeakagePower)
            .level(
                "L2",
                circuit(64 * 1024),
                Scheme::Split,
                0.05,
                CostKind::LeakagePower,
            );
        let _ = e.front(&full);
        assert_eq!(e.stats().fronts_incremental, 0);
        // Same L1 level, different L2: the L1 merge layers are reused and
        // the front still matches a from-scratch merge.
        let changed = HierarchySpec::new()
            .level("L1", l1, Scheme::Split, 1.0, CostKind::LeakagePower)
            .level(
                "L2",
                circuit(128 * 1024),
                Scheme::Split,
                0.05,
                CostKind::LeakagePower,
            );
        let incremental = e.front(&changed);
        assert_eq!(e.stats().fronts_incremental, 1);
        assert_eq!(*incremental, system_front(&e.groups(&changed)));
    }

    #[test]
    fn restricted_solves_reuse_the_last_restricted_base() {
        let e = eval();
        let spec = HierarchySpec::single(
            circuit(16 * 1024),
            Scheme::Split,
            1.0,
            CostKind::LeakagePower,
        );
        let groups = e.groups(&spec);
        let vths: Vec<f64> = groups[0]
            .candidates()
            .iter()
            .map(|c| c.knobs.vth().0)
            .collect();
        let toxes: Vec<f64> = groups[0]
            .candidates()
            .iter()
            .map(|c| c.knobs.tox().0)
            .collect();
        let full_front = e.front(&spec);
        let deadline = full_front.last().expect("non-empty").delay;
        // The unrestricted value sets reproduce the exact solve.
        let a = e
            .solve_restricted(&spec, &vths, &toxes, &Deadline(deadline))
            .expect("feasible");
        let b = e
            .solve_restricted(&spec, &vths, &toxes, &Deadline(deadline))
            .expect("feasible");
        assert_eq!(a, b);
        let direct = e.solve(&spec, &Deadline(deadline)).expect("feasible");
        assert_eq!(a, direct);
        // The second identical restriction reused every layer of the first.
        assert!(e.stats().fronts_incremental >= 1);
    }

    #[test]
    fn clone_starts_cold() {
        let e = eval();
        let spec = HierarchySpec::single(
            circuit(16 * 1024),
            Scheme::Uniform,
            1.0,
            CostKind::LeakagePower,
        );
        let _ = e.front(&spec);
        let fresh = e.clone();
        assert_eq!(fresh.stats(), EvalStats::default());
        assert_eq!(fresh.grid().len(), e.grid().len());
    }
}
