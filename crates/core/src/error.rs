use nm_archsim::SimError;
use nm_device::DeviceError;
use nm_geometry::{ComponentId, GeometryError};
use nm_opt::merge::EmptySystemError;
use std::error::Error;
use std::fmt;

/// Errors raised while configuring or running a study.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StudyError {
    /// A device-model error (bad knob value, degenerate grid, failed fit).
    Device(DeviceError),
    /// A cache-geometry error (impossible organisation).
    Geometry(GeometryError),
    /// A cache-simulator error (impossible cache parameters).
    Simulator(SimError),
    /// A study referenced an (L1, L2) size pair missing from the miss-rate
    /// table.
    MissingMissRates {
        /// L1 size in bytes.
        l1_bytes: u64,
        /// L2 size in bytes.
        l2_bytes: u64,
    },
    /// A computed metric surface contained a non-finite or negative value
    /// and was rejected before it could enter the evaluator's memo cache.
    InvalidSurface {
        /// Display form of the offending cache circuit.
        circuit: String,
        /// Component whose surface failed validation.
        component: ComponentId,
        /// Threshold voltage of the offending knob point (volts).
        vth: f64,
        /// Oxide thickness of the offending knob point (angstroms).
        tox: f64,
        /// Name of the metric that failed validation.
        metric: &'static str,
        /// The offending value (NaN, infinite, or negative).
        value: f64,
    },
    /// A choice vector's length did not match the hierarchy spec's group
    /// count, so it cannot be sliced back into per-level assignments.
    ChoiceLength {
        /// The spec's group count.
        expected: usize,
        /// The offered choice vector's length.
        got: usize,
    },
    /// A per-level miss rate fed to the AMAT weight chain was not a
    /// probability (non-finite or outside `[0, 1]`).
    MissRateRange {
        /// Zero-based index of the offending level's miss rate.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A hierarchy spec produced no optimiser groups (zero cache levels),
    /// so there is no system front to merge.
    EmptySystem,
    /// A sweep work item panicked and was contained by the executor.
    WorkerPanic {
        /// Label of the sweep whose item failed.
        label: String,
        /// Submission-order index of the failed item.
        index: usize,
        /// Captured panic message of the final attempt.
        message: String,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Device(e) => write!(f, "device model: {e}"),
            StudyError::Geometry(e) => write!(f, "cache geometry: {e}"),
            StudyError::Simulator(e) => write!(f, "cache simulator: {e}"),
            StudyError::MissingMissRates { l1_bytes, l2_bytes } => write!(
                f,
                "miss-rate table has no entry for L1 {l1_bytes} B / L2 {l2_bytes} B"
            ),
            StudyError::InvalidSurface {
                circuit,
                component,
                vth,
                tox,
                metric,
                value,
            } => write!(
                f,
                "invalid metric surface for {circuit} {component} at \
                 Vth={vth:.3} V, Tox={tox:.1} A: {metric} = {value} \
                 (rejected before caching)"
            ),
            StudyError::ChoiceLength { expected, got } => write!(
                f,
                "choice vector has {got} entries but the spec's group count is {expected}"
            ),
            StudyError::MissRateRange { index, value } => write!(
                f,
                "miss rate for level {index} is {value}: must be finite and in [0, 1]"
            ),
            StudyError::EmptySystem => {
                write!(f, "hierarchy spec has no cache levels: nothing to optimise")
            }
            StudyError::WorkerPanic {
                label,
                index,
                message,
            } => write!(
                f,
                "sweep '{label}' item {index} panicked (contained): {message}"
            ),
        }
    }
}

impl Error for StudyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StudyError::Device(e) => Some(e),
            StudyError::Geometry(e) => Some(e),
            StudyError::Simulator(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for StudyError {
    fn from(e: DeviceError) -> Self {
        StudyError::Device(e)
    }
}

impl From<GeometryError> for StudyError {
    fn from(e: GeometryError) -> Self {
        StudyError::Geometry(e)
    }
}

impl From<SimError> for StudyError {
    fn from(e: SimError) -> Self {
        StudyError::Simulator(e)
    }
}

impl From<EmptySystemError> for StudyError {
    fn from(_: EmptySystemError) -> Self {
        StudyError::EmptySystem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: StudyError = DeviceError::SingularSystem.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("device model"));
    }

    #[test]
    fn missing_missrates_message() {
        let e = StudyError::MissingMissRates {
            l1_bytes: 4096,
            l2_bytes: 1 << 20,
        };
        assert!(e.to_string().contains("4096"));
        assert!(e.source().is_none());
    }

    #[test]
    fn invalid_surface_names_the_coordinate() {
        let e = StudyError::InvalidSurface {
            circuit: "64 KB 2-way".into(),
            component: ComponentId::Decoder,
            vth: 0.2,
            tox: 10.0,
            metric: "delay",
            value: f64::NAN,
        };
        let text = e.to_string();
        assert!(text.contains("decoder"), "{text}");
        assert!(text.contains("delay"), "{text}");
        assert!(text.contains("NaN"), "{text}");
        assert!(e.source().is_none());
    }

    #[test]
    fn worker_panic_carries_the_message() {
        let e = StudyError::WorkerPanic {
            label: "eval-surfaces".into(),
            index: 3,
            message: "boom".into(),
        };
        let text = e.to_string();
        assert!(text.contains("eval-surfaces") && text.contains("item 3"));
        assert!(text.contains("boom"));
    }

    #[test]
    fn empty_system_maps_from_the_merge_error() {
        let e: StudyError = EmptySystemError.into();
        assert_eq!(e, StudyError::EmptySystem);
        assert!(e.to_string().contains("no cache levels"));
        assert!(e.source().is_none());
    }

    #[test]
    fn choice_length_names_both_counts() {
        let e = StudyError::ChoiceLength {
            expected: 6,
            got: 2,
        };
        let text = e.to_string();
        assert!(text.contains('6') && text.contains('2'), "{text}");
        assert!(e.source().is_none());
    }

    #[test]
    fn miss_rate_range_names_the_level() {
        let e = StudyError::MissRateRange {
            index: 1,
            value: 1.5,
        };
        let text = e.to_string();
        assert!(text.contains("level 1") && text.contains("1.5"), "{text}");
        assert!(e.source().is_none());
    }

    #[test]
    fn wraps_sim_errors() {
        let e: StudyError = SimError::NotPowerOfTwo {
            which: "ways",
            value: 3,
        }
        .into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("cache simulator"));
    }
}
