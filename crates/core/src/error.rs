use nm_device::DeviceError;
use nm_geometry::GeometryError;
use std::error::Error;
use std::fmt;

/// Errors raised while configuring or running a study.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StudyError {
    /// A device-model error (bad knob value, degenerate grid, failed fit).
    Device(DeviceError),
    /// A cache-geometry error (impossible organisation).
    Geometry(GeometryError),
    /// A study referenced an (L1, L2) size pair missing from the miss-rate
    /// table.
    MissingMissRates {
        /// L1 size in bytes.
        l1_bytes: u64,
        /// L2 size in bytes.
        l2_bytes: u64,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Device(e) => write!(f, "device model: {e}"),
            StudyError::Geometry(e) => write!(f, "cache geometry: {e}"),
            StudyError::MissingMissRates { l1_bytes, l2_bytes } => write!(
                f,
                "miss-rate table has no entry for L1 {l1_bytes} B / L2 {l2_bytes} B"
            ),
        }
    }
}

impl Error for StudyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StudyError::Device(e) => Some(e),
            StudyError::Geometry(e) => Some(e),
            StudyError::MissingMissRates { .. } => None,
        }
    }
}

impl From<DeviceError> for StudyError {
    fn from(e: DeviceError) -> Self {
        StudyError::Device(e)
    }
}

impl From<GeometryError> for StudyError {
    fn from(e: GeometryError) -> Self {
        StudyError::Geometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: StudyError = DeviceError::SingularSystem.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("device model"));
    }

    #[test]
    fn missing_missrates_message() {
        let e = StudyError::MissingMissRates {
            l1_bytes: 4096,
            l2_bytes: 1 << 20,
        };
        assert!(e.to_string().contains("4096"));
        assert!(e.source().is_none());
    }
}
