//! Extension study: process knobs versus cache decay (gated-Vdd).
//!
//! The leakage work the paper cites (\[2\], \[5\], \[6\]) attacks the problem
//! architecturally — power-gate idle lines — while the paper attacks it
//! with process knobs. This study puts both on one axis for a single
//! cache at an iso-delay constraint:
//!
//! 1. **performance process** — every component at the fastest corner
//!    (the do-nothing baseline),
//! 2. **decay only** — fastest corner plus the best decay interval
//!    (prior art),
//! 3. **knobs only** — the paper's Scheme II optimum,
//! 4. **combined** — Scheme II optimum plus decay.
//!
//! Decay gates the cell array only (periphery cannot lose state), scales
//! the array leakage by the simulated alive fraction, and pays for its
//! induced misses with refill energy.

use crate::groups::Scheme;
use crate::report::{cell, Table};
use crate::single::SingleCacheStudy;
use nm_archsim::cache::CacheParams;
use nm_archsim::decay::DecaySim;
use nm_archsim::workload::SuiteKind;
use nm_device::units::{Joules, Seconds, Watts};
use nm_device::KnobPoint;
use nm_geometry::{ComponentId, ComponentKnobs, COMPONENT_IDS};
use serde::{Deserialize, Serialize};

/// One technique's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechniqueRow {
    /// Technique label.
    pub name: String,
    /// Static leakage after gating (array scaled by the alive fraction).
    pub leakage: Watts,
    /// Decay-induced miss rate (0 without decay).
    pub decay_miss_rate: f64,
    /// Average power spent refilling decayed lines.
    pub miss_power: Watts,
    /// Leakage plus refill power — the comparison metric.
    pub total_power: Watts,
}

/// Simulated decay behaviour of one interval on one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayOutcome {
    /// Decay interval in references.
    pub interval: u64,
    /// Time-averaged powered-on fraction of the array.
    pub alive_fraction: f64,
    /// Decay-induced misses per reference.
    pub decay_miss_rate: f64,
}

/// The knobs-vs-decay study.
#[derive(Debug, Clone)]
pub struct DecayStudy {
    study: SingleCacheStudy,
    suite: SuiteKind,
    /// References simulated per decay interval.
    pub sim_length: u64,
    /// Mean time between references to this cache.
    pub access_period: Seconds,
    /// Energy to refill one decayed line from the next level.
    pub refill_energy: Joules,
    /// Candidate decay intervals (references).
    pub intervals: Vec<u64>,
}

impl DecayStudy {
    /// Creates the study with literature-typical defaults: one reference
    /// every 2 ns, 5 pJ per refill, intervals from 256 to 64 Ki
    /// references.
    pub fn new(study: SingleCacheStudy, suite: SuiteKind, sim_length: u64) -> Self {
        DecayStudy {
            study,
            suite,
            sim_length,
            access_period: Seconds::from_nanos(2.0),
            refill_energy: Joules::from_picos(5.0),
            intervals: vec![256, 1024, 4096, 16 * 1024, 64 * 1024],
        }
    }

    /// The underlying single-cache study.
    pub fn study(&self) -> &SingleCacheStudy {
        &self.study
    }

    /// Simulates one decay interval on the study's cache geometry.
    #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: geometry configs are legal
    pub fn simulate_interval(&self, interval: u64) -> DecayOutcome {
        let config = self.study.circuit().config();
        let params = CacheParams::new(
            config.size_bytes(),
            config.block_bytes(),
            config.associativity(),
        )
        .expect("geometry configs are legal simulator configs");
        let mut sim = DecaySim::new(params, interval);
        let mut workload = self.suite.build(2005);
        for _ in 0..self.sim_length {
            sim.access(workload.next_access());
        }
        let s = sim.stats();
        DecayOutcome {
            interval,
            alive_fraction: s.alive_fraction(),
            decay_miss_rate: s.decay_miss_rate(),
        }
    }

    /// Picks the interval minimising `alive·array_leakage + refill power`
    /// for a given array leakage, from precomputed interval outcomes.
    #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: interval list non-empty
    fn best_outcome(
        outcomes: &[DecayOutcome],
        array_leakage: Watts,
        refill: impl Fn(f64) -> Watts,
    ) -> DecayOutcome {
        *outcomes
            .iter()
            .min_by(|a, b| {
                let cost = |o: &DecayOutcome| {
                    array_leakage.0 * o.alive_fraction + refill(o.decay_miss_rate).0
                };
                cost(a).total_cmp(&cost(b))
            })
            .expect("interval list is non-empty")
    }

    fn refill_power(&self, decay_miss_rate: f64) -> Watts {
        Watts(decay_miss_rate * self.refill_energy.0 / self.access_period.0)
    }

    fn row(
        &self,
        name: &str,
        knobs: &ComponentKnobs,
        decay: Option<&DecayOutcome>,
    ) -> TechniqueRow {
        let circuit = self.study.circuit();
        let metrics = circuit.analyze(knobs);
        let array = metrics.component(ComponentId::MemoryArray).leakage.total();
        let periphery: Watts = COMPONENT_IDS
            .iter()
            .filter(|id| id.is_peripheral())
            .map(|&id| metrics.component(id).leakage.total())
            .sum();
        let (alive, dmr) = decay.map_or((1.0, 0.0), |o| (o.alive_fraction, o.decay_miss_rate));
        let leakage = array * alive + periphery;
        let miss_power = self.refill_power(dmr);
        TechniqueRow {
            name: name.to_owned(),
            leakage,
            decay_miss_rate: dmr,
            miss_power,
            total_power: leakage + miss_power,
        }
    }

    /// Evaluates all four techniques at one delay constraint. Returns
    /// `None` when the constraint is infeasible for the knob optimiser.
    pub fn evaluate(&self, deadline: Seconds) -> Option<Vec<TechniqueRow>> {
        let fastest = ComponentKnobs::uniform(KnobPoint::fastest());
        let optimum = self.study.optimize(Scheme::Split, deadline)?;

        // Decay behaviour is knob-independent (intervals are in
        // references), so each interval is simulated once; the *best*
        // interval depends on the array leakage it is gating.
        let outcomes: Vec<DecayOutcome> = self
            .intervals
            .iter()
            .map(|&i| self.simulate_interval(i))
            .collect();
        let fast_metrics = self.study.circuit().analyze(&fastest);
        let fast_array = fast_metrics
            .component(ComponentId::MemoryArray)
            .leakage
            .total();
        let opt_array = self
            .study
            .circuit()
            .analyze(&optimum.knobs)
            .component(ComponentId::MemoryArray)
            .leakage
            .total();
        let refill = |dmr: f64| self.refill_power(dmr);
        let decay_for_fast = Self::best_outcome(&outcomes, fast_array, refill);
        let decay_for_opt = Self::best_outcome(&outcomes, opt_array, refill);

        Some(vec![
            self.row("performance process", &fastest, None),
            self.row("decay only", &fastest, Some(&decay_for_fast)),
            self.row("knobs only (Scheme II)", &optimum.knobs, None),
            self.row("knobs + decay", &optimum.knobs, Some(&decay_for_opt)),
        ])
    }

    /// Renders the comparison as a table (powers in mW).
    pub fn to_table(&self, deadline: Seconds) -> Table {
        let mut t = Table::new(
            format!(
                "Process knobs vs cache decay, {} at ≤ {:.0} ps ({} workload)",
                self.study.circuit().config(),
                deadline.picos(),
                self.suite.name()
            ),
            &[
                "technique",
                "leakage (mW)",
                "decay miss rate",
                "refill power (mW)",
                "total (mW)",
            ],
        );
        if let Some(rows) = self.evaluate(deadline) {
            for r in rows {
                t.push_row(vec![
                    r.name,
                    cell(r.leakage.milli(), 3),
                    cell(r.decay_miss_rate, 5),
                    cell(r.miss_power.milli(), 3),
                    cell(r.total_power.milli(), 3),
                ]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::{KnobGrid, TechnologyNode};
    use nm_geometry::CacheConfig;
    use std::sync::OnceLock;

    fn study() -> &'static DecayStudy {
        static STUDY: OnceLock<DecayStudy> = OnceLock::new();
        STUDY.get_or_init(|| {
            let tech = TechnologyNode::bptm65();
            let single = SingleCacheStudy::new(
                CacheConfig::new(16 * 1024, 64, 4).unwrap(),
                &tech,
                KnobGrid::coarse(),
            );
            DecayStudy::new(single, SuiteKind::Spec2000, 60_000)
        })
    }

    fn rows() -> Vec<TechniqueRow> {
        let s = study();
        let deadline = s.study().delay_sweep(5)[2];
        s.evaluate(deadline).expect("mid deadline feasible")
    }

    #[test]
    fn four_techniques_reported() {
        let r = rows();
        assert_eq!(r.len(), 4);
        assert!(r.iter().all(|t| t.total_power.0 > 0.0));
    }

    #[test]
    fn decay_beats_doing_nothing() {
        let r = rows();
        assert!(
            r[1].total_power.0 < r[0].total_power.0,
            "decay {} ≥ baseline {}",
            r[1].total_power.milli(),
            r[0].total_power.milli()
        );
    }

    #[test]
    fn knobs_beat_decay_at_iso_delay() {
        // The paper's central position: at 65 nm with total leakage in
        // play, process knobs buy far more than line gating.
        let r = rows();
        assert!(
            r[2].total_power.0 < r[1].total_power.0,
            "knobs {} ≥ decay {}",
            r[2].total_power.milli(),
            r[1].total_power.milli()
        );
    }

    #[test]
    fn combined_never_worse_than_knobs_alone() {
        let r = rows();
        assert!(r[3].total_power.0 <= r[2].total_power.0 * 1.001);
    }

    #[test]
    fn decay_rows_report_their_miss_rate() {
        let r = rows();
        assert_eq!(r[0].decay_miss_rate, 0.0);
        assert!(r[1].decay_miss_rate >= 0.0);
        assert_eq!(r[2].decay_miss_rate, 0.0);
    }

    #[test]
    fn table_renders_four_rows() {
        let s = study();
        let deadline = s.study().delay_sweep(5)[2];
        assert_eq!(s.to_table(deadline).len(), 4);
    }

    #[test]
    fn interval_simulation_is_sane() {
        let s = study();
        let o = s.simulate_interval(1024);
        assert!((0.0..=1.0).contains(&o.alive_fraction));
        assert!((0.0..=1.0).contains(&o.decay_miss_rate));
        assert_eq!(o.interval, 1024);
    }
}
