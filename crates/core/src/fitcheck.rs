//! E0 — validating the paper's Eq. 1/Eq. 2 closed forms against the
//! circuit model.
//!
//! Section 3 asserts that each cache component's total leakage is
//! `A0 + A1·e^(a1·Vth) + A2·e^(a2·Tox)` and its delay is
//! `k0 + k1·e^(k3·Vth) + k2·Tox`. This module samples every component of
//! a cache over the knob grid, fits both forms, and reports the fit
//! quality — the methodological check that our analytic substrate really
//! has the paper's structure.

use crate::report::{cell, Table};
use crate::StudyError;
use nm_device::fit::{DelayFit, LeakageFit, Sample};
use nm_device::KnobGrid;
use nm_geometry::{CacheCircuit, ComponentId, COMPONENT_IDS};
use serde::{Deserialize, Serialize};

/// Fitted surfaces for one cache component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentFit {
    /// Which component.
    pub component: ComponentId,
    /// Eq. 1 leakage fit.
    pub leakage: LeakageFit,
    /// Eq. 2 delay fit.
    pub delay: DelayFit,
}

/// Fits Eq. 1 and Eq. 2 to every component of a cache over a grid.
///
/// # Errors
///
/// Propagates [`nm_device::DeviceError`] when a fit fails (degenerate
/// grid).
pub fn component_fits(
    circuit: &CacheCircuit,
    grid: &KnobGrid,
) -> Result<Vec<ComponentFit>, StudyError> {
    COMPONENT_IDS
        .iter()
        .map(|&component| {
            let mut leak_samples = Vec::with_capacity(grid.len());
            let mut delay_samples = Vec::with_capacity(grid.len());
            for p in grid.points() {
                let m = circuit.analyze_component(component, p);
                leak_samples.push(Sample {
                    knobs: p,
                    value: m.leakage.total().0,
                });
                delay_samples.push(Sample {
                    knobs: p,
                    value: m.delay.0,
                });
            }
            let leakage = LeakageFit::fit(&leak_samples)?;
            let delay = DelayFit::fit(&delay_samples)?;
            // Range guard: a fitted surface that is non-finite anywhere
            // on its own training grid is garbage — reject it as a typed
            // error instead of letting NaN reach the report.
            for p in grid.points() {
                leakage.try_evaluate(p)?;
                delay.try_evaluate(p)?;
            }
            Ok(ComponentFit {
                component,
                leakage,
                delay,
            })
        })
        .collect()
}

/// **E0** — renders the per-component fit quality as a table.
///
/// # Errors
///
/// Propagates fit failures from [`component_fits`].
pub fn fit_report(circuit: &CacheCircuit, grid: &KnobGrid) -> Result<Table, StudyError> {
    let fits = component_fits(circuit, grid)?;
    let mut table = Table::new(
        format!(
            "Eq.1/Eq.2 surface-fit quality, {} (Section 3)",
            circuit.config()
        ),
        &[
            "component",
            "leak R²",
            "leak a1 (1/V)",
            "leak a2 (1/A)",
            "delay R²",
            "delay k3 (1/V)",
            "delay k2 (ps/A)",
        ],
    );
    for f in &fits {
        table.push_row(vec![
            f.component.to_string(),
            cell(f.leakage.r_squared, 4),
            cell(f.leakage.exp_vth, 1),
            cell(f.leakage.exp_tox, 2),
            cell(f.delay.r_squared, 4),
            cell(f.delay.exp_vth, 2),
            cell(f.delay.k2 * 1e12, 2),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::TechnologyNode;
    use nm_geometry::CacheConfig;

    fn circuit() -> CacheCircuit {
        let tech = TechnologyNode::bptm65();
        CacheCircuit::new(CacheConfig::new(16 * 1024, 64, 4).unwrap(), &tech)
    }

    #[test]
    fn all_components_fit_well() {
        // The paper's Eq. 1/Eq. 2 forms must capture the analytic model:
        // this is the reproduction's methodological anchor.
        let fits = component_fits(&circuit(), &KnobGrid::paper()).unwrap();
        assert_eq!(fits.len(), 4);
        for f in &fits {
            assert!(
                f.leakage.r_squared > 0.95,
                "{}: leakage R² = {}",
                f.component,
                f.leakage.r_squared
            );
            assert!(
                f.delay.r_squared > 0.95,
                "{}: delay R² = {}",
                f.component,
                f.delay.r_squared
            );
        }
    }

    #[test]
    fn fitted_signs_match_physics() {
        let fits = component_fits(&circuit(), &KnobGrid::paper()).unwrap();
        for f in &fits {
            // Leakage falls with both knobs; delay rises with both.
            assert!(f.leakage.exp_vth < 0.0, "{}", f.component);
            assert!(f.leakage.exp_tox < 0.0, "{}", f.component);
            assert!(f.delay.exp_vth > 0.0, "{}", f.component);
            assert!(f.delay.k2 > 0.0, "{}", f.component);
            assert!(f.delay.k1 > 0.0, "{}", f.component);
        }
    }

    #[test]
    fn report_has_one_row_per_component() {
        let t = fit_report(&circuit(), &KnobGrid::coarse()).unwrap();
        assert_eq!(t.len(), 4);
    }
}
