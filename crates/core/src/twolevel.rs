//! Section 5: two-level cache leakage optimisation.
//!
//! * **E3** — [`TwoLevelStudy::l2_size_sweep`] with [`Scheme::Uniform`]:
//!   fix the L1 at default knobs, give the whole L2 one `Vth`/`Tox` pair,
//!   and find which L2 size yields the least leakage at an iso-AMAT
//!   constraint. The paper: "generally the bigger L2 consumes less leakage
//!   power than smaller ones under the same delay constraint …
//!   \[n\]evertheless, having the largest available L2 does not always yield
//!   the best leakage."
//! * **E4** — the same sweep with [`Scheme::Split`]: cell array and
//!   periphery get their own pairs, which lets a *smaller* L2 meet the
//!   AMAT by speeding only its periphery while its cells stay
//!   conservative.
//! * **E5** — [`TwoLevelStudy::l1_size_sweep`]: with L2 fixed, jointly
//!   optimise both caches across L1 sizes; small L1s win.

use crate::amat::{memory_floor, MainMemory};
use crate::eval::{Evaluator, HierarchySpec};
use crate::groups::{CostKind, Scheme};
use crate::report::{cell, Table};
use crate::StudyError;
use nm_archsim::workload::SuiteKind;
use nm_archsim::{MissRateTable, PairStats};
use nm_device::units::{Seconds, Watts};
use nm_device::{KnobGrid, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig, ComponentKnobs};
use nm_opt::objective::Deadline;
use serde::{Deserialize, Serialize};

/// Default block size for both levels (bytes).
pub const BLOCK_BYTES: u64 = 64;

/// Default L1 associativity.
pub const L1_WAYS: u64 = 4;

/// Default L2 associativity.
pub const L2_WAYS: u64 = 8;

/// The benchmark mix averaged into the standard miss-rate table (the
/// paper's SPEC2000 / SPECWEB / TPC-C trio).
pub const STANDARD_SUITES: [SuiteKind; 3] =
    [SuiteKind::Spec2000, SuiteKind::TpcC, SuiteKind::SpecWeb];

/// One row of an L2 (or L1) size sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Swept cache size in bytes.
    pub size_bytes: u64,
    /// L1 miss rate at this size combination.
    pub m1: f64,
    /// Local L2 miss rate at this size combination.
    pub m2: f64,
    /// Achieved AMAT when feasible.
    pub amat: Option<Seconds>,
    /// Optimised leakage of the swept cache when feasible.
    pub opt_leakage: Option<Watts>,
    /// Total system (L1 + L2) leakage when feasible.
    pub total_leakage: Option<Watts>,
    /// The winning knob assignment of the optimised cache.
    pub knobs: Option<ComponentKnobs>,
}

/// A completed size sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// Table title.
    pub title: String,
    /// Per-size rows in sweep order.
    pub rows: Vec<SweepRow>,
}

impl SweepOutcome {
    /// The feasible row with the least total leakage.
    pub fn winner(&self) -> Option<&SweepRow> {
        self.rows
            .iter()
            .filter_map(|r| r.total_leakage.map(|w| (r, w.0)))
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(r, _)| r)
    }

    /// Renders the sweep as a text/CSV table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            self.title.clone(),
            &[
                "size (KB)",
                "m1",
                "m2",
                "AMAT (ps)",
                "opt leak (mW)",
                "total leak (mW)",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                cell(r.size_bytes as f64 / 1024.0, 0),
                cell(r.m1, 4),
                cell(r.m2, 4),
                r.amat
                    .map_or_else(|| "infeasible".to_owned(), |a| cell(a.picos(), 0)),
                r.opt_leakage
                    .map_or_else(|| "-".to_owned(), |w| cell(w.milli(), 3)),
                r.total_leakage
                    .map_or_else(|| "-".to_owned(), |w| cell(w.milli(), 3)),
            ]);
        }
        t
    }
}

/// The Section 5 study: a miss-rate table, a technology node, a knob grid
/// and a main-memory endpoint.
#[derive(Debug, Clone)]
pub struct TwoLevelStudy {
    tech: TechnologyNode,
    eval: Evaluator,
    missrates: MissRateTable,
    memory: MainMemory,
}

impl TwoLevelStudy {
    /// Assembles a study from parts.
    pub fn new(
        missrates: MissRateTable,
        tech: TechnologyNode,
        grid: KnobGrid,
        memory: MainMemory,
    ) -> Self {
        TwoLevelStudy {
            tech,
            eval: Evaluator::new(grid),
            missrates,
            memory,
        }
    }

    /// Builds the standard study: L1 ∈ {4…64 K}, L2 ∈ {256 K…8 M},
    /// averaged over [`STANDARD_SUITES`]. `quick` trades simulation length
    /// for speed (tests); benches use the full-length table.
    pub fn standard(quick: bool) -> Self {
        let (warmup, measure) = if quick {
            (30_000, 60_000)
        } else {
            (300_000, 600_000)
        };
        let missrates = MissRateTable::build(
            &Self::standard_l1_sizes(),
            &Self::standard_l2_sizes(),
            &STANDARD_SUITES,
            2005,
            warmup,
            measure,
        );
        Self::new(
            missrates,
            TechnologyNode::bptm65(),
            KnobGrid::paper(),
            MainMemory::default(),
        )
    }

    /// The standard L1 size axis (bytes): 4 K to 64 K, the paper's range.
    pub fn standard_l1_sizes() -> Vec<u64> {
        vec![4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024]
    }

    /// The standard L2 size axis (bytes): 256 K to 8 M.
    pub fn standard_l2_sizes() -> Vec<u64> {
        vec![
            256 * 1024,
            512 * 1024,
            1024 * 1024,
            2 * 1024 * 1024,
            4 * 1024 * 1024,
            8 * 1024 * 1024,
        ]
    }

    /// The knob grid in use.
    pub fn grid(&self) -> &KnobGrid {
        self.eval.grid()
    }

    /// The memoizing evaluator behind the study's sweeps (its
    /// [`stats`](Evaluator::stats) expose surface/front build counters).
    pub fn evaluator(&self) -> &Evaluator {
        &self.eval
    }

    /// The miss-rate table in use.
    pub fn missrates(&self) -> &MissRateTable {
        &self.missrates
    }

    /// Looks up miss-rate statistics for a size pair.
    ///
    /// # Errors
    ///
    /// [`StudyError::MissingMissRates`] when the pair was not simulated.
    pub fn stats(&self, l1_bytes: u64, l2_bytes: u64) -> Result<PairStats, StudyError> {
        self.missrates
            .get(l1_bytes, l2_bytes)
            .copied()
            .ok_or(StudyError::MissingMissRates { l1_bytes, l2_bytes })
    }

    fn l1_circuit(&self, bytes: u64) -> Result<CacheCircuit, StudyError> {
        Ok(CacheCircuit::new(
            CacheConfig::new(bytes, BLOCK_BYTES, L1_WAYS)?,
            &self.tech,
        ))
    }

    fn l2_circuit(&self, bytes: u64) -> Result<CacheCircuit, StudyError> {
        Ok(CacheCircuit::new(
            CacheConfig::new(bytes, BLOCK_BYTES, L2_WAYS)?,
            &self.tech,
        ))
    }

    /// The minimum achievable AMAT for a size pair with the L1 held at
    /// default knobs and the L2 fully aggressive — the tightest meaningful
    /// iso-AMAT constraint for the L2 sweeps.
    ///
    /// # Errors
    ///
    /// Propagates missing miss rates or impossible geometry.
    pub fn min_amat_l1_fixed(&self, l1_bytes: u64, l2_bytes: u64) -> Result<Seconds, StudyError> {
        let stats = self.stats(l1_bytes, l2_bytes)?;
        let l1 = self.l1_circuit(l1_bytes)?;
        let t_l1 = l1.analyze(&ComponentKnobs::default()).access_time();
        let l2 = self.l2_circuit(l2_bytes)?;
        let t_l2 = l2.fastest_access_time();
        Ok(t_l1
            + t_l2 * stats.l1_miss_rate
            + memory_floor(
                stats.l1_miss_rate,
                stats.l2_local_miss_rate,
                self.memory.access_time,
            ))
    }

    /// An iso-AMAT target with fractional `slack` over the best achievable
    /// AMAT across the given L2 sizes (L1 fixed at default knobs).
    ///
    /// # Errors
    ///
    /// Propagates missing miss rates or impossible geometry.
    pub fn amat_target(
        &self,
        l1_bytes: u64,
        l2_sizes: &[u64],
        slack: f64,
    ) -> Result<Seconds, StudyError> {
        let mut best = f64::INFINITY;
        for &l2 in l2_sizes {
            best = best.min(self.min_amat_l1_fixed(l1_bytes, l2)?.0);
        }
        Ok(Seconds(best * (1.0 + slack)))
    }

    /// **E3 / E4** — optimises the L2's knobs at every L2 size under one
    /// iso-AMAT constraint, with the L1 fixed at default knobs.
    ///
    /// `scheme` [`Scheme::Uniform`] reproduces the paper's first
    /// experiment (one pair per L2), [`Scheme::Split`] the second (cell
    /// array vs periphery pairs).
    ///
    /// # Errors
    ///
    /// Propagates missing miss rates or impossible geometry.
    pub fn l2_size_sweep(
        &self,
        l1_bytes: u64,
        l2_sizes: &[u64],
        scheme: Scheme,
        amat_target: Seconds,
    ) -> Result<SweepOutcome, StudyError> {
        let l1 = self.l1_circuit(l1_bytes)?;
        let l1_metrics = l1.analyze(&ComponentKnobs::default());
        let t_l1 = l1_metrics.access_time();
        let l1_leak = l1_metrics.leakage().total();

        let mut rows = Vec::with_capacity(l2_sizes.len());
        for &l2_bytes in l2_sizes {
            let stats = self.stats(l1_bytes, l2_bytes)?;
            let l2 = self.l2_circuit(l2_bytes)?;
            let base = t_l1
                + memory_floor(
                    stats.l1_miss_rate,
                    stats.l2_local_miss_rate,
                    self.memory.access_time,
                );
            let budget = amat_target.0 - base.0;
            let mut row = SweepRow {
                size_bytes: l2_bytes,
                m1: stats.l1_miss_rate,
                m2: stats.l2_local_miss_rate,
                amat: None,
                opt_leakage: None,
                total_leakage: None,
                knobs: None,
            };
            if budget > 0.0 {
                // The L2 delay weight is the miss-chain weight of level 1
                // (weights = [1, m1]); bit-identical to passing m1 by hand.
                let weights = HierarchySpec::try_amat_weights(&[stats.l1_miss_rate])?;
                let spec =
                    HierarchySpec::single(l2.clone(), scheme, weights[1], CostKind::LeakagePower);
                if let Some(sol) = self.eval.solve(&spec, &Deadline(budget)) {
                    let l2_leak = Watts(sol.cost);
                    row.amat = Some(Seconds(base.0 + sol.delay));
                    row.opt_leakage = Some(l2_leak);
                    row.total_leakage = Some(l1_leak + l2_leak);
                    row.knobs = Some(sol.knobs[0]);
                }
            }
            rows.push(row);
        }
        Ok(SweepOutcome {
            title: format!(
                "L2 size sweep ({scheme}), L1 = {} KB, AMAT ≤ {:.0} ps (Section 5)",
                l1_bytes / 1024,
                amat_target.picos()
            ),
            rows,
        })
    }

    /// **E5** — jointly optimises L1 and L2 knobs (Scheme II inside each
    /// cache) across L1 sizes with the L2 size fixed, under one iso-AMAT
    /// constraint. The paper: a small L1 minimises total leakage.
    ///
    /// # Errors
    ///
    /// Propagates missing miss rates or impossible geometry.
    pub fn l1_size_sweep(
        &self,
        l1_sizes: &[u64],
        l2_bytes: u64,
        amat_target: Seconds,
    ) -> Result<SweepOutcome, StudyError> {
        let mut rows = Vec::with_capacity(l1_sizes.len());
        for &l1_bytes in l1_sizes {
            let stats = self.stats(l1_bytes, l2_bytes)?;
            let l1 = self.l1_circuit(l1_bytes)?;
            let l2 = self.l2_circuit(l2_bytes)?;
            let base = memory_floor(
                stats.l1_miss_rate,
                stats.l2_local_miss_rate,
                self.memory.access_time,
            );
            let budget = amat_target.0 - base.0;
            let mut row = SweepRow {
                size_bytes: l1_bytes,
                m1: stats.l1_miss_rate,
                m2: stats.l2_local_miss_rate,
                amat: None,
                opt_leakage: None,
                total_leakage: None,
                knobs: None,
            };
            if budget > 0.0 {
                let weights = HierarchySpec::try_amat_weights(&[stats.l1_miss_rate])?;
                let spec = HierarchySpec::new()
                    .level(
                        "L1",
                        l1.clone(),
                        Scheme::Split,
                        weights[0],
                        CostKind::LeakagePower,
                    )
                    .level(
                        "L2",
                        l2.clone(),
                        Scheme::Split,
                        weights[1],
                        CostKind::LeakagePower,
                    );
                if let Some(sol) = self.eval.solve(&spec, &Deadline(budget)) {
                    let l1_knobs = sol.knobs[0];
                    let l1_leak = self.eval.analyze(&l1, &l1_knobs).leakage().total();
                    row.amat = Some(Seconds(base.0 + sol.delay));
                    row.opt_leakage = Some(l1_leak);
                    row.total_leakage = Some(Watts(sol.cost));
                    row.knobs = Some(l1_knobs);
                }
            }
            rows.push(row);
        }
        Ok(SweepOutcome {
            title: format!(
                "L1 size sweep, L2 = {} KB, AMAT ≤ {:.0} ps (Section 5)",
                l2_bytes / 1024,
                amat_target.picos()
            ),
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One quick study shared by all tests (the miss-rate simulation is
    /// the slow part).
    fn study() -> &'static TwoLevelStudy {
        static STUDY: OnceLock<TwoLevelStudy> = OnceLock::new();
        STUDY.get_or_init(|| {
            // Long enough to warm the 4 MB L2 — shorter tables leave the
            // large sizes cold and flatten the m2-vs-size curve the
            // Section 5 experiments depend on.
            let missrates = MissRateTable::build(
                &[16 * 1024],
                &[256 * 1024, 1024 * 1024, 4 * 1024 * 1024],
                &STANDARD_SUITES,
                2005,
                400_000,
                400_000,
            );
            TwoLevelStudy::new(
                missrates,
                TechnologyNode::bptm65(),
                KnobGrid::coarse(),
                MainMemory::default(),
            )
        })
    }

    const L2_SIZES: [u64; 3] = [256 * 1024, 1024 * 1024, 4 * 1024 * 1024];

    #[test]
    fn missing_pair_is_an_error() {
        let s = study();
        assert!(matches!(
            s.stats(4 * 1024, 256 * 1024),
            Err(StudyError::MissingMissRates { .. })
        ));
        assert!(s.stats(16 * 1024, 256 * 1024).is_ok());
    }

    #[test]
    fn miss_rates_fall_with_l2_size() {
        let s = study();
        let m_small = s.stats(16 * 1024, 256 * 1024).unwrap().l2_local_miss_rate;
        let m_big = s
            .stats(16 * 1024, 4 * 1024 * 1024)
            .unwrap()
            .l2_local_miss_rate;
        assert!(m_big < m_small, "{m_big} ≥ {m_small}");
    }

    #[test]
    fn uniform_sweep_prefers_bigger_l2_at_tight_amat() {
        // E3: with one pair per L2 and a tight AMAT, bigger L2s leak less
        // than the smallest.
        let s = study();
        let target = s.amat_target(16 * 1024, &L2_SIZES, 0.06).unwrap();
        let sweep = s
            .l2_size_sweep(16 * 1024, &L2_SIZES, Scheme::Uniform, target)
            .unwrap();
        let winner = sweep.winner().expect("some size feasible");
        assert!(
            winner.size_bytes > 256 * 1024,
            "winner = {} KB\n{}",
            winner.size_bytes / 1024,
            sweep.to_table()
        );
    }

    #[test]
    fn split_scheme_never_worse_than_uniform() {
        // E4: per-size, the split assignment leaks at most as much.
        let s = study();
        let target = s.amat_target(16 * 1024, &L2_SIZES, 0.10).unwrap();
        let uni = s
            .l2_size_sweep(16 * 1024, &L2_SIZES, Scheme::Uniform, target)
            .unwrap();
        let split = s
            .l2_size_sweep(16 * 1024, &L2_SIZES, Scheme::Split, target)
            .unwrap();
        for (u, v) in uni.rows.iter().zip(&split.rows) {
            if let (Some(a), Some(b)) = (u.opt_leakage, v.opt_leakage) {
                assert!(
                    b.0 <= a.0 + 1e-15,
                    "{} KB: split worse",
                    u.size_bytes / 1024
                );
            }
        }
    }

    #[test]
    fn split_lets_smaller_l2_win() {
        // E4: under the split assignment the optimum moves to a smaller
        // L2 than under the uniform assignment (the paper's second
        // Section 5 finding).
        let s = study();
        let target = s.amat_target(16 * 1024, &L2_SIZES, 0.06).unwrap();
        let uni = s
            .l2_size_sweep(16 * 1024, &L2_SIZES, Scheme::Uniform, target)
            .unwrap();
        let split = s
            .l2_size_sweep(16 * 1024, &L2_SIZES, Scheme::Split, target)
            .unwrap();
        let wu = uni.winner().expect("uniform feasible").size_bytes;
        let ws = split.winner().expect("split feasible").size_bytes;
        assert!(
            ws <= wu,
            "split winner {} KB > uniform winner {} KB\nuniform:\n{}\nsplit:\n{}",
            ws / 1024,
            wu / 1024,
            uni.to_table(),
            split.to_table()
        );
    }

    #[test]
    fn split_cells_more_conservative_than_periphery() {
        let s = study();
        let target = s.amat_target(16 * 1024, &L2_SIZES, 0.05).unwrap();
        let sweep = s
            .l2_size_sweep(16 * 1024, &L2_SIZES, Scheme::Split, target)
            .unwrap();
        for (row, knobs) in sweep.rows.iter().filter_map(|r| r.knobs.map(|k| (r, k))) {
            let cells = knobs[nm_geometry::ComponentId::MemoryArray];
            let periph = knobs[nm_geometry::ComponentId::Decoder];
            assert!(
                cells.vth().0 >= periph.vth().0 && cells.tox().0 >= periph.tox().0,
                "{} KB: cells {cells} vs periphery {periph}",
                row.size_bytes / 1024
            );
        }
    }

    #[test]
    fn achieved_amat_meets_target() {
        let s = study();
        let target = s.amat_target(16 * 1024, &L2_SIZES, 0.08).unwrap();
        let sweep = s
            .l2_size_sweep(16 * 1024, &L2_SIZES, Scheme::Uniform, target)
            .unwrap();
        for amat in sweep.rows.iter().filter_map(|r| r.amat) {
            assert!(amat.0 <= target.0 + 1e-15);
        }
    }

    #[test]
    fn sweep_table_renders() {
        let s = study();
        let target = s.amat_target(16 * 1024, &L2_SIZES, 0.10).unwrap();
        let sweep = s
            .l2_size_sweep(16 * 1024, &L2_SIZES, Scheme::Uniform, target)
            .unwrap();
        let t = sweep.to_table();
        assert_eq!(t.len(), L2_SIZES.len());
    }
}
