//! Knob sensitivities and exchange rates.
//!
//! Figure 1's qualitative message — leakage is more sensitive to `Tox`,
//! delay is more sensitive to `Vth` — in numbers a designer can act on.
//! For each component at a knob point we report finite-difference
//! sensitivities of leakage and delay to each knob, and the **exchange
//! rate** each knob offers: the relative leakage saved per relative delay
//! given up when moving that knob in its leakage-reducing direction.
//!
//! The rates expose the paper's policy as a two-phase greedy argument: at
//! aggressive/nominal oxides `Tox` offers the better deal (gate
//! tunnelling is enormous and thickening is cheap), so every optimum
//! spends the whole 4 Å of `Tox` range first; once `Tox` is parked at
//! 14 Å the gate floor is gone and `Vth` is the knob with purchasing
//! power left — "set Tox conservatively at a high value and let Vth be
//! the knob designers can vary".

use crate::report::{cell, Table};
use nm_device::units::{Angstroms, Volts};
use nm_device::{KnobPoint, TechnologyNode};
use nm_geometry::{CacheCircuit, ComponentId, COMPONENT_IDS};
use serde::{Deserialize, Serialize};

/// Finite-difference step for `Vth`, volts.
const DV: f64 = 0.01;

/// Finite-difference step for `Tox`, ångströms.
const DT: f64 = 0.25;

/// Sensitivities of one component at one knob point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnobSensitivity {
    /// The component analysed.
    pub component: ComponentId,
    /// The knob point analysed at.
    pub at: KnobPoint,
    /// Relative leakage change per volt of `Vth` (negative: raising `Vth`
    /// reduces leakage).
    pub leak_per_vth: f64,
    /// Relative leakage change per ångström of `Tox` (negative).
    pub leak_per_tox: f64,
    /// Relative delay change per volt of `Vth` (positive).
    pub delay_per_vth: f64,
    /// Relative delay change per ångström of `Tox` (positive).
    pub delay_per_tox: f64,
}

impl KnobSensitivity {
    /// Relative leakage reduction per unit of relative delay given up when
    /// raising `Vth` — the `Vth` knob's exchange rate (≥ 0; larger is a
    /// better deal).
    pub fn vth_exchange_rate(&self) -> f64 {
        if self.delay_per_vth <= 0.0 {
            return 0.0;
        }
        (-self.leak_per_vth).max(0.0) / self.delay_per_vth
    }

    /// The `Tox` knob's exchange rate.
    pub fn tox_exchange_rate(&self) -> f64 {
        if self.delay_per_tox <= 0.0 {
            return 0.0;
        }
        (-self.leak_per_tox).max(0.0) / self.delay_per_tox
    }
}

/// Computes central-difference sensitivities of a component at a point
/// (steps shrink to one-sided at the knob-range edges).
///
/// ```
/// use nm_cache_core::sensitivity::component_sensitivity;
/// use nm_device::{KnobPoint, TechnologyNode};
/// use nm_geometry::{CacheCircuit, CacheConfig, ComponentId};
///
/// let tech = TechnologyNode::bptm65();
/// let circuit = CacheCircuit::new(CacheConfig::new(16 * 1024, 64, 4)?, &tech);
/// let s = component_sensitivity(&circuit, ComponentId::MemoryArray, KnobPoint::nominal());
/// assert!(s.leak_per_vth < 0.0 && s.delay_per_vth > 0.0);
/// # Ok::<(), nm_geometry::GeometryError>(())
/// ```
pub fn component_sensitivity(
    circuit: &CacheCircuit,
    component: ComponentId,
    at: KnobPoint,
) -> KnobSensitivity {
    let eval = |p: KnobPoint| {
        let m = circuit.analyze_component(component, p);
        (m.leakage.total().0, m.delay.0)
    };
    let (leak0, delay0) = eval(at);

    let clamp_v = |v: f64| v.clamp(nm_device::knobs::VTH_RANGE.0, nm_device::knobs::VTH_RANGE.1);
    let clamp_t = |t: f64| t.clamp(nm_device::knobs::TOX_RANGE.0, nm_device::knobs::TOX_RANGE.1);

    let v_hi = clamp_v(at.vth().0 + DV);
    let v_lo = clamp_v(at.vth().0 - DV);
    let t_hi = clamp_t(at.tox().0 + DT);
    let t_lo = clamp_t(at.tox().0 - DT);

    #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: clamped to legal window
    let p = |v: f64, t: f64| KnobPoint::new(Volts(v), Angstroms(t)).expect("clamped to range");
    let (leak_vh, delay_vh) = eval(p(v_hi, at.tox().0));
    let (leak_vl, delay_vl) = eval(p(v_lo, at.tox().0));
    let (leak_th, delay_th) = eval(p(at.vth().0, t_hi));
    let (leak_tl, delay_tl) = eval(p(at.vth().0, t_lo));

    let dv = (v_hi - v_lo).max(f64::MIN_POSITIVE);
    let dt = (t_hi - t_lo).max(f64::MIN_POSITIVE);

    KnobSensitivity {
        component,
        at,
        leak_per_vth: (leak_vh - leak_vl) / dv / leak0,
        leak_per_tox: (leak_th - leak_tl) / dt / leak0,
        delay_per_vth: (delay_vh - delay_vl) / dv / delay0,
        delay_per_tox: (delay_th - delay_tl) / dt / delay0,
    }
}

/// Sensitivities of every component at one point.
pub fn all_components(circuit: &CacheCircuit, at: KnobPoint) -> Vec<KnobSensitivity> {
    COMPONENT_IDS
        .iter()
        .map(|&id| component_sensitivity(circuit, id, at))
        .collect()
}

/// Renders the sensitivities and exchange rates as a table.
pub fn sensitivity_table(circuit: &CacheCircuit, at: KnobPoint) -> Table {
    let _ = TechnologyNode::bptm65(); // anchor the node the doc refers to
    let mut t = Table::new(
        format!("Knob sensitivities of {} at {at}", circuit.config()),
        &[
            "component",
            "dLeak/dVth (1/V)",
            "dLeak/dTox (1/A)",
            "dDelay/dVth (1/V)",
            "dDelay/dTox (1/A)",
            "Vth exch.",
            "Tox exch.",
        ],
    );
    for s in all_components(circuit, at) {
        t.push_row(vec![
            s.component.to_string(),
            cell(s.leak_per_vth, 2),
            cell(s.leak_per_tox, 3),
            cell(s.delay_per_vth, 3),
            cell(s.delay_per_tox, 4),
            cell(s.vth_exchange_rate(), 1),
            cell(s.tox_exchange_rate(), 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_geometry::CacheConfig;

    fn circuit() -> CacheCircuit {
        let tech = TechnologyNode::bptm65();
        CacheCircuit::new(CacheConfig::new(16 * 1024, 64, 4).unwrap(), &tech)
    }

    #[test]
    fn signs_match_the_physics() {
        for s in all_components(&circuit(), KnobPoint::nominal()) {
            assert!(s.leak_per_vth < 0.0, "{:?}", s.component);
            assert!(s.leak_per_tox < 0.0, "{:?}", s.component);
            assert!(s.delay_per_vth > 0.0, "{:?}", s.component);
            assert!(s.delay_per_tox > 0.0, "{:?}", s.component);
        }
    }

    #[test]
    fn exchange_rates_explain_the_papers_two_phase_policy() {
        // The derivatives reproduce *why* every optimum parks Tox at 14 Å
        // and then tunes Vth:
        //
        // 1. at the nominal corner, Tox offers the better leakage-per-delay
        //    deal (gate tunnelling is huge and thickening is cheap), so the
        //    optimiser spends Tox's whole 4 Å range first;
        // 2. with Tox parked at 14 Å, the gate floor is gone and Vth is the
        //    knob with a strong exchange rate left — "let Vth be the knob
        //    designers can vary".
        let c = circuit();
        let nominal = component_sensitivity(&c, ComponentId::MemoryArray, KnobPoint::nominal());
        assert!(
            nominal.tox_exchange_rate() > nominal.vth_exchange_rate(),
            "phase 1: tox {:.2} ≤ vth {:.2}",
            nominal.tox_exchange_rate(),
            nominal.vth_exchange_rate()
        );

        let parked = KnobPoint::new(Volts(0.3), Angstroms(14.0)).expect("legal");
        let s = component_sensitivity(&c, ComponentId::MemoryArray, parked);
        // With the gate floor removed, Vth's deal dominates.
        assert!(
            s.vth_exchange_rate() > s.tox_exchange_rate(),
            "phase 2: vth {:.2} ≤ tox {:.2}",
            s.vth_exchange_rate(),
            s.tox_exchange_rate()
        );
        assert!(
            s.vth_exchange_rate() > 1.0,
            "Vth deal too weak: {:.2}",
            s.vth_exchange_rate()
        );
    }

    #[test]
    fn exchange_rates_are_non_negative() {
        for at in [KnobPoint::fastest(), KnobPoint::nominal()] {
            for s in all_components(&circuit(), at) {
                assert!(s.vth_exchange_rate() >= 0.0);
                assert!(s.tox_exchange_rate() >= 0.0);
            }
        }
    }

    #[test]
    fn edge_points_use_one_sided_differences_without_panicking() {
        let c = circuit();
        for at in [KnobPoint::fastest(), KnobPoint::lowest_leakage()] {
            let s = component_sensitivity(&c, ComponentId::MemoryArray, at);
            assert!(s.leak_per_vth.is_finite());
            assert!(s.delay_per_tox.is_finite());
        }
    }

    #[test]
    fn table_has_four_rows() {
        let t = sensitivity_table(&circuit(), KnobPoint::nominal());
        assert_eq!(t.len(), 4);
    }
}
