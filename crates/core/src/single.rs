//! Section 4: single-cache leakage optimisation.
//!
//! Three experiments live here:
//!
//! * **E1 / Figure 1** — [`SingleCacheStudy::fixed_knob_curves`]: hold one
//!   knob fixed, sweep the other, and plot leakage against access time for
//!   a 16 KB cache.
//! * **E2** — [`SingleCacheStudy::scheme_comparison`]: minimum leakage of
//!   assignment schemes I/II/III across a sweep of delay constraints.
//! * **E7** — [`SingleCacheStudy::knob_ablation`]: optimise with only one
//!   knob free, quantifying the paper's "Vth is the better design knob"
//!   conclusion.

use crate::eval::{Evaluator, HierarchySpec};
use crate::groups::{CostKind, Scheme};
use crate::report::{cell, Series, Table};
use crate::StudyError;
use nm_device::leakage::LeakageBreakdown;
use nm_device::units::{Angstroms, Seconds, Volts};
use nm_device::{KnobGrid, KnobPoint, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig, ComponentKnobs};
use nm_opt::objective::Deadline;
use serde::{Deserialize, Serialize};

/// A constrained-optimisation result for one cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeSolution {
    /// The scheme optimised under.
    pub scheme: Scheme,
    /// The winning knob assignment.
    pub knobs: ComponentKnobs,
    /// Achieved access time (meets the deadline).
    pub access_time: Seconds,
    /// Achieved leakage breakdown.
    pub leakage: LeakageBreakdown,
}

/// The Section 4 study: one cache, one technology node, one knob grid.
#[derive(Debug, Clone)]
pub struct SingleCacheStudy {
    circuit: CacheCircuit,
    eval: Evaluator,
}

impl SingleCacheStudy {
    /// Creates a study for an arbitrary configuration.
    pub fn new(config: CacheConfig, tech: &TechnologyNode, grid: KnobGrid) -> Self {
        Self::with_circuit(CacheCircuit::new(config, tech), grid)
    }

    /// Creates a study over a pre-built circuit (e.g. one with a custom
    /// subarray folding from [`nm_geometry::explore`]).
    pub fn with_circuit(circuit: CacheCircuit, grid: KnobGrid) -> Self {
        SingleCacheStudy {
            circuit,
            eval: Evaluator::new(grid),
        }
    }

    /// The paper's Figure 1 subject: a 16 KB, 4-way, 64 B-line cache on
    /// the BPTM-65 node with the paper's fine knob grid.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in configuration; the `Result` mirrors
    /// [`CacheConfig::new`] for API consistency.
    pub fn paper_16kb() -> Result<Self, StudyError> {
        let tech = TechnologyNode::bptm65();
        let config = CacheConfig::new(16 * 1024, 64, 4)?;
        Ok(Self::new(config, &tech, KnobGrid::paper()))
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &CacheCircuit {
        &self.circuit
    }

    /// The knob grid in use.
    pub fn grid(&self) -> &KnobGrid {
        self.eval.grid()
    }

    /// The study's one-cache evaluation problem under a scheme.
    fn spec(&self, scheme: Scheme) -> HierarchySpec {
        HierarchySpec::single(self.circuit.clone(), scheme, 1.0, CostKind::LeakagePower)
    }

    /// Evenly spaced feasible delay constraints spanning the cache's
    /// achievable access-time range (endpoints included).
    pub fn delay_sweep(&self, steps: usize) -> Vec<Seconds> {
        let lo = self.circuit.fastest_access_time();
        let hi = self.circuit.slowest_access_time();
        if steps <= 1 {
            return vec![hi];
        }
        (0..steps)
            .map(|i| lo + (hi - lo) * (i as f64 / (steps - 1) as f64))
            .collect()
    }

    /// Minimises total leakage under a delay constraint for one scheme
    /// (the paper's Section 4 optimisation). Returns `None` when the
    /// deadline is infeasible.
    pub fn optimize(&self, scheme: Scheme, deadline: Seconds) -> Option<SchemeSolution> {
        let sol = self.eval.solve(&self.spec(scheme), &Deadline(deadline.0))?;
        let knobs = sol.knobs[0];
        let metrics = self.eval.analyze(&self.circuit, &knobs);
        Some(SchemeSolution {
            scheme,
            knobs,
            access_time: metrics.access_time(),
            leakage: metrics.leakage(),
        })
    }

    /// **E2** — compares the minimum leakage of schemes I/II/III across a
    /// delay-constraint sweep.
    pub fn scheme_comparison(&self, deadlines: &[Seconds]) -> Table {
        let mut table = Table::new(
            format!("Scheme comparison, {} (Section 4)", self.circuit.config()),
            &[
                "deadline (ps)",
                "I: leak (mW)",
                "II: leak (mW)",
                "III: leak (mW)",
                "II vs I (%)",
                "III vs I (%)",
            ],
        );
        for &deadline in deadlines {
            let sols: Vec<Option<SchemeSolution>> = Scheme::ALL
                .iter()
                .map(|&s| self.optimize(s, deadline))
                .collect();
            let (Some(s1), Some(s2), Some(s3)) = (&sols[0], &sols[1], &sols[2]) else {
                continue;
            };
            let l1 = s1.leakage.total().milli();
            let l2 = s2.leakage.total().milli();
            let l3 = s3.leakage.total().milli();
            table.push_row(vec![
                cell(deadline.picos(), 0),
                cell(l1, 3),
                cell(l2, 3),
                cell(l3, 3),
                cell(100.0 * (l2 - l1) / l1, 1),
                cell(100.0 * (l3 - l1) / l1, 1),
            ]);
        }
        table
    }

    /// **E1 / Figure 1** — the four fixed-knob curves: leakage (mW) versus
    /// access time (ps) under a uniform assignment, holding one knob fixed
    /// and sweeping the other over its grid axis.
    ///
    /// # Errors
    ///
    /// Propagates [`StudyError::Device`] when a fixed knob value falls
    /// outside the technology's legal range (a misconfigured grid).
    pub fn fixed_knob_curves(&self) -> Result<Vec<Series>, StudyError> {
        let mut series = Vec::new();
        for &tox in &[10.0, 14.0] {
            let mut s = Series::new(format!("Tox={tox:.0}A"));
            for &vth in self.grid().vth_values() {
                let p = KnobPoint::new(vth, Angstroms(tox))?;
                s.points.push(self.uniform_point(p));
            }
            s.points.sort_by(|a, b| a.0.total_cmp(&b.0));
            series.push(s);
        }
        for &vth in &[0.2, 0.4] {
            let mut s = Series::new(format!("Vth={:.0}mV", vth * 1e3));
            for &tox in self.grid().tox_values() {
                let p = KnobPoint::new(Volts(vth), tox)?;
                s.points.push(self.uniform_point(p));
            }
            s.points.sort_by(|a, b| a.0.total_cmp(&b.0));
            series.push(s);
        }
        Ok(series)
    }

    fn uniform_point(&self, p: KnobPoint) -> (f64, f64) {
        let m = self
            .eval
            .analyze(&self.circuit, &ComponentKnobs::uniform(p));
        (m.access_time().picos(), m.leakage().total().milli())
    }

    /// **E7** — single-knob ablation: minimum leakage at each deadline
    /// when only `Vth` may vary (at a fixed `Tox`) versus when only `Tox`
    /// may vary (at a fixed `Vth`), under Scheme II grouping.
    ///
    /// The paper's conclusion: "it is best to set Tox conservatively at a
    /// high value and let Vth be the knob designers can vary".
    pub fn knob_ablation(&self, deadlines: &[Seconds]) -> Table {
        let vth_axis: Vec<f64> = self.grid().vth_values().iter().map(|v| v.0).collect();
        let tox_axis: Vec<f64> = self.grid().tox_values().iter().map(|t| t.0).collect();

        let spec = self.spec(Scheme::Split);
        let restricted_optimum = |vths: &[f64], toxes: &[f64], deadline: Seconds| -> Option<f64> {
            self.eval
                .solve_restricted(&spec, vths, toxes, &Deadline(deadline.0))
                .map(|sol| sol.cost * 1e3)
        };

        let mut table = Table::new(
            format!(
                "Single-knob ablation, {} (Section 4)",
                self.circuit.config()
            ),
            &[
                "deadline (ps)",
                "Tox knob only, Vth=0.3V (mW)",
                "Vth knob only, Tox=12A (mW)",
                "Vth knob only, Tox=14A (mW)",
                "both knobs (mW)",
            ],
        );
        for &deadline in deadlines {
            let tox_only = restricted_optimum(&[0.3], &tox_axis, deadline);
            let vth_mid = restricted_optimum(&vth_axis, &[12.0], deadline);
            let vth_hi = restricted_optimum(&vth_axis, &[14.0], deadline);
            let both = restricted_optimum(&vth_axis, &tox_axis, deadline);
            let fmt = |v: Option<f64>| v.map_or_else(|| "infeasible".to_owned(), |x| cell(x, 3));
            table.push_row(vec![
                cell(deadline.picos(), 0),
                fmt(tox_only),
                fmt(vth_mid),
                fmt(vth_hi),
                fmt(both),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> SingleCacheStudy {
        // A coarse grid keeps debug-mode tests quick; behaviour is
        // identical in shape to the paper grid.
        let tech = TechnologyNode::bptm65();
        SingleCacheStudy::new(
            CacheConfig::new(16 * 1024, 64, 4).unwrap(),
            &tech,
            KnobGrid::coarse(),
        )
    }

    #[test]
    fn scheme_ordering_holds() {
        // Scheme I ≤ Scheme II ≤ Scheme III in leakage at iso-delay, and
        // II lands close to I (the paper's core Section 4 finding).
        let s = study();
        for deadline in s.delay_sweep(5).into_iter().skip(1) {
            let l1 = s
                .optimize(Scheme::PerComponent, deadline)
                .unwrap()
                .leakage
                .total()
                .0;
            let l2 = s
                .optimize(Scheme::Split, deadline)
                .unwrap()
                .leakage
                .total()
                .0;
            let l3 = s
                .optimize(Scheme::Uniform, deadline)
                .unwrap()
                .leakage
                .total()
                .0;
            assert!(l1 <= l2 + 1e-15, "I > II at {deadline}");
            assert!(l2 <= l3 + 1e-15, "II > III at {deadline}");
        }
    }

    #[test]
    fn scheme_two_is_near_optimal_mid_range() {
        let s = study();
        let deadline = s.delay_sweep(5)[2];
        let l1 = s
            .optimize(Scheme::PerComponent, deadline)
            .unwrap()
            .leakage
            .total()
            .0;
        let l2 = s
            .optimize(Scheme::Split, deadline)
            .unwrap()
            .leakage
            .total()
            .0;
        assert!(
            l2 <= l1 * 1.25,
            "Scheme II {l2:.3e} not close to Scheme I {l1:.3e}"
        );
    }

    #[test]
    fn optimum_meets_deadline() {
        let s = study();
        for deadline in s.delay_sweep(4) {
            let sol = s.optimize(Scheme::Split, deadline).unwrap();
            assert!(
                sol.access_time.0 <= deadline.0 + 1e-15,
                "violated: {} > {}",
                sol.access_time.picos(),
                deadline.picos()
            );
        }
    }

    #[test]
    fn infeasible_deadline_returns_none() {
        let s = study();
        let too_fast = Seconds(s.circuit().fastest_access_time().0 * 0.5);
        assert!(s.optimize(Scheme::Uniform, too_fast).is_none());
    }

    #[test]
    fn optimum_assigns_conservative_cells_fast_periphery() {
        // Paper: "high values of Vth and thick Tox's are always assigned
        // to the memory cell arrays, and Vth/Tox in the peripheral
        // components have been set sufficiently low".
        let s = study();
        let deadline = s.delay_sweep(6)[2]; // a binding mid-range constraint
        let sol = s.optimize(Scheme::Split, deadline).unwrap();
        let cells = sol.knobs[nm_geometry::ComponentId::MemoryArray];
        let periph = sol.knobs[nm_geometry::ComponentId::Decoder];
        assert!(
            cells.vth().0 >= periph.vth().0,
            "cells {cells} vs periphery {periph}"
        );
        assert!(
            cells.tox().0 >= periph.tox().0,
            "cells {cells} vs periphery {periph}"
        );
    }

    #[test]
    fn fig1_curves_have_expected_shape() {
        let s = study();
        let curves = s.fixed_knob_curves().expect("legal fixed knobs");
        assert_eq!(curves.len(), 4);
        // Every curve: leakage decreases as access time increases.
        for c in &curves {
            let first = c.points.first().unwrap();
            let last = c.points.last().unwrap();
            assert!(last.0 > first.0, "{}: not time-sorted", c.label);
            assert!(last.1 < first.1, "{}: leakage not decreasing", c.label);
        }
        // The Tox=10 curve floors far above the Tox=14 curve (gate floor).
        let floor = |label: &str| {
            curves
                .iter()
                .find(|c| c.label == label)
                .unwrap()
                .points
                .iter()
                .map(|p| p.1)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(floor("Tox=10A") > 5.0 * floor("Tox=14A"));
    }

    #[test]
    fn delay_sweep_endpoints() {
        let s = study();
        let sweep = s.delay_sweep(3);
        assert_eq!(sweep.len(), 3);
        assert!((sweep[0].0 - s.circuit().fastest_access_time().0).abs() < 1e-18);
        assert!((sweep[2].0 - s.circuit().slowest_access_time().0).abs() < 1e-18);
        assert_eq!(s.delay_sweep(1).len(), 1);
    }

    #[test]
    fn ablation_vth_beats_tox() {
        // At mid-range deadlines the Vth-only optimiser (with conservative
        // Tox) must beat the Tox-only optimiser — the paper's knob
        // asymmetry.
        let s = study();
        let deadlines = s.delay_sweep(6);
        let t = s.knob_ablation(&deadlines[2..5]);
        assert!(!t.is_empty());
        for row in t.rows() {
            let tox_only: f64 = row[1].parse().unwrap_or(f64::INFINITY);
            let vth_hi: f64 = row[3].parse().unwrap_or(f64::INFINITY);
            assert!(vth_hi <= tox_only * 1.05, "Vth knob not better: {row:?}");
        }
    }

    #[test]
    fn scheme_comparison_table_well_formed() {
        let s = study();
        let t = s.scheme_comparison(&s.delay_sweep(4)[1..]);
        assert!(!t.is_empty());
        assert_eq!(t.headers().len(), 6);
    }

    #[test]
    fn paper_16kb_constructs() {
        let s = SingleCacheStudy::paper_16kb().unwrap();
        assert_eq!(s.circuit().config().size_bytes(), 16 * 1024);
        assert_eq!(s.grid().len(), 279);
    }
}
