//! The entire processor memory system: L1 + L2 + main memory energy, and
//! the (`Tox`, `Vth`) tuple problem of Figure 2.
//!
//! Total energy per CPU reference:
//!
//! `E = E_dyn(L1) + m1·E_dyn(L2) + m1·m2·E_mem + P_leak·T_AMAT`
//!
//! Leakage is integrated over the AMAT *target* interval, which makes the
//! objective additive per component group and lets the exact merge solver
//! apply (the achieved AMAT equals the target at the optimum up to grid
//! resolution, so the approximation is second-order; see `DESIGN.md`).

use crate::amat::{memory_energy, memory_floor, MainMemory};
use crate::eval::{Evaluator, HierarchySpec};
use crate::groups::{CostKind, Scheme};
use crate::report::{cell, Series, Table};
use crate::StudyError;
use nm_archsim::PairStats;
use nm_device::units::Seconds;
use nm_device::{KnobGrid, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig};
use nm_opt::tuple::optimize_with_tuple_counts;
use nm_sweep::ParallelSweep;
use serde::{Deserialize, Serialize};

/// A (`nTox`, `nVth`) tuple from Figure 2's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TupleCounts {
    /// Number of distinct oxide thicknesses available.
    pub n_tox: usize,
    /// Number of distinct threshold voltages available.
    pub n_vth: usize,
}

impl TupleCounts {
    /// The five tuples plotted in the paper's Figure 2.
    pub const FIGURE2: [TupleCounts; 5] = [
        TupleCounts { n_tox: 2, n_vth: 2 },
        TupleCounts { n_tox: 2, n_vth: 3 },
        TupleCounts { n_tox: 3, n_vth: 2 },
        TupleCounts { n_tox: 2, n_vth: 1 },
        TupleCounts { n_tox: 1, n_vth: 2 },
    ];

    /// Figure 2 legend label, e.g. `"2 Tox + 2 Vth"`.
    pub fn label(self) -> String {
        format!("{} Tox + {} Vth", self.n_tox, self.n_vth)
    }
}

/// The AMAT band `[min, max]` trimmed 2 % inside both endpoints. When the
/// band is narrower than the trim (`lo > hi` after trimming), both bounds
/// clamp to the untrimmed midpoint so the sweep never reverses.
fn trimmed_band(min: f64, max: f64) -> (f64, f64) {
    let lo = min * 1.02;
    let hi = max * 0.98;
    if lo > hi {
        let mid = (min + max) / 2.0;
        (mid, mid)
    } else {
        (lo, hi)
    }
}

/// The Figure 2 study: one (L1, L2) configuration, its miss-rate
/// statistics, a coarse knob grid and the memory endpoint.
#[derive(Debug, Clone)]
pub struct MemorySystemStudy {
    l1: CacheCircuit,
    l2: CacheCircuit,
    stats: PairStats,
    eval: Evaluator,
    memory: MainMemory,
}

impl MemorySystemStudy {
    /// Assembles the study.
    ///
    /// # Errors
    ///
    /// Propagates impossible cache geometry.
    pub fn new(
        l1_bytes: u64,
        l2_bytes: u64,
        stats: PairStats,
        tech: &TechnologyNode,
        grid: KnobGrid,
        memory: MainMemory,
    ) -> Result<Self, StudyError> {
        Ok(MemorySystemStudy {
            l1: CacheCircuit::new(CacheConfig::new(l1_bytes, 64, 4)?, tech),
            l2: CacheCircuit::new(CacheConfig::new(l2_bytes, 64, 8)?, tech),
            stats,
            eval: Evaluator::new(grid),
            memory,
        })
    }

    /// The system as a two-level [`HierarchySpec`] (Scheme II in each
    /// cache, giving the four groups L1 cells, L1 periphery, L2 cells, L2
    /// periphery) priced for an AMAT target `t_ref` (leakage energy
    /// integrates over it).
    fn system_spec(&self, t_ref: Seconds) -> HierarchySpec {
        // Miss-chain delay weights [1, m1]; bit-identical to the old
        // hand-passed constants.
        let weights = HierarchySpec::amat_weights(&[self.stats.l1_miss_rate]);
        let l1_cost = CostKind::Energy {
            t_ref: t_ref.0,
            access_rate: 1.0,
            write_fraction: self.stats.write_fraction,
        };
        // L2 dynamic energy is paid by demand misses and by L1 dirty
        // writebacks (both per CPU reference); the writeback share of the
        // L2 stream arrives as stores.
        let l2_rate = self.stats.l1_miss_rate + self.stats.l1_writeback_rate;
        let l2_cost = CostKind::Energy {
            t_ref: t_ref.0,
            access_rate: l2_rate,
            write_fraction: if l2_rate == 0.0 {
                0.0
            } else {
                self.stats.l1_writeback_rate / l2_rate
            },
        };
        HierarchySpec::new()
            .level("L1", self.l1.clone(), Scheme::Split, weights[0], l1_cost)
            .level("L2", self.l2.clone(), Scheme::Split, weights[1], l2_cost)
    }

    /// The knob-independent AMAT floor (`m1·m2·t_mem`).
    pub fn amat_floor(&self) -> Seconds {
        memory_floor(
            self.stats.l1_miss_rate,
            self.stats.l2_local_miss_rate,
            self.memory.access_time,
        )
    }

    /// The fastest achievable AMAT (everything at the aggressive corner).
    pub fn min_amat(&self) -> Seconds {
        self.amat_floor()
            + self.l1.fastest_access_time()
            + self.l2.fastest_access_time() * self.stats.l1_miss_rate
    }

    /// The slowest useful AMAT (everything at the conservative corner).
    pub fn max_amat(&self) -> Seconds {
        self.amat_floor()
            + self.l1.slowest_access_time()
            + self.l2.slowest_access_time() * self.stats.l1_miss_rate
    }

    /// Evenly spaced AMAT targets across the feasible range, trimmed a
    /// hair inside both endpoints.
    ///
    /// `steps == 0` returns an empty sweep (consistent with
    /// `deadline_sweep` in `nm_opt::constraint`). When the feasible band
    /// is narrower than the ±2 % trim, the trimmed bounds would cross;
    /// the sweep collapses to the band midpoint instead of walking a
    /// reversed range.
    pub fn amat_sweep(&self, steps: usize) -> Vec<Seconds> {
        if steps == 0 {
            return Vec::new();
        }
        let (lo, hi) = trimmed_band(self.min_amat().0, self.max_amat().0);
        if steps == 1 {
            return vec![Seconds(hi)];
        }
        (0..steps)
            .map(|i| Seconds(lo + (hi - lo) * i as f64 / (steps - 1) as f64))
            .collect()
    }

    /// **E6 / Figure 2** — total energy (pJ) versus AMAT (ps), one series
    /// per tuple restriction.
    ///
    /// For every AMAT target the optimiser may pick *any* `n_vth` distinct
    /// threshold voltages and `n_tox` distinct oxide thicknesses from the
    /// grid, shared across all four system groups, minimising total
    /// energy.
    pub fn tuple_curves(&self, tuples: &[TupleCounts], targets: &[Seconds]) -> Vec<Series> {
        let grid = self.eval.grid();
        let vth_axis: Vec<f64> = grid.vth_values().iter().map(|v| v.0).collect();
        let tox_axis: Vec<f64> = grid.tox_values().iter().map(|t| t.0).collect();
        let e_mem = memory_energy(
            self.stats.l1_miss_rate,
            self.stats.l2_local_miss_rate,
            self.memory.access_energy,
        );
        let floor = self.amat_floor();

        // The metric surfaces behind every (tuple, target) cell are the
        // same eight (circuit, component) passes — only the `t_ref`
        // pricing differs. Build them once, up front, so the fan-out
        // below re-prices cached surfaces instead of re-analysing the
        // grid per cell (and never starts a nested sweep).
        if let Some(&first) = targets.first() {
            self.eval.ensure_surfaces(&self.system_spec(first));
        }

        // Every (tuple, target) cell is independent: flatten the grid into
        // one bounded sweep so large target axes cannot fan out into
        // thread-per-item work.
        let jobs: Vec<(usize, Seconds)> = (0..tuples.len())
            .flat_map(|ti| targets.iter().map(move |&t| (ti, t)))
            .collect();
        let points: Vec<Option<(f64, f64)>> =
            ParallelSweep::new()
                .labeled("tuple-curves")
                .map(&jobs, |&(ti, target)| {
                    let tc = tuples[ti];
                    let budget = target.0 - floor.0;
                    if budget <= 0.0 {
                        return None;
                    }
                    let groups = self.eval.groups(&self.system_spec(target));
                    let sols = optimize_with_tuple_counts(
                        &groups,
                        &vth_axis,
                        &tox_axis,
                        tc.n_vth,
                        tc.n_tox,
                        &[budget],
                    );
                    sols[0]
                        .as_ref()
                        .map(|sol| (target.picos(), (sol.point.cost + e_mem.0) * 1e12))
                });

        tuples
            .iter()
            .enumerate()
            .map(|(ti, &tc)| {
                let mut series = Series::new(tc.label());
                series.points = points[ti * targets.len()..(ti + 1) * targets.len()]
                    .iter()
                    .filter_map(|p| *p)
                    .collect();
                series
            })
            .collect()
    }

    /// Renders [`tuple_curves`](Self::tuple_curves) output as a table.
    pub fn tuple_table(&self, tuples: &[TupleCounts], targets: &[Seconds]) -> Table {
        let series = self.tuple_curves(tuples, targets);
        let mut t = Table::new(
            "Figure 2: (Tox, Vth) tuple problem — total energy vs AMAT",
            &["tuple", "AMAT (ps)", "energy (pJ)"],
        );
        for s in &series {
            for &(x, y) in &s.points {
                t.push_row(vec![s.label.clone(), cell(x, 0), cell(y, 2)]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn stats() -> PairStats {
        // Representative mid-range rates (a real table is exercised in the
        // integration tests; unit tests pin the rates for speed and
        // determinism).
        PairStats {
            l1_miss_rate: 0.05,
            l2_local_miss_rate: 0.25,
            l1_writeback_rate: 0.01,
            write_fraction: 0.3,
            measured: 1,
        }
    }

    fn study() -> &'static MemorySystemStudy {
        static STUDY: OnceLock<MemorySystemStudy> = OnceLock::new();
        STUDY.get_or_init(|| {
            MemorySystemStudy::new(
                16 * 1024,
                1024 * 1024,
                stats(),
                &TechnologyNode::bptm65(),
                KnobGrid::coarse(),
                MainMemory::default(),
            )
            .unwrap()
        })
    }

    #[test]
    fn amat_range_is_sane() {
        let s = study();
        assert!(s.min_amat().0 < s.max_amat().0);
        assert!(s.amat_floor().0 > 0.0);
        let sweep = s.amat_sweep(5);
        assert_eq!(sweep.len(), 5);
        assert!(sweep[0].0 < sweep[4].0);
    }

    #[test]
    fn amat_sweep_zero_steps_is_empty() {
        // Consistent with `deadline_sweep` in nm-opt: no steps, no targets.
        assert!(study().amat_sweep(0).is_empty());
    }

    #[test]
    fn amat_sweep_clamps_when_band_narrower_than_trim() {
        // A band narrower than the ±2 % trim would cross after trimming;
        // it must collapse to the midpoint, never reverse.
        let (lo, hi) = trimmed_band(1.00e-9, 1.01e-9);
        assert_eq!(lo, hi);
        assert!((lo - 1.005e-9).abs() < 1e-15);
        // A comfortably wide band trims normally and stays ordered.
        let (lo, hi) = trimmed_band(1.0e-9, 2.0e-9);
        assert!(lo < hi);
        assert!(lo > 1.0e-9 && hi < 2.0e-9);
        // The real study's sweep is non-decreasing and inside the band.
        let s = study();
        for steps in [1, 2, 5] {
            let sweep = s.amat_sweep(steps);
            assert_eq!(sweep.len(), steps);
            for w in sweep.windows(2) {
                assert!(w[0].0 <= w[1].0, "reversed sweep: {sweep:?}");
            }
            for t in &sweep {
                assert!(t.0 >= s.min_amat().0 && t.0 <= s.max_amat().0);
            }
        }
    }

    #[test]
    fn energy_decreases_with_relaxed_amat() {
        // Each tuple's curve must slope downward: more AMAT slack means
        // more conservative knobs and less leakage energy.
        let s = study();
        let targets = s.amat_sweep(4);
        let curves = s.tuple_curves(&[TupleCounts { n_tox: 2, n_vth: 2 }], &targets);
        let pts = &curves[0].points;
        assert!(pts.len() >= 3, "too few feasible targets: {pts:?}");
        assert!(
            pts.last().unwrap().1 < pts.first().unwrap().1,
            "curve not decreasing: {pts:?}"
        );
    }

    #[test]
    fn more_values_never_hurt_energy() {
        let s = study();
        let targets = s.amat_sweep(3);
        let curves = s.tuple_curves(
            &[
                TupleCounts { n_tox: 2, n_vth: 1 },
                TupleCounts { n_tox: 2, n_vth: 2 },
                TupleCounts { n_tox: 2, n_vth: 3 },
            ],
            &targets,
        );
        for (a, b) in curves.iter().zip(curves.iter().skip(1)) {
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert!(
                    pb.1 <= pa.1 + 1e-9,
                    "{} worse than {} at {} ps",
                    b.label,
                    a.label,
                    pa.0
                );
            }
        }
    }

    #[test]
    fn vth_is_the_better_knob_in_figure2() {
        // 1 Tox + 2 Vth outperforms 2 Tox + 1 Vth — the paper's closing
        // observation.
        let s = study();
        let targets = s.amat_sweep(4);
        let curves = s.tuple_curves(
            &[
                TupleCounts { n_tox: 2, n_vth: 1 },
                TupleCounts { n_tox: 1, n_vth: 2 },
            ],
            &targets,
        );
        let two_tox = &curves[0].points;
        let two_vth = &curves[1].points;
        let mut wins = 0;
        let mut total = 0;
        for (a, b) in two_tox.iter().zip(two_vth) {
            assert!((a.0 - b.0).abs() < 1e-6);
            total += 1;
            if b.1 <= a.1 + 1e-9 {
                wins += 1;
            }
        }
        assert!(total >= 3);
        assert!(wins * 2 > total, "1Tox+2Vth won only {wins}/{total} points");
    }

    #[test]
    fn tuple_table_renders() {
        let s = study();
        let t = s.tuple_table(&[TupleCounts { n_tox: 1, n_vth: 2 }], &s.amat_sweep(3));
        assert!(!t.is_empty());
    }

    #[test]
    fn figure2_labels() {
        assert_eq!(TupleCounts { n_tox: 2, n_vth: 3 }.label(), "2 Tox + 3 Vth");
        assert_eq!(TupleCounts::FIGURE2.len(), 5);
    }
}
