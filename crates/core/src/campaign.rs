//! Crash-resumable cross-product study campaigns.
//!
//! A [`Campaign`] sweeps the full cross product of L1 size × L2 size ×
//! assignment scheme × L2 technology × temperature, optimising each cell
//! like the Section 5 two-level experiments. Long campaigns survive
//! crashes:
//!
//! * every completed cell is recorded in a checksummed checkpoint file,
//!   rewritten atomically (temp file + fsync + rename — never an
//!   in-place truncate) every [`CampaignConfig::checkpoint_every`]
//!   cells;
//! * on restart the checkpoint is validated (magic, version, whole-file
//!   FNV, config fingerprint) and already-computed cells are skipped;
//! * a cell whose computation fails is recorded as *failed* — one faulty
//!   point fails its cell, never the campaign (the sweep executor's
//!   panic containment surfaces here as a per-cell
//!   [`StudyError::WorkerPanic`]);
//! * rows are persisted as their *rendered strings*, so a resumed
//!   campaign's final table is byte-identical to an uninterrupted run by
//!   construction.
//!
//! The engine-level [`nm_store::Store`] rides underneath as a
//! write-through tier (see [`Evaluator::with_store`]): resumed campaigns
//! also skip recomputing surfaces and fronts that earlier runs persisted.

use crate::amat::{memory_floor, MainMemory};
use crate::eval::{Evaluator, HierarchySpec};
use crate::groups::{CostKind, Scheme};
use crate::report::{cell, Table};
use crate::twolevel::{BLOCK_BYTES, L1_WAYS, L2_WAYS, STANDARD_SUITES};
use crate::StudyError;
use nm_archsim::MissRateTable;
use nm_device::units::{Kelvin, Seconds};
use nm_device::{KnobGrid, TechProfile, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig};
use nm_opt::objective::Deadline;
use nm_store::{fnv1a_64, write_atomic, KeyHasher, Store, StoreError};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Checkpoint file magic: `NMCK`.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"NMCK";

/// Checkpoint format version. Bump on any layout change — an old file is
/// rejected as incompatible rather than misread.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A fatal campaign error. Per-cell failures are *not* errors — they are
/// recorded in the table and the campaign continues.
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// A configuration-level study error before any cell ran (e.g. the
    /// miss-rate table could not cover the requested sizes).
    Study(StudyError),
    /// A checkpoint could not be written (resumability is the campaign's
    /// contract, so this is fatal — unlike the best-effort store tier).
    Store(StoreError),
    /// The checkpoint file exists but is corrupt or structurally invalid.
    Checkpoint {
        /// The offending file.
        path: PathBuf,
        /// What failed to parse or validate.
        detail: String,
    },
    /// The checkpoint was written by a different campaign configuration.
    Mismatch {
        /// The offending file.
        path: PathBuf,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Study(e) => write!(f, "campaign setup: {e}"),
            CampaignError::Store(e) => write!(f, "campaign checkpoint: {e}"),
            CampaignError::Checkpoint { path, detail } => {
                write!(
                    f,
                    "corrupt campaign checkpoint {}: {detail} \
                     (pass --fresh to discard it and restart)",
                    path.display()
                )
            }
            CampaignError::Mismatch { path } => write!(
                f,
                "checkpoint {} was written by a different campaign \
                 configuration (pass --fresh to discard it, or rerun \
                 with the original axes)",
                path.display()
            ),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Study(e) => Some(e),
            CampaignError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StudyError> for CampaignError {
    fn from(e: StudyError) -> Self {
        CampaignError::Study(e)
    }
}

impl From<StoreError> for CampaignError {
    fn from(e: StoreError) -> Self {
        CampaignError::Store(e)
    }
}

/// The campaign's axes and policy knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// L1 size axis (bytes).
    pub l1_sizes: Vec<u64>,
    /// L2 size axis (bytes).
    pub l2_sizes: Vec<u64>,
    /// Knob-assignment schemes to compare.
    pub schemes: Vec<Scheme>,
    /// L2 technology candidates (the L1 stays SRAM).
    pub l2_techs: Vec<TechProfile>,
    /// Operating temperatures (°C).
    pub temperatures_c: Vec<f64>,
    /// Fractional AMAT slack over each cell's fastest corner.
    pub slack: f64,
    /// Shorter architectural simulations and the coarse knob grid
    /// (tests/smoke runs).
    pub quick: bool,
    /// Cells computed between checkpoint rewrites. The final state is
    /// always checkpointed, so this only bounds lost work on a crash.
    pub checkpoint_every: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            l1_sizes: vec![16 * 1024, 32 * 1024],
            l2_sizes: vec![256 * 1024, 1024 * 1024],
            schemes: vec![Scheme::Uniform, Scheme::Split],
            l2_techs: vec![TechProfile::sram()],
            temperatures_c: vec![80.0],
            slack: 0.15,
            quick: false,
            checkpoint_every: 8,
        }
    }
}

/// One cell of the cross product.
#[derive(Debug, Clone, PartialEq)]
struct Cell {
    l1_bytes: u64,
    l2_bytes: u64,
    scheme: Scheme,
    tech: TechProfile,
    temp_c: f64,
}

impl CampaignConfig {
    /// Total number of cells in the cross product.
    pub fn cell_count(&self) -> usize {
        self.l1_sizes.len()
            * self.l2_sizes.len()
            * self.schemes.len()
            * self.l2_techs.len()
            * self.temperatures_c.len()
    }

    /// `true` when at least one axis is empty, making the campaign a
    /// no-op.
    pub fn is_empty(&self) -> bool {
        self.cell_count() == 0
    }

    /// The cell at deterministic index `idx` (row-major over the axes in
    /// declaration order; temperature varies fastest).
    fn cell(&self, idx: usize) -> Cell {
        let nt = self.temperatures_c.len();
        let nk = self.l2_techs.len();
        let ns = self.schemes.len();
        let n2 = self.l2_sizes.len();
        let temp = idx % nt;
        let tech = (idx / nt) % nk;
        let scheme = (idx / (nt * nk)) % ns;
        let l2 = (idx / (nt * nk * ns)) % n2;
        let l1 = idx / (nt * nk * ns * n2);
        Cell {
            l1_bytes: self.l1_sizes[l1],
            l2_bytes: self.l2_sizes[l2],
            scheme: self.schemes[scheme],
            tech: self.l2_techs[tech].clone(),
            temp_c: self.temperatures_c[temp],
        }
    }

    /// A content fingerprint of everything that determines cell
    /// *results*. Resuming under a different fingerprint is refused —
    /// stale checkpoints are structurally impossible. Checkpoint cadence
    /// is deliberately excluded: it changes durability, not results.
    pub fn fingerprint(&self) -> u128 {
        let mut h = KeyHasher::new();
        h.push_str("nmcache.campaign");
        h.push_u64(u64::from(CHECKPOINT_VERSION));
        h.push_u64(self.l1_sizes.len() as u64);
        for &s in &self.l1_sizes {
            h.push_u64(s);
        }
        h.push_u64(self.l2_sizes.len() as u64);
        for &s in &self.l2_sizes {
            h.push_u64(s);
        }
        h.push_u64(self.schemes.len() as u64);
        for s in &self.schemes {
            h.push_str(&format!("{s:?}"));
        }
        h.push_u64(self.l2_techs.len() as u64);
        for t in &self.l2_techs {
            h.push_str(&format!("{t:?}"));
        }
        h.push_u64(self.temperatures_c.len() as u64);
        for &t in &self.temperatures_c {
            h.push_f64_bits(t);
        }
        h.push_f64_bits(self.slack);
        h.push_u64(u64::from(self.quick));
        h.finish()
    }
}

/// What one cell produced: a rendered table row, or a contained failure.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CellOutcome {
    /// The rendered row cells, exactly as they will appear in the table.
    Row(Vec<String>),
    /// The cell's error message (the campaign continued past it).
    Failed(String),
}

/// A finished (or budget-limited) campaign run.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Total cells in the cross product.
    pub total: usize,
    /// Cells computed by *this* run.
    pub computed: usize,
    /// Cells skipped because the checkpoint already held them.
    pub resumed: usize,
    /// Failed cells across the whole table (resumed + this run).
    pub failed: usize,
    /// `true` when every cell is in the table.
    pub complete: bool,
    cells: BTreeMap<u32, CellOutcome>,
}

/// The campaign table's column headers.
const HEADERS: [&str; 10] = [
    "L1 (KB)",
    "L2 (KB)",
    "scheme",
    "L2 tech",
    "T (C)",
    "m1",
    "m2",
    "AMAT (ps)",
    "total leak (mW)",
    "note",
];

impl CampaignOutcome {
    /// Renders the table (cells in deterministic index order). Rows come
    /// verbatim from the per-cell records, so a resumed campaign renders
    /// byte-identically to an uninterrupted one.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Campaign: L1 x L2 x scheme x technology x temperature",
            &HEADERS,
        );
        for outcome in self.cells.values() {
            match outcome {
                CellOutcome::Row(cols) => t.push_row(cols.clone()),
                CellOutcome::Failed(_) => {}
            }
        }
        t
    }

    /// `(cell index, message)` for every failed cell, in index order.
    pub fn failures(&self) -> Vec<(u32, String)> {
        self.cells
            .iter()
            .filter_map(|(i, o)| match o {
                CellOutcome::Failed(m) => Some((*i, m.clone())),
                CellOutcome::Row(_) => None,
            })
            .collect()
    }
}

/// The resumable cross-product campaign runner.
///
/// Construction simulates the miss-rate table once (the slow,
/// architectural part — knob- and temperature-independent); [`run`]
/// then prices cells against it, checkpointing as it goes.
///
/// [`run`]: Campaign::run
#[derive(Debug)]
pub struct Campaign {
    config: CampaignConfig,
    eval: Evaluator,
    missrates: MissRateTable,
    memory: MainMemory,
}

impl Campaign {
    /// Builds a campaign, simulating its miss-rate table. `store` arms
    /// the evaluator's write-through persistence tier; `None` runs
    /// memory-only (checkpoints still work — they are independent of the
    /// store).
    pub fn new(config: CampaignConfig, store: Option<Arc<Store>>) -> Self {
        let (warmup, measure) = if config.quick {
            (50_000, 100_000)
        } else {
            (300_000, 600_000)
        };
        let missrates = MissRateTable::build(
            &config.l1_sizes,
            &config.l2_sizes,
            &STANDARD_SUITES,
            2005,
            warmup,
            measure,
        );
        let grid = if config.quick {
            KnobGrid::coarse()
        } else {
            KnobGrid::paper()
        };
        let eval = match store {
            Some(s) => Evaluator::with_store(grid, s),
            None => Evaluator::new(grid),
        };
        Campaign {
            config,
            eval,
            missrates,
            memory: MainMemory::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The evaluator behind the campaign (its counters expose how much
    /// the persistence tier saved).
    pub fn evaluator(&self) -> &Evaluator {
        &self.eval
    }

    /// Runs the campaign against `checkpoint`, resuming from it when it
    /// exists (unless `fresh`). `max_cells` bounds how many *new* cells
    /// this run computes — the checkpoint is still written, so a later
    /// run picks up where this one stopped (deterministic interruption
    /// for tests and budgeted runs).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] / [`CampaignError::Mismatch`] when
    /// the existing checkpoint cannot be trusted, and
    /// [`CampaignError::Store`] when a checkpoint rewrite fails. Per-cell
    /// study failures are recorded in the table, not raised.
    pub fn run(
        &self,
        checkpoint: &Path,
        fresh: bool,
        max_cells: Option<usize>,
    ) -> Result<CampaignOutcome, CampaignError> {
        let total = self.config.cell_count();
        let fingerprint = self.config.fingerprint();
        nm_telemetry::counter_add(crate::names::CAMPAIGN_CELLS_TOTAL, total as u64);

        let mut cells = if fresh {
            BTreeMap::new()
        } else {
            load_checkpoint(checkpoint, fingerprint)?
        };
        // A checkpoint may outlive a shrunk axis only via --fresh, and a
        // fingerprint match implies identical axes — but stay defensive:
        // drop any record beyond the cross product rather than render it.
        cells.retain(|&i, _| (i as usize) < total);
        let resumed = cells.len();
        nm_telemetry::counter_add(crate::names::CAMPAIGN_CELLS_RESUMED, resumed as u64);

        let mut computed = 0usize;
        let mut since_checkpoint = 0usize;
        for idx in 0..total {
            let key = idx as u32;
            if cells.contains_key(&key) {
                continue;
            }
            if let Some(budget) = max_cells {
                if computed >= budget {
                    break;
                }
            }
            let clock = nm_telemetry::Stopwatch::start();
            let outcome = match self.compute_cell(idx) {
                Ok(row) => {
                    nm_telemetry::counter_inc(crate::names::CAMPAIGN_CELLS_COMPUTED);
                    CellOutcome::Row(row)
                }
                Err(e) => {
                    nm_telemetry::counter_inc(crate::names::CAMPAIGN_CELLS_FAILED);
                    CellOutcome::Failed(e.to_string())
                }
            };
            clock.observe(crate::names::CAMPAIGN_CELL_LATENCY);
            cells.insert(key, outcome);
            computed += 1;
            since_checkpoint += 1;
            if since_checkpoint >= self.config.checkpoint_every.max(1) {
                write_checkpoint(checkpoint, fingerprint, &cells)?;
                since_checkpoint = 0;
            }
        }
        if since_checkpoint > 0 || (computed == 0 && resumed == 0 && total > 0) {
            write_checkpoint(checkpoint, fingerprint, &cells)?;
        }
        if let Some(store) = self.eval.store() {
            store.sync()?;
        }

        let failed = cells
            .values()
            .filter(|o| matches!(o, CellOutcome::Failed(_)))
            .count();
        Ok(CampaignOutcome {
            total,
            computed,
            resumed,
            failed,
            complete: cells.len() == total,
            cells,
        })
    }

    /// Optimises one cell and renders its row. Any failure here is
    /// contained by the caller — it poisons the cell, not the campaign.
    fn compute_cell(&self, idx: usize) -> Result<Vec<String>, StudyError> {
        let c = self.config.cell(idx);
        let stats = self.missrates.get(c.l1_bytes, c.l2_bytes).copied().ok_or(
            StudyError::MissingMissRates {
                l1_bytes: c.l1_bytes,
                l2_bytes: c.l2_bytes,
            },
        )?;
        let node = TechnologyNode::bptm65().at_temperature(Kelvin::from_celsius(c.temp_c));
        let l1 = CacheCircuit::new(CacheConfig::new(c.l1_bytes, BLOCK_BYTES, L1_WAYS)?, &node);
        let l2 = CacheCircuit::with_technology(
            CacheConfig::new(c.l2_bytes, BLOCK_BYTES, L2_WAYS)?,
            &node,
            c.tech.clone(),
        );
        let weights = HierarchySpec::try_amat_weights(&[stats.l1_miss_rate])?;
        let spec = HierarchySpec::new()
            .level("L1", l1, c.scheme, weights[0], CostKind::LeakagePower)
            .level("L2", l2, c.scheme, weights[1], CostKind::LeakagePower);
        let floor = memory_floor(
            stats.l1_miss_rate,
            stats.l2_local_miss_rate,
            self.memory.access_time,
        );
        // The cell's own iso-AMAT target: slack over its fastest corner
        // (every level fully aggressive), like the E8 comparison.
        let min_weighted: f64 = spec
            .levels()
            .iter()
            .map(|l| l.circuit().fastest_access_time().0 * l.delay_weight())
            .sum();
        let budget = (floor.0 + min_weighted) * (1.0 + self.config.slack) - floor.0;

        let mut row = vec![
            cell(c.l1_bytes as f64 / 1024.0, 0),
            cell(c.l2_bytes as f64 / 1024.0, 0),
            c.scheme.to_string(),
            c.tech.name.clone(),
            cell(c.temp_c, 0),
            cell(stats.l1_miss_rate, 4),
            cell(stats.l2_local_miss_rate, 4),
        ];
        let sol = if budget > 0.0 {
            self.eval.try_solve(&spec, &Deadline(budget))?
        } else {
            None
        };
        match sol {
            Some(s) => {
                row.push(cell(Seconds(floor.0 + s.delay).picos(), 0));
                row.push(cell(s.cost * 1e3, 3));
                row.push("-".to_owned());
            }
            None => {
                row.push("infeasible".to_owned());
                row.push("-".to_owned());
                row.push("-".to_owned());
            }
        }
        Ok(row)
    }
}

// ---------------------------------------------------------------------
// Checkpoint encoding
// ---------------------------------------------------------------------
//
// Layout (all integers little-endian):
//
// ```text
// magic "NMCK" | version u32 | fingerprint u128 | n u32
// n × ( index u32 | status u8 | body )
//   status 0 (row):    ncols u32, ncols × (len u32 | utf8 bytes)
//   status 1 (failed): len u32 | utf8 bytes
// fnv1a_64 over everything above | u64
// ```
//
// The whole-file checksum makes torn or bit-flipped checkpoints
// detectable; writes go through [`nm_store::write_atomic`], so a crash
// mid-rewrite leaves the previous complete checkpoint in place.

fn push_str_field(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn encode_checkpoint(fingerprint: u128, cells: &BTreeMap<u32, CellOutcome>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + cells.len() * 96);
    buf.extend_from_slice(&CHECKPOINT_MAGIC);
    buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    buf.extend_from_slice(&fingerprint.to_le_bytes());
    buf.extend_from_slice(&(cells.len() as u32).to_le_bytes());
    for (&idx, outcome) in cells {
        buf.extend_from_slice(&idx.to_le_bytes());
        match outcome {
            CellOutcome::Row(cols) => {
                buf.push(0);
                buf.extend_from_slice(&(cols.len() as u32).to_le_bytes());
                for col in cols {
                    push_str_field(&mut buf, col);
                }
            }
            CellOutcome::Failed(msg) => {
                buf.push(1);
                push_str_field(&mut buf, msg);
            }
        }
    }
    let sum = fnv1a_64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

fn write_checkpoint(
    path: &Path,
    fingerprint: u128,
    cells: &BTreeMap<u32, CellOutcome>,
) -> Result<(), CampaignError> {
    let clock = nm_telemetry::Stopwatch::start();
    let bytes = encode_checkpoint(fingerprint, cells);
    write_atomic(path, &bytes)?;
    nm_telemetry::counter_inc(crate::names::CAMPAIGN_CHECKPOINTS);
    clock.observe(crate::names::CAMPAIGN_CHECKPOINT_SECONDS);
    Ok(())
}

/// A bounds-checked little-endian reader over a checkpoint image.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated at byte {}", self.at))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u128(&mut self) -> Result<u128, String> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| format!("non-UTF-8 string at byte {}", self.at))
    }
}

fn load_checkpoint(
    path: &Path,
    fingerprint: u128,
) -> Result<BTreeMap<u32, CellOutcome>, CampaignError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => {
            return Err(CampaignError::Store(StoreError::io(
                format!("read checkpoint {}", path.display()),
                e,
            )))
        }
    };
    parse_checkpoint(&bytes, fingerprint).map_err(|detail| match detail {
        ParseFailure::Corrupt(detail) => CampaignError::Checkpoint {
            path: path.to_path_buf(),
            detail,
        },
        ParseFailure::Mismatch => CampaignError::Mismatch {
            path: path.to_path_buf(),
        },
    })
}

enum ParseFailure {
    Corrupt(String),
    Mismatch,
}

fn parse_checkpoint(
    bytes: &[u8],
    fingerprint: u128,
) -> Result<BTreeMap<u32, CellOutcome>, ParseFailure> {
    let corrupt = ParseFailure::Corrupt;
    // Validate the whole-file checksum before trusting any length field.
    if bytes.len() < CHECKPOINT_MAGIC.len() + 4 + 16 + 4 + 8 {
        return Err(corrupt(format!("only {} bytes", bytes.len())));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(tail);
    if fnv1a_64(body) != u64::from_le_bytes(sum) {
        return Err(corrupt("whole-file checksum mismatch".to_owned()));
    }
    let mut c = Cursor { bytes: body, at: 0 };
    if c.take(4).map_err(corrupt)? != CHECKPOINT_MAGIC {
        return Err(corrupt("bad magic".to_owned()));
    }
    let version = c.u32().map_err(corrupt)?;
    if version != CHECKPOINT_VERSION {
        return Err(corrupt(format!(
            "format version {version}, this build reads {CHECKPOINT_VERSION}"
        )));
    }
    if c.u128().map_err(corrupt)? != fingerprint {
        return Err(ParseFailure::Mismatch);
    }
    let n = c.u32().map_err(corrupt)?;
    let mut cells = BTreeMap::new();
    for _ in 0..n {
        let idx = c.u32().map_err(corrupt)?;
        let outcome = match c.u8().map_err(corrupt)? {
            0 => {
                let ncols = c.u32().map_err(corrupt)?;
                if ncols as usize != HEADERS.len() {
                    return Err(corrupt(format!(
                        "cell {idx} has {ncols} columns, expected {}",
                        HEADERS.len()
                    )));
                }
                let mut cols = Vec::with_capacity(ncols as usize);
                for _ in 0..ncols {
                    cols.push(c.string().map_err(corrupt)?);
                }
                CellOutcome::Row(cols)
            }
            1 => CellOutcome::Failed(c.string().map_err(corrupt)?),
            other => return Err(corrupt(format!("cell {idx} has unknown status {other}"))),
        };
        if cells.insert(idx, outcome).is_some() {
            return Err(corrupt(format!("cell {idx} recorded twice")));
        }
    }
    if c.at != body.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after {n} cells",
            body.len() - c.at
        )));
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cells() -> BTreeMap<u32, CellOutcome> {
        let mut m = BTreeMap::new();
        m.insert(
            0,
            CellOutcome::Row(HEADERS.iter().map(|h| (*h).to_owned()).collect()),
        );
        m.insert(3, CellOutcome::Failed("boom".to_owned()));
        m
    }

    #[test]
    fn checkpoint_round_trips() {
        let cells = sample_cells();
        let bytes = encode_checkpoint(42, &cells);
        let back = parse_checkpoint(&bytes, 42).unwrap_or_else(|_| panic!("parse"));
        assert_eq!(back, cells);
    }

    #[test]
    fn any_flipped_byte_is_caught() {
        let bytes = encode_checkpoint(42, &sample_cells());
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x20;
            assert!(
                matches!(parse_checkpoint(&bad, 42), Err(ParseFailure::Corrupt(_))),
                "flip at byte {at} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_caught_everywhere() {
        let bytes = encode_checkpoint(7, &sample_cells());
        for len in 0..bytes.len() {
            assert!(
                matches!(
                    parse_checkpoint(&bytes[..len], 7),
                    Err(ParseFailure::Corrupt(_))
                ),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn wrong_fingerprint_is_a_mismatch_not_corruption() {
        let bytes = encode_checkpoint(42, &sample_cells());
        assert!(matches!(
            parse_checkpoint(&bytes, 43),
            Err(ParseFailure::Mismatch)
        ));
    }

    #[test]
    fn cell_indexing_covers_the_cross_product_once() {
        let config = CampaignConfig {
            l1_sizes: vec![4096, 8192],
            l2_sizes: vec![65536, 131072, 262144],
            schemes: vec![Scheme::Uniform, Scheme::Split],
            l2_techs: vec![TechProfile::sram(), TechProfile::edram()],
            temperatures_c: vec![40.0, 80.0, 110.0],
            ..CampaignConfig::default()
        };
        let n = config.cell_count();
        assert_eq!(n, 2 * 3 * 2 * 2 * 3);
        let mut seen = Vec::with_capacity(n);
        for i in 0..n {
            let c = config.cell(i);
            assert!(!seen.contains(&c), "cell {i} repeats {c:?}");
            seen.push(c);
        }
        // Temperature varies fastest, L1 slowest.
        assert_eq!(config.cell(0).temp_c.to_bits(), 40.0f64.to_bits());
        assert_eq!(config.cell(1).temp_c.to_bits(), 80.0f64.to_bits());
        assert_eq!(config.cell(n - 1).l1_bytes, 8192);
    }

    #[test]
    fn fingerprint_tracks_result_relevant_fields_only() {
        let base = CampaignConfig::default();
        let f = base.fingerprint();
        assert_eq!(f, base.clone().fingerprint());
        let mut cadence = base.clone();
        cadence.checkpoint_every = 1;
        assert_eq!(f, cadence.fingerprint(), "cadence must not fork the key");
        let mut slack = base.clone();
        slack.slack = 0.2;
        assert_ne!(f, slack.fingerprint());
        let mut quick = base.clone();
        quick.quick = true;
        assert_ne!(f, quick.fingerprint());
        let mut temps = base;
        temps.temperatures_c = vec![-0.0];
        let mut temps2 = temps.clone();
        temps2.temperatures_c = vec![0.0];
        assert_ne!(
            temps.fingerprint(),
            temps2.fingerprint(),
            "signed zeros are distinct inputs"
        );
    }

    #[test]
    fn missing_checkpoint_loads_empty() {
        let path =
            std::env::temp_dir().join(format!("nm-campaign-missing-{}.nmck", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cells = load_checkpoint(&path, 1).unwrap_or_else(|e| panic!("{e}"));
        assert!(cells.is_empty());
    }
}
