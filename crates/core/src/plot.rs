//! Terminal scatter plots for figure-style results.
//!
//! The bench harness writes CSVs for real plotting; this module renders a
//! quick ASCII view so `nmcache fig1`/`fig2` show the curve *shapes*
//! directly in the terminal.

use crate::report::Series;
use std::fmt::Write as _;

/// Glyphs assigned to series, in order.
const GLYPHS: [char; 8] = ['o', 'x', '+', '*', '#', '@', '%', '&'];

/// Renders series as an ASCII scatter plot of the given character size.
///
/// Points from different series landing on the same cell show the glyph
/// of the *later* series (curves are usually separated enough for this
/// not to matter). Returns an empty string when no series has points.
///
/// ```
/// use nm_cache_core::plot::ascii_plot;
/// use nm_cache_core::report::Series;
///
/// let mut s = Series::new("demo");
/// s.points = vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)];
/// let art = ascii_plot(&[s], 40, 12, "x", "y");
/// assert!(art.contains("demo"));
/// assert!(art.contains('o'));
/// ```
pub fn ascii_plot(
    series: &[Series],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    let width = width.max(16);
    let height = height.max(6);
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if points.is_empty() {
        return String::new();
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if x_hi <= x_lo {
        x_hi = x_lo + 1.0;
    }
    if y_hi <= y_lo {
        y_hi = y_lo + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{y_label} (top = {y_hi:.3}, bottom = {y_lo:.3})");
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    let _ = writeln!(out, " {x_label}: {x_lo:.1} .. {x_hi:.1}");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "   {} {}", GLYPHS[si % GLYPHS.len()], s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(label: &str, pts: &[(f64, f64)]) -> Series {
        let mut s = Series::new(label);
        s.points = pts.to_vec();
        s
    }

    #[test]
    fn empty_input_renders_nothing() {
        assert_eq!(ascii_plot(&[], 40, 10, "x", "y"), "");
        assert_eq!(ascii_plot(&[Series::new("e")], 40, 10, "x", "y"), "");
    }

    #[test]
    fn plot_contains_axes_labels_and_legend() {
        let s = series("alpha", &[(0.0, 1.0), (10.0, 5.0)]);
        let art = ascii_plot(&[s], 40, 10, "time", "power");
        assert!(art.contains("time"));
        assert!(art.contains("power"));
        assert!(art.contains("alpha"));
        assert!(art.contains('o'));
    }

    #[test]
    fn corners_map_to_extremes() {
        let s = series("c", &[(0.0, 0.0), (1.0, 1.0)]);
        let art = ascii_plot(&[s], 20, 6, "x", "y");
        let rows: Vec<&str> = art.lines().collect();
        // First grid row (index 1 after the header) holds the max-y point.
        assert!(rows[1].ends_with('o'), "{art}");
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let a = series("a", &[(0.0, 0.0)]);
        let b = series("b", &[(1.0, 1.0)]);
        let art = ascii_plot(&[a, b], 30, 8, "x", "y");
        assert!(art.contains('o') && art.contains('x'), "{art}");
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let s = series("flat", &[(5.0, 3.0), (5.0, 3.0)]);
        let art = ascii_plot(&[s], 30, 8, "x", "y");
        assert!(art.contains("flat"));
    }
}
