//! Average memory access time and the main-memory endpoint.
//!
//! `AMAT = t_L1 + m1·(t_L2 + m2·t_mem)` — "the AMAT is a function of both
//! the cache miss rate and access (hit) time" (paper, Section 5).

use nm_device::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

/// Main-memory timing and energy endpoint for the system studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MainMemory {
    /// Access latency.
    pub access_time: Seconds,
    /// Energy per access (row activation + burst).
    pub access_energy: Joules,
}

impl MainMemory {
    /// A paper-era DDR-class part: 45 ns random access, 2 nJ per access.
    pub fn ddr_2005() -> Self {
        MainMemory {
            access_time: Seconds::from_nanos(45.0),
            access_energy: Joules::from_nanos(2.0),
        }
    }
}

impl Default for MainMemory {
    fn default() -> Self {
        Self::ddr_2005()
    }
}

/// Inputs to the AMAT formula.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmatInputs {
    /// L1 hit (access) time.
    pub l1_time: Seconds,
    /// L2 hit (access) time.
    pub l2_time: Seconds,
    /// Main-memory access time.
    pub mem_time: Seconds,
    /// L1 miss rate per CPU reference.
    pub l1_miss_rate: f64,
    /// Local L2 miss rate per L2 probe.
    pub l2_local_miss_rate: f64,
}

/// Average memory access time.
///
/// ```
/// use nm_cache_core::amat::{amat, AmatInputs};
/// use nm_device::units::Seconds;
///
/// let t = amat(AmatInputs {
///     l1_time: Seconds::from_picos(800.0),
///     l2_time: Seconds::from_picos(4000.0),
///     mem_time: Seconds::from_nanos(60.0),
///     l1_miss_rate: 0.05,
///     l2_local_miss_rate: 0.2,
/// });
/// // 800 + 0.05·(4000 + 0.2·60000) = 1600 ps
/// assert!((t.picos() - 1600.0).abs() < 1e-9);
/// ```
pub fn amat(inputs: AmatInputs) -> Seconds {
    debug_assert!((0.0..=1.0).contains(&inputs.l1_miss_rate));
    debug_assert!((0.0..=1.0).contains(&inputs.l2_local_miss_rate));
    inputs.l1_time
        + (inputs.l2_time + inputs.mem_time * inputs.l2_local_miss_rate) * inputs.l1_miss_rate
}

/// The knob-independent AMAT floor contributed by main memory:
/// `m1·m2·t_mem`.
pub fn memory_floor(l1_miss_rate: f64, l2_local_miss_rate: f64, mem_time: Seconds) -> Seconds {
    mem_time * (l1_miss_rate * l2_local_miss_rate)
}

/// Per-CPU-reference dynamic energy of the memory endpoint:
/// `m1·m2·E_mem`.
pub fn memory_energy(l1_miss_rate: f64, l2_local_miss_rate: f64, mem_energy: Joules) -> Joules {
    mem_energy * (l1_miss_rate * l2_local_miss_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amat_reduces_to_l1_when_no_misses() {
        let t = amat(AmatInputs {
            l1_time: Seconds::from_picos(700.0),
            l2_time: Seconds::from_picos(3000.0),
            mem_time: Seconds::from_nanos(60.0),
            l1_miss_rate: 0.0,
            l2_local_miss_rate: 0.9,
        });
        assert!((t.picos() - 700.0).abs() < 1e-9);
    }

    #[test]
    fn amat_monotone_in_miss_rates() {
        let base = AmatInputs {
            l1_time: Seconds::from_picos(700.0),
            l2_time: Seconds::from_picos(3000.0),
            mem_time: Seconds::from_nanos(60.0),
            l1_miss_rate: 0.05,
            l2_local_miss_rate: 0.3,
        };
        let worse_l1 = AmatInputs {
            l1_miss_rate: 0.10,
            ..base
        };
        let worse_l2 = AmatInputs {
            l2_local_miss_rate: 0.6,
            ..base
        };
        assert!(amat(worse_l1) > amat(base));
        assert!(amat(worse_l2) > amat(base));
    }

    #[test]
    fn floor_and_energy_scale_with_global_rate() {
        let f = memory_floor(0.05, 0.2, Seconds::from_nanos(60.0));
        assert!((f.picos() - 600.0).abs() < 1e-9);
        let e = memory_energy(0.05, 0.2, Joules::from_nanos(2.0));
        assert!((e.picos() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn default_memory_is_ddr_2005() {
        let m = MainMemory::default();
        assert!((m.access_time.nanos() - 45.0).abs() < 1e-9);
        assert!((m.access_energy.nanos() - 2.0).abs() < 1e-12);
    }
}
