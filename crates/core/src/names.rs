//! Telemetry names emitted by the evaluation engine.
//!
//! Every fixed metric name this crate records lives here as a `pub
//! const`, and each one must also appear in the workspace-root
//! `telemetry_names.txt` manifest — the D6 static-analysis rule
//! (`nmcache analyze`) checks both directions, so a typo'd literal can
//! never silently fork a time series. The per-technology counters
//! (`device.tech.<name>`) are derived from profile names at runtime and
//! are exempt by design.

/// Span: one `try_ensure_surfaces` bulk build.
pub const EVAL_ENSURE_SURFACES: &str = "eval.ensure_surfaces";
/// Span: one `try_front` evaluation.
pub const EVAL_FRONT: &str = "eval.front";
/// Span: one `try_solve` constrained query.
pub const EVAL_SOLVE: &str = "eval.solve";
/// Counter: memoized surface lookups served from the cache.
pub const EVAL_SURFACE_HIT: &str = "eval.surface_hit";
/// Counter: component surfaces computed and installed.
pub const EVAL_SURFACE_BUILT: &str = "eval.surface_built";
/// Counter: surfaces rejected by validation before install.
pub const EVAL_SURFACE_REJECTED: &str = "eval.surface_rejected";
/// Histogram: seconds spent building one component surface.
pub const EVAL_SURFACE_BUILD_SECONDS: &str = "eval.surface_build_seconds";
/// Counter: knob points stored across installed SoA surfaces.
pub const SURFACE_SOA_POINTS: &str = "surface.soa.points";
/// Counter: memoized fronts served from the cache.
pub const EVAL_FRONT_HIT: &str = "eval.front_hit";
/// Counter: system fronts merged and memoized.
pub const EVAL_FRONT_BUILT: &str = "eval.front_built";
/// Counter: merge layers reused from a shared group prefix.
pub const FRONT_MERGE_INCREMENTAL: &str = "front.merge.incremental";
/// Counter: hierarchy levels across freshly built fronts.
pub const EVAL_LEVELS: &str = "eval.levels";
