//! Telemetry names emitted by the evaluation engine.
//!
//! Every fixed metric name this crate records lives here as a `pub
//! const`, and each one must also appear in the workspace-root
//! `telemetry_names.txt` manifest — the D6 static-analysis rule
//! (`nmcache analyze`) checks both directions, so a typo'd literal can
//! never silently fork a time series. The per-technology counters
//! (`device.tech.<name>`) are derived from profile names at runtime and
//! are exempt by design.

/// Span: one `try_ensure_surfaces` bulk build.
pub const EVAL_ENSURE_SURFACES: &str = "eval.ensure_surfaces";
/// Span: one `try_front` evaluation.
pub const EVAL_FRONT: &str = "eval.front";
/// Span: one `try_solve` constrained query.
pub const EVAL_SOLVE: &str = "eval.solve";
/// Counter: memoized surface lookups served from the cache.
pub const EVAL_SURFACE_HIT: &str = "eval.surface_hit";
/// Counter: component surfaces computed and installed.
pub const EVAL_SURFACE_BUILT: &str = "eval.surface_built";
/// Counter: surfaces rejected by validation before install.
pub const EVAL_SURFACE_REJECTED: &str = "eval.surface_rejected";
/// Histogram: seconds spent building one component surface.
pub const EVAL_SURFACE_BUILD_SECONDS: &str = "eval.surface_build_seconds";
/// Counter: knob points stored across installed SoA surfaces.
pub const SURFACE_SOA_POINTS: &str = "surface.soa.points";
/// Counter: memoized fronts served from the cache.
pub const EVAL_FRONT_HIT: &str = "eval.front_hit";
/// Counter: system fronts merged and memoized.
pub const EVAL_FRONT_BUILT: &str = "eval.front_built";
/// Counter: merge layers reused from a shared group prefix.
pub const FRONT_MERGE_INCREMENTAL: &str = "front.merge.incremental";
/// Counter: hierarchy levels across freshly built fronts.
pub const EVAL_LEVELS: &str = "eval.levels";
/// Counter: surfaces and fronts loaded from the persistent store
/// instead of being recomputed.
pub const EVAL_STORE_LOADED: &str = "eval.store_loaded";
/// Counter: persisted payloads rejected (decode or validation failure)
/// and recomputed.
pub const EVAL_STORE_REJECTED: &str = "eval.store_rejected";
/// Counter: store read/write failures absorbed by the in-memory
/// fallback (a broken store never aborts a study).
pub const EVAL_STORE_ERRORS: &str = "eval.store_errors";
/// Counter: cells in the campaign's cross product.
pub const CAMPAIGN_CELLS_TOTAL: &str = "campaign.cells_total";
/// Counter: campaign cells computed by this run.
pub const CAMPAIGN_CELLS_COMPUTED: &str = "campaign.cells_computed";
/// Counter: campaign cells skipped because a checkpoint already held
/// them.
pub const CAMPAIGN_CELLS_RESUMED: &str = "campaign.cells_resumed";
/// Counter: campaign cells whose computation failed (recorded in the
/// table; the campaign continued).
pub const CAMPAIGN_CELLS_FAILED: &str = "campaign.cells_failed";
/// Histogram: seconds spent computing one campaign cell (success or
/// failure), the per-cell tail-latency companion to the totals above.
pub const CAMPAIGN_CELL_LATENCY: &str = "campaign.cell.latency";
/// Counter: atomic checkpoint rewrites.
pub const CAMPAIGN_CHECKPOINTS: &str = "campaign.checkpoints";
/// Histogram: seconds spent encoding and atomically writing one
/// checkpoint.
pub const CAMPAIGN_CHECKPOINT_SECONDS: &str = "campaign.checkpoint_seconds";
