//! Extension study: temperature sensitivity of the leakage optimum.
//!
//! Subthreshold leakage grows steeply with temperature (the thermal
//! voltage widens the subthreshold swing), while gate tunnelling is
//! nearly temperature-independent. An assignment optimised at 80 °C is
//! therefore *mis-optimised* at other operating points: at low
//! temperature the gate floor dominates and `Tox` should carry more of
//! the burden; at high temperature `Vth` matters even more. This study
//! quantifies both the raw temperature scaling and the benefit of
//! re-optimising per temperature.

use crate::groups::Scheme;
use crate::report::{cell, Table};
use crate::single::SingleCacheStudy;
use crate::StudyError;
use nm_device::units::{Kelvin, Seconds};
use nm_device::{KnobGrid, TechnologyNode};
use nm_geometry::CacheConfig;
use serde::{Deserialize, Serialize};

/// One temperature point of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalRow {
    /// Operating temperature.
    pub temperature: Kelvin,
    /// Leakage (W) of the 80 °C-optimised assignment evaluated at this
    /// temperature.
    pub fixed_assignment: f64,
    /// Leakage (W) when re-optimised at this temperature.
    pub reoptimized: f64,
    /// Gate-tunnelling fraction of the re-optimised leakage.
    pub gate_fraction: f64,
}

/// Temperature study over one cache configuration.
#[derive(Debug, Clone)]
pub struct ThermalStudy {
    config: CacheConfig,
    grid: KnobGrid,
    /// Temperatures to evaluate.
    pub temperatures: Vec<Kelvin>,
}

impl ThermalStudy {
    /// Creates a study over the default 25/80/110 °C points.
    pub fn new(config: CacheConfig, grid: KnobGrid) -> Self {
        ThermalStudy {
            config,
            grid,
            temperatures: vec![
                Kelvin::from_celsius(25.0),
                Kelvin::from_celsius(80.0),
                Kelvin::from_celsius(110.0),
            ],
        }
    }

    /// The paper's 16 KB subject on the fine grid.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn paper_16kb() -> Result<Self, StudyError> {
        Ok(Self::new(
            CacheConfig::new(16 * 1024, 64, 4)?,
            KnobGrid::paper(),
        ))
    }

    /// Runs the study at one delay-slack factor (relative to the fastest
    /// corner at each temperature).
    pub fn evaluate(&self, slack: f64) -> Vec<ThermalRow> {
        let reference_tech = TechnologyNode::bptm65(); // 80 °C
        let ref_study = SingleCacheStudy::new(self.config, &reference_tech, self.grid.clone());
        let ref_deadline = Seconds(ref_study.circuit().fastest_access_time().0 * (1.0 + slack));
        let Some(ref_sol) = ref_study.optimize(Scheme::Split, ref_deadline) else {
            return Vec::new();
        };

        self.temperatures
            .iter()
            .map(|&temperature| {
                let tech = reference_tech.at_temperature(temperature);
                let study = SingleCacheStudy::new(self.config, &tech, self.grid.clone());
                let deadline = Seconds(study.circuit().fastest_access_time().0 * (1.0 + slack));
                let fixed = study.circuit().analyze(&ref_sol.knobs).leakage();
                let reopt = study.optimize(Scheme::Split, deadline);
                let (reoptimized, gate_fraction) = match &reopt {
                    Some(sol) => (sol.leakage.total().0, sol.leakage.gate_fraction()),
                    None => (f64::NAN, f64::NAN),
                };
                ThermalRow {
                    temperature,
                    fixed_assignment: fixed.total().0,
                    reoptimized,
                    gate_fraction,
                }
            })
            .collect()
    }

    /// Renders the study as a table (powers in mW).
    pub fn to_table(&self, slack: f64) -> Table {
        let rows = self.evaluate(slack);
        let mut t = Table::new(
            format!(
                "Temperature sensitivity, {} at {:.0}% delay slack",
                self.config,
                slack * 100.0
            ),
            &[
                "T (°C)",
                "80°C-optimum leak (mW)",
                "re-optimised leak (mW)",
                "gate fraction",
            ],
        );
        for r in &rows {
            t.push_row(vec![
                cell(r.temperature.0 - 273.15, 0),
                cell(r.fixed_assignment * 1e3, 3),
                cell(r.reoptimized * 1e3, 3),
                cell(r.gate_fraction, 3),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ThermalStudy {
        ThermalStudy::new(
            CacheConfig::new(16 * 1024, 64, 4).unwrap(),
            KnobGrid::coarse(),
        )
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let rows = quick().evaluate(0.25);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[2].fixed_assignment > rows[0].fixed_assignment,
            "110 °C {:.3e} ≤ 25 °C {:.3e}",
            rows[2].fixed_assignment,
            rows[0].fixed_assignment
        );
    }

    #[test]
    fn reoptimization_never_hurts() {
        for r in quick().evaluate(0.25) {
            if r.reoptimized.is_finite() {
                assert!(
                    r.reoptimized <= r.fixed_assignment * 1.001,
                    "re-opt {:.3e} worse than fixed {:.3e} at {:.0} K",
                    r.reoptimized,
                    r.fixed_assignment,
                    r.temperature.0
                );
            }
        }
    }

    #[test]
    fn gate_fraction_rises_as_it_cools() {
        // Cold silicon: subthreshold collapses, the gate floor remains.
        let rows = quick().evaluate(0.25);
        assert!(
            rows[0].gate_fraction > rows[2].gate_fraction,
            "25 °C gate fraction {:.3} ≤ 110 °C {:.3}",
            rows[0].gate_fraction,
            rows[2].gate_fraction
        );
    }

    #[test]
    fn table_has_three_temperature_rows() {
        let t = quick().to_table(0.25);
        assert_eq!(t.len(), 3);
    }
}
