//! Extension study: split instruction/data L1s versus a unified L1.
//!
//! The paper treats "the L1 cache" as one array; real paper-era parts
//! split it. Splitting doubles the number of knob-assignable cell arrays
//! (I$ cells, D$ cells) and lets the optimiser exploit the streams'
//! different behaviour — instruction fetches are read-only with very low
//! miss rates, data references carry writes and more misses. This study
//! optimises both organisations at iso average access time and compares
//! their total leakage.

use crate::amat::MainMemory;
use crate::eval::{Evaluator, HierarchySpec};
use crate::groups::{CostKind, Scheme};
use crate::report::{cell, Table};
use crate::StudyError;
use nm_archsim::cache::CacheParams;
use nm_archsim::splitl1::{simulate_split, simulate_unified, SplitStats};
use nm_archsim::workload::SuiteKind;
use nm_device::units::{Seconds, Watts};
use nm_device::{KnobGrid, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig, ComponentKnobs};
use nm_opt::objective::Deadline;
use serde::{Deserialize, Serialize};

/// Data references per instruction fetch (paper-era scalar core).
pub const DATA_PER_INST: f64 = 0.35;

/// One organisation's optimised outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrganisationRow {
    /// Organisation label.
    pub name: String,
    /// Achieved mean access time over the reference mix.
    pub mean_access: Seconds,
    /// Total optimised leakage (all caches).
    pub leakage: Watts,
    /// Knob assignment of the (first) L1 cache, for inspection.
    pub l1_knobs: ComponentKnobs,
}

/// The split-vs-unified study.
#[derive(Debug, Clone)]
pub struct SplitL1Study {
    eval: Evaluator,
    icache_bytes: u64,
    dcache_bytes: u64,
    l2_bytes: u64,
    icache_circuit: CacheCircuit,
    dcache_circuit: CacheCircuit,
    unified_circuit: CacheCircuit,
    l2_circuit: CacheCircuit,
    split_stats: SplitStats,
    unified_m1: f64,
    unified_m2: f64,
    memory: MainMemory,
}

impl SplitL1Study {
    /// Simulates both organisations (split: I$ + D$; unified: one L1 of
    /// their combined capacity) and prepares the study.
    ///
    /// # Errors
    ///
    /// Propagates impossible cache geometry.
    pub fn new(
        icache_bytes: u64,
        dcache_bytes: u64,
        l2_bytes: u64,
        suite: SuiteKind,
        steps: u64,
        grid: KnobGrid,
    ) -> Result<Self, StudyError> {
        let icache = CacheParams::new(icache_bytes, 64, 2)?;
        let dcache = CacheParams::new(dcache_bytes, 64, 4)?;
        let l2 = CacheParams::new(l2_bytes, 64, 8)?;
        let unified = CacheParams::new(icache_bytes + dcache_bytes, 64, 4)?;

        let mut data_a = suite.build(2005);
        let split_stats = simulate_split(
            icache,
            dcache,
            l2,
            data_a.as_mut(),
            2005,
            steps,
            DATA_PER_INST,
        );
        let mut data_b = suite.build(2005);
        let (u_l1, u_l2) =
            simulate_unified(unified, l2, data_b.as_mut(), 2005, steps, DATA_PER_INST);

        // Build every circuit here so impossible geometry surfaces as a
        // typed error at construction — the query methods then have no
        // failure path of their own.
        let tech = TechnologyNode::bptm65();
        let icache_circuit = CacheCircuit::new(CacheConfig::new(icache_bytes, 64, 2)?, &tech);
        let dcache_circuit = CacheCircuit::new(CacheConfig::new(dcache_bytes, 64, 4)?, &tech);
        let unified_circuit =
            CacheCircuit::new(CacheConfig::new(icache_bytes + dcache_bytes, 64, 4)?, &tech);
        let l2_circuit = CacheCircuit::new(CacheConfig::new(l2_bytes, 64, 8)?, &tech);

        Ok(SplitL1Study {
            eval: Evaluator::new(grid),
            icache_bytes,
            dcache_bytes,
            l2_bytes,
            icache_circuit,
            dcache_circuit,
            unified_circuit,
            l2_circuit,
            split_stats,
            unified_m1: u_l1.miss_rate(),
            unified_m2: u_l2.miss_rate(),
            memory: MainMemory::default(),
        })
    }

    /// The simulated split statistics.
    pub fn split_stats(&self) -> &SplitStats {
        &self.split_stats
    }

    /// Unified (m1, m2) miss rates.
    pub fn unified_rates(&self) -> (f64, f64) {
        (self.unified_m1, self.unified_m2)
    }

    /// Reference-mix weights: instruction share and data share of the
    /// combined stream.
    fn mix() -> (f64, f64) {
        let total = 1.0 + DATA_PER_INST;
        (1.0 / total, DATA_PER_INST / total)
    }

    /// Optimises the split organisation (Scheme II in each of the three
    /// caches) at a mean-access-time deadline.
    pub fn optimize_split(&self, deadline: Seconds) -> Option<OrganisationRow> {
        let (fi, fd) = Self::mix();
        let s = &self.split_stats;
        let l2_weight = fi * s.icache_miss_rate() + fd * s.dcache_miss_rate();
        let floor = self.memory.access_time.0 * l2_weight * s.l2_local_miss_rate();

        let spec = HierarchySpec::new()
            .level(
                "I$",
                self.icache_circuit.clone(),
                Scheme::Split,
                fi,
                CostKind::LeakagePower,
            )
            .level(
                "D$",
                self.dcache_circuit.clone(),
                Scheme::Split,
                fd,
                CostKind::LeakagePower,
            )
            .level(
                "L2",
                self.l2_circuit.clone(),
                Scheme::Split,
                l2_weight,
                CostKind::LeakagePower,
            );
        let sol = self.eval.solve(&spec, &Deadline(deadline.0 - floor))?;
        Some(OrganisationRow {
            name: format!(
                "split {}K I$ + {}K D$",
                self.icache_bytes / 1024,
                self.dcache_bytes / 1024
            ),
            mean_access: Seconds(sol.delay + floor),
            leakage: Watts(sol.cost),
            l1_knobs: sol.knobs[0],
        })
    }

    /// Optimises the unified organisation at the same deadline.
    pub fn optimize_unified(&self, deadline: Seconds) -> Option<OrganisationRow> {
        let l2_weight = self.unified_m1;
        let floor = self.memory.access_time.0 * l2_weight * self.unified_m2;
        let spec = HierarchySpec::new()
            .level(
                "L1",
                self.unified_circuit.clone(),
                Scheme::Split,
                1.0,
                CostKind::LeakagePower,
            )
            .level(
                "L2",
                self.l2_circuit.clone(),
                Scheme::Split,
                l2_weight,
                CostKind::LeakagePower,
            );
        let sol = self.eval.solve(&spec, &Deadline(deadline.0 - floor))?;
        Some(OrganisationRow {
            name: format!(
                "unified {}K L1",
                (self.icache_bytes + self.dcache_bytes) / 1024
            ),
            mean_access: Seconds(sol.delay + floor),
            leakage: Watts(sol.cost),
            l1_knobs: sol.knobs[0],
        })
    }

    /// The tightest deadline both organisations can meet, scaled by
    /// `1 + slack`.
    pub fn deadline(&self, slack: f64) -> Seconds {
        let (fi, fd) = Self::mix();
        let s = &self.split_stats;
        let t_l2 = self.l2_circuit.fastest_access_time().0;
        let split_min = fi * self.icache_circuit.fastest_access_time().0
            + fd * self.dcache_circuit.fastest_access_time().0
            + (fi * s.icache_miss_rate() + fd * s.dcache_miss_rate())
                * (t_l2 + s.l2_local_miss_rate() * self.memory.access_time.0);
        let unified_min = self.unified_circuit.fastest_access_time().0
            + self.unified_m1 * (t_l2 + self.unified_m2 * self.memory.access_time.0);
        Seconds(split_min.max(unified_min) * (1.0 + slack))
    }

    /// Renders the comparison across a few slack levels.
    pub fn to_table(&self, slacks: &[f64]) -> Table {
        let mut t = Table::new(
            format!(
                "Split I$/D$ vs unified L1 (L2 = {} KB)",
                self.l2_bytes / 1024
            ),
            &["slack", "organisation", "mean access (ps)", "leakage (mW)"],
        );
        for &slack in slacks {
            let deadline = self.deadline(slack);
            for row in [
                self.optimize_split(deadline),
                self.optimize_unified(deadline),
            ]
            .into_iter()
            .flatten()
            {
                t.push_row(vec![
                    format!("{:.0}%", slack * 100.0),
                    row.name,
                    cell(row.mean_access.picos(), 0),
                    cell(row.leakage.milli(), 3),
                ]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn study() -> &'static SplitL1Study {
        static STUDY: OnceLock<SplitL1Study> = OnceLock::new();
        STUDY.get_or_init(|| {
            SplitL1Study::new(
                16 * 1024,
                16 * 1024,
                512 * 1024,
                SuiteKind::Spec2000,
                200_000,
                KnobGrid::coarse(),
            )
            .expect("valid configuration")
        })
    }

    #[test]
    fn icache_misses_less_than_dcache() {
        let s = study().split_stats();
        assert!(
            s.icache_miss_rate() < s.dcache_miss_rate(),
            "I$ {} ≥ D$ {}",
            s.icache_miss_rate(),
            s.dcache_miss_rate()
        );
    }

    #[test]
    fn both_organisations_optimizable() {
        let st = study();
        let deadline = st.deadline(0.10);
        let split = st.optimize_split(deadline).expect("split feasible");
        let unified = st.optimize_unified(deadline).expect("unified feasible");
        assert!(split.mean_access.0 <= deadline.0 + 1e-15);
        assert!(unified.mean_access.0 <= deadline.0 + 1e-15);
        assert!(split.leakage.0 > 0.0 && unified.leakage.0 > 0.0);
    }

    #[test]
    fn split_is_competitive_with_unified() {
        // The extra knob freedom of two L1 arrays keeps the split
        // organisation at or below ~115 % of the unified leakage at
        // mid-range slack (it usually wins outright).
        let st = study();
        let deadline = st.deadline(0.15);
        let split = st.optimize_split(deadline).expect("split feasible");
        let unified = st.optimize_unified(deadline).expect("unified feasible");
        assert!(
            split.leakage.0 <= unified.leakage.0 * 1.15,
            "split {:.3} mW vs unified {:.3} mW",
            split.leakage.milli(),
            unified.leakage.milli()
        );
    }

    #[test]
    fn table_has_two_rows_per_slack() {
        let t = study().to_table(&[0.10, 0.20]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn impossible_geometry_is_a_typed_error_not_a_panic() {
        // 3000 bytes is not a power of two: the simulator parameters
        // reject it before any simulation or circuit model runs.
        let err = SplitL1Study::new(
            3000,
            16 * 1024,
            512 * 1024,
            SuiteKind::Spec2000,
            1_000,
            KnobGrid::coarse(),
        )
        .expect_err("non-power-of-two L1 must fail");
        assert!(matches!(err, StudyError::Simulator(_)), "{err:?}");
    }
}
