//! Plain-text and CSV rendering of experiment results.
//!
//! Every experiment produces a [`Table`]; the bench harness prints it and
//! optionally persists the CSV next to the Criterion output, so each paper
//! figure/table can be regenerated and diffed from artefacts.

use nm_sweep::SweepStats;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Write};
use std::path::Path;

/// A rectangular result table with a title and column headers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the header count — rows
    /// are produced by the experiment code, so a mismatch is a bug.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serialises as CSV (headers first; fields quoted when they contain
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to a file.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating or writing the file.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths over headers and cells.
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(
                f,
                "{:>width$}{}",
                h,
                if i + 1 < ncols { "  " } else { "\n" },
                width = widths[i]
            )?;
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(
                    f,
                    "{:>width$}{}",
                    cell,
                    if i + 1 < ncols { "  " } else { "\n" },
                    width = widths[i]
                )?;
            }
        }
        Ok(())
    }
}

/// Formats a float with a fixed number of decimals (table-cell helper).
pub fn cell(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Renders recorded sweep-executor statistics (one row per completed
/// sweep, in completion order) for the CLI's `--stats` flag.
pub fn sweep_stats_table(stats: &[SweepStats]) -> Table {
    let mut t = Table::new(
        "Parallel sweeps",
        &[
            "sweep",
            "items",
            "workers",
            "wall (ms)",
            "items/s",
            "faults",
            "retries",
            "dead",
        ],
    );
    for s in stats {
        t.push_row(vec![
            s.label.clone(),
            s.items.to_string(),
            s.workers.to_string(),
            cell(s.wall.as_secs_f64() * 1e3, 1),
            cell(s.items_per_sec(), 0),
            s.faults.to_string(),
            s.retries.to_string(),
            s.poisoned_workers.to_string(),
        ]);
    }
    t
}

/// One labelled data series of a figure (x/y point list).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label, e.g. `"Tox=10A"`.
    pub label: String,
    /// `(x, y)` points in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Renders a set of series as one table with `(series, x, y)` rows.
    pub fn to_table(series: &[Series], title: &str, x_name: &str, y_name: &str) -> Table {
        let mut t = Table::new(title, &["series", x_name, y_name]);
        for s in series {
            for &(x, y) in &s.points {
                t.push_row(vec![s.label.clone(), cell(x, 1), cell(y, 3)]);
            }
        }
        t
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "-- {} --", self.label)?;
        for &(x, y) in &self.points {
            writeln!(f, "{x:>12.1}  {y:>12.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["30".into(), "4,4".into()]);
        t
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = sample().to_csv();
        assert_eq!(csv, "a,b\n1,2\n30,\"4,4\"\n");
    }

    #[test]
    fn display_aligns_columns() {
        let s = sample().to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains(" a"), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("nmcache-test-report");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        sample().write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, sample().to_csv());
    }

    #[test]
    fn sweep_stats_render_one_row_per_sweep() {
        let stats = [
            SweepStats {
                label: "missrate-table".into(),
                items: 9,
                workers: 4,
                wall: std::time::Duration::from_millis(120),
                faults: 0,
                retries: 0,
                poisoned_workers: 0,
            },
            SweepStats {
                label: "tuple-curves".into(),
                items: 30,
                workers: 8,
                wall: std::time::Duration::from_millis(45),
                faults: 1,
                retries: 2,
                poisoned_workers: 0,
            },
        ];
        let t = sweep_stats_table(&stats);
        assert_eq!(t.len(), 2);
        assert_eq!(t.headers().len(), 8);
        assert!(t.to_string().contains("missrate-table"));
        assert!(t.headers().iter().any(|h| h == "faults"));
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.headers(), ["a", "b"]);
        assert_eq!(t.title(), "demo");
        assert_eq!(cell(1.23456, 2), "1.23");
    }
}
