//! Bridging the circuit model to the optimiser: assignment schemes and
//! candidate-group construction.

use nm_device::{KnobGrid, KnobPoint};
use nm_geometry::{CacheCircuit, ComponentId, ComponentKnobs, COMPONENT_IDS};
use nm_opt::{Candidate, Group};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's three `Vth`/`Tox` assignment schemes (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Scheme I: independent pairs for each of the four components.
    PerComponent,
    /// Scheme II: one pair for the memory cell array, one for the three
    /// peripheral components.
    Split,
    /// Scheme III: a single pair for the whole cache.
    Uniform,
}

impl Scheme {
    /// All schemes, in paper order.
    pub const ALL: [Scheme; 3] = [Scheme::PerComponent, Scheme::Split, Scheme::Uniform];

    /// Paper name ("I", "II", "III").
    pub fn numeral(self) -> &'static str {
        match self {
            Scheme::PerComponent => "I",
            Scheme::Split => "II",
            Scheme::Uniform => "III",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scheme {}", self.numeral())
    }
}

/// What a candidate's `cost` field measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostKind {
    /// Standby leakage power, watts (Sections 4–5 leakage studies).
    LeakagePower,
    /// Per-access energy, joules: `leakage · t_ref + access_rate ·
    /// dynamic` (the Figure 2 total-energy study), with the dynamic term
    /// mixing read and write energy by the stream's store fraction.
    Energy {
        /// Reference interval the leakage is integrated over (the AMAT
        /// target), seconds.
        t_ref: f64,
        /// Accesses reaching this cache per CPU reference (1 for L1, the
        /// L1 miss rate plus writeback rate for L2).
        access_rate: f64,
        /// Store fraction of the accesses reaching this cache.
        write_fraction: f64,
    },
}

/// Evaluates one component of a circuit over the whole grid as an
/// optimiser group.
///
/// `delay_weight` scales the component's delay contribution in the system
/// objective (1 for an L1 component, the L1 miss rate for an L2 component
/// in an AMAT study).
pub fn component_group(
    circuit: &CacheCircuit,
    id: ComponentId,
    grid: &KnobGrid,
    delay_weight: f64,
    cost: CostKind,
) -> Group {
    let candidates: Vec<Candidate> = grid
        .points()
        .map(|p| make_candidate(circuit, &[id], p, delay_weight, cost))
        .collect();
    Group::new(format!("{}:{id}", circuit.config()), candidates)
}

/// Evaluates a *tied* set of components (sharing one knob pair) over the
/// grid as a single group.
pub fn tied_group(
    circuit: &CacheCircuit,
    ids: &[ComponentId],
    name: &str,
    grid: &KnobGrid,
    delay_weight: f64,
    cost: CostKind,
) -> Group {
    let candidates: Vec<Candidate> = grid
        .points()
        .map(|p| make_candidate(circuit, ids, p, delay_weight, cost))
        .collect();
    Group::new(format!("{}:{name}", circuit.config()), candidates)
}

fn make_candidate(
    circuit: &CacheCircuit,
    ids: &[ComponentId],
    p: KnobPoint,
    delay_weight: f64,
    cost: CostKind,
) -> Candidate {
    let mut delay = 0.0;
    let mut leak = 0.0;
    let mut read_energy = 0.0;
    let mut write_energy = 0.0;
    for &id in ids {
        let m = circuit.analyze_component(id, p);
        delay += m.delay.0;
        leak += m.leakage.total().0;
        read_energy += m.read_energy.0;
        write_energy += m.write_energy.0;
    }
    let cost_value = match cost {
        CostKind::LeakagePower => leak,
        CostKind::Energy {
            t_ref,
            access_rate,
            write_fraction,
        } => {
            let dynamic = (1.0 - write_fraction) * read_energy + write_fraction * write_energy;
            leak * t_ref + access_rate * dynamic
        }
    };
    Candidate::new(p, delay_weight * delay, cost_value)
}

/// Builds the optimiser groups for one cache under a scheme.
///
/// Group order (used to reconstruct [`ComponentKnobs`] from a front
/// point's choice):
///
/// * Scheme I — the four components in [`COMPONENT_IDS`] order;
/// * Scheme II — `[memory array, periphery]`;
/// * Scheme III — a single all-components group.
pub fn cache_groups(
    circuit: &CacheCircuit,
    scheme: Scheme,
    grid: &KnobGrid,
    delay_weight: f64,
    cost: CostKind,
) -> Vec<Group> {
    match scheme {
        Scheme::PerComponent => COMPONENT_IDS
            .iter()
            .map(|&id| component_group(circuit, id, grid, delay_weight, cost))
            .collect(),
        Scheme::Split => {
            let periphery: Vec<ComponentId> = COMPONENT_IDS
                .into_iter()
                .filter(|id| id.is_peripheral())
                .collect();
            vec![
                component_group(circuit, ComponentId::MemoryArray, grid, delay_weight, cost),
                tied_group(circuit, &periphery, "periphery", grid, delay_weight, cost),
            ]
        }
        Scheme::Uniform => vec![tied_group(
            circuit,
            &COMPONENT_IDS,
            "uniform",
            grid,
            delay_weight,
            cost,
        )],
    }
}

/// Reconstructs a full [`ComponentKnobs`] from the per-group knob choice
/// of a front point produced over [`cache_groups`] output.
///
/// # Panics
///
/// Panics when the choice length does not match the scheme's group count.
pub fn knobs_from_choice(scheme: Scheme, choice: &[KnobPoint]) -> ComponentKnobs {
    match scheme {
        Scheme::PerComponent => {
            assert_eq!(choice.len(), 4, "scheme I has four groups");
            ComponentKnobs::per_component(choice[0], choice[1], choice[2], choice[3])
        }
        Scheme::Split => {
            assert_eq!(choice.len(), 2, "scheme II has two groups");
            ComponentKnobs::split(choice[0], choice[1])
        }
        Scheme::Uniform => {
            assert_eq!(choice.len(), 1, "scheme III has one group");
            ComponentKnobs::uniform(choice[0])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::TechnologyNode;
    use nm_geometry::CacheConfig;

    fn circuit() -> CacheCircuit {
        let tech = TechnologyNode::bptm65();
        CacheCircuit::new(CacheConfig::new(16 * 1024, 64, 4).unwrap(), &tech)
    }

    #[test]
    fn group_counts_per_scheme() {
        let c = circuit();
        let grid = KnobGrid::coarse();
        assert_eq!(
            cache_groups(&c, Scheme::PerComponent, &grid, 1.0, CostKind::LeakagePower).len(),
            4
        );
        assert_eq!(
            cache_groups(&c, Scheme::Split, &grid, 1.0, CostKind::LeakagePower).len(),
            2
        );
        assert_eq!(
            cache_groups(&c, Scheme::Uniform, &grid, 1.0, CostKind::LeakagePower).len(),
            1
        );
    }

    #[test]
    fn candidates_match_direct_analysis() {
        let c = circuit();
        let grid = KnobGrid::coarse();
        let g = component_group(&c, ComponentId::Decoder, &grid, 1.0, CostKind::LeakagePower);
        for cand in g.candidates() {
            let m = c.analyze_component(ComponentId::Decoder, cand.knobs);
            assert!((cand.delay - m.delay.0).abs() < 1e-18);
            assert!((cand.cost - m.leakage.total().0).abs() < 1e-15);
        }
    }

    #[test]
    fn tied_group_sums_components() {
        let c = circuit();
        let grid = KnobGrid::coarse();
        let g = tied_group(
            &c,
            &COMPONENT_IDS,
            "all",
            &grid,
            1.0,
            CostKind::LeakagePower,
        );
        let p = KnobPoint::nominal();
        let cand = g
            .candidates()
            .iter()
            .find(|cand| cand.knobs == grid.snap(p))
            .expect("nominal snaps to grid");
        let m = c.analyze(&ComponentKnobs::uniform(grid.snap(p)));
        assert!((cand.delay - m.access_time().0).abs() < 1e-15);
        assert!((cand.cost - m.leakage().total().0).abs() < 1e-12);
    }

    #[test]
    fn delay_weight_scales_delay_only() {
        let c = circuit();
        let grid = KnobGrid::coarse();
        let g1 = component_group(&c, ComponentId::DataBus, &grid, 1.0, CostKind::LeakagePower);
        let g2 = component_group(
            &c,
            ComponentId::DataBus,
            &grid,
            0.05,
            CostKind::LeakagePower,
        );
        for (a, b) in g1.candidates().iter().zip(g2.candidates()) {
            assert!((b.delay - 0.05 * a.delay).abs() < 1e-18);
            assert_eq!(a.cost, b.cost);
        }
    }

    #[test]
    fn energy_cost_combines_leakage_and_dynamic() {
        let c = circuit();
        let grid = KnobGrid::coarse();
        let t_ref = 1.5e-9;
        let g = component_group(
            &c,
            ComponentId::MemoryArray,
            &grid,
            1.0,
            CostKind::Energy {
                t_ref,
                access_rate: 1.0,
                write_fraction: 0.25,
            },
        );
        for cand in g.candidates() {
            let m = c.analyze_component(ComponentId::MemoryArray, cand.knobs);
            let dynamic = 0.75 * m.read_energy.0 + 0.25 * m.write_energy.0;
            let expected = m.leakage.total().0 * t_ref + dynamic;
            assert!((cand.cost - expected).abs() < 1e-18);
        }
    }

    #[test]
    fn knobs_roundtrip_per_scheme() {
        let a = KnobPoint::fastest();
        let b = KnobPoint::lowest_leakage();
        let knobs = knobs_from_choice(Scheme::Split, &[b, a]);
        assert_eq!(knobs[ComponentId::MemoryArray], b);
        assert_eq!(knobs[ComponentId::AddressBus], a);
        let u = knobs_from_choice(Scheme::Uniform, &[a]);
        assert_eq!(u[ComponentId::Decoder], a);
        let pc = knobs_from_choice(Scheme::PerComponent, &[a, b, a, b]);
        assert_eq!(pc[ComponentId::Decoder], b);
    }

    #[test]
    fn scheme_display() {
        assert_eq!(Scheme::PerComponent.to_string(), "scheme I");
        assert_eq!(Scheme::Split.numeral(), "II");
        assert_eq!(Scheme::Uniform.numeral(), "III");
    }
}
