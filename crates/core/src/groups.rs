//! Bridging the circuit model to the optimiser: assignment schemes and
//! candidate-group construction.

use nm_device::{KnobGrid, KnobPoint};
use nm_geometry::{CacheCircuit, ComponentId, ComponentKnobs, ComponentMetrics, COMPONENT_IDS};
use nm_opt::objective::{self, MetricSample, Objective};
use nm_opt::{Candidate, Group};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's three `Vth`/`Tox` assignment schemes (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Scheme I: independent pairs for each of the four components.
    PerComponent,
    /// Scheme II: one pair for the memory cell array, one for the three
    /// peripheral components.
    Split,
    /// Scheme III: a single pair for the whole cache.
    Uniform,
}

impl Scheme {
    /// All schemes, in paper order.
    pub const ALL: [Scheme; 3] = [Scheme::PerComponent, Scheme::Split, Scheme::Uniform];

    /// Paper name ("I", "II", "III").
    pub fn numeral(self) -> &'static str {
        match self {
            Scheme::PerComponent => "I",
            Scheme::Split => "II",
            Scheme::Uniform => "III",
        }
    }

    /// Number of knob-sharing groups the scheme creates per cache — the
    /// length of the per-cache slice of a front point's choice vector.
    pub fn group_count(self) -> usize {
        match self {
            Scheme::PerComponent => 4,
            Scheme::Split => 2,
            Scheme::Uniform => 1,
        }
    }

    /// The scheme's group layout, in group order: each entry is the tied
    /// component set and the group-name suffix (the full group name is
    /// `"{config}:{suffix}"`).
    ///
    /// This is the single source of truth shared by [`cache_groups`], the
    /// evaluation engine ([`crate::eval`]) and [`knobs_from_choice`] — the
    /// three must agree on group order or knob reconstruction silently
    /// permutes assignments.
    pub fn layout(self) -> Vec<(Vec<ComponentId>, String)> {
        match self {
            Scheme::PerComponent => COMPONENT_IDS
                .iter()
                .map(|&id| (vec![id], id.to_string()))
                .collect(),
            Scheme::Split => {
                let periphery: Vec<ComponentId> = COMPONENT_IDS
                    .into_iter()
                    .filter(|id| id.is_peripheral())
                    .collect();
                vec![
                    (
                        vec![ComponentId::MemoryArray],
                        ComponentId::MemoryArray.to_string(),
                    ),
                    (periphery, "periphery".to_owned()),
                ]
            }
            Scheme::Uniform => vec![(COMPONENT_IDS.to_vec(), "uniform".to_owned())],
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scheme {}", self.numeral())
    }
}

/// What a candidate's `cost` field measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostKind {
    /// Standby leakage power, watts (Sections 4–5 leakage studies).
    LeakagePower,
    /// Per-access energy, joules: `leakage · t_ref + access_rate ·
    /// dynamic` (the Figure 2 total-energy study), with the dynamic term
    /// mixing read and write energy by the stream's store fraction.
    Energy {
        /// Reference interval the leakage is integrated over (the AMAT
        /// target), seconds.
        t_ref: f64,
        /// Accesses reaching this cache per CPU reference (1 for L1, the
        /// L1 miss rate plus writeback rate for L2).
        access_rate: f64,
        /// Store fraction of the accesses reaching this cache.
        write_fraction: f64,
    },
}

impl Objective for CostKind {
    fn cost(&self, sample: &MetricSample) -> f64 {
        match *self {
            CostKind::LeakagePower => sample.leakage,
            CostKind::Energy {
                t_ref,
                access_rate,
                write_fraction,
            } => {
                let dynamic = (1.0 - write_fraction) * sample.read_energy
                    + write_fraction * sample.write_energy;
                sample.leakage * t_ref + access_rate * dynamic
            }
        }
    }
}

/// Sums per-component metrics (in the given iteration order) into the raw
/// [`MetricSample`] an [`Objective`] prices.
pub(crate) fn sample_over<'a>(metrics: impl Iterator<Item = &'a ComponentMetrics>) -> MetricSample {
    let mut sample = MetricSample::default();
    for m in metrics {
        sample.delay += m.delay.0;
        sample.leakage += m.leakage.total().0;
        sample.read_energy += m.read_energy.0;
        sample.write_energy += m.write_energy.0;
    }
    sample
}

/// Prices a tied component set's summed metrics as one candidate — the
/// one pricing path shared by [`cache_groups`] and the evaluation
/// engine's memoized surfaces, so both produce bit-identical candidates.
pub(crate) fn candidate_from_metrics<'a>(
    metrics: impl Iterator<Item = &'a ComponentMetrics>,
    p: KnobPoint,
    delay_weight: f64,
    cost: CostKind,
) -> Candidate {
    objective::price(p, &sample_over(metrics), delay_weight, &cost)
}

/// Evaluates one component of a circuit over the whole grid as an
/// optimiser group.
///
/// `delay_weight` scales the component's delay contribution in the system
/// objective (1 for an L1 component, the L1 miss rate for an L2 component
/// in an AMAT study).
pub fn component_group(
    circuit: &CacheCircuit,
    id: ComponentId,
    grid: &KnobGrid,
    delay_weight: f64,
    cost: CostKind,
) -> Group {
    let candidates: Vec<Candidate> = grid
        .points()
        .map(|p| make_candidate(circuit, &[id], p, delay_weight, cost))
        .collect();
    Group::new(format!("{}:{id}", circuit.config()), candidates)
}

/// Evaluates a *tied* set of components (sharing one knob pair) over the
/// grid as a single group.
pub fn tied_group(
    circuit: &CacheCircuit,
    ids: &[ComponentId],
    name: &str,
    grid: &KnobGrid,
    delay_weight: f64,
    cost: CostKind,
) -> Group {
    let candidates: Vec<Candidate> = grid
        .points()
        .map(|p| make_candidate(circuit, ids, p, delay_weight, cost))
        .collect();
    Group::new(format!("{}:{name}", circuit.config()), candidates)
}

fn make_candidate(
    circuit: &CacheCircuit,
    ids: &[ComponentId],
    p: KnobPoint,
    delay_weight: f64,
    cost: CostKind,
) -> Candidate {
    let metrics: Vec<ComponentMetrics> = ids
        .iter()
        .map(|&id| circuit.analyze_component(id, p))
        .collect();
    candidate_from_metrics(metrics.iter(), p, delay_weight, cost)
}

/// Builds the optimiser groups for one cache under a scheme.
///
/// Group order (used to reconstruct [`ComponentKnobs`] from a front
/// point's choice):
///
/// * Scheme I — the four components in [`COMPONENT_IDS`] order;
/// * Scheme II — `[memory array, periphery]`;
/// * Scheme III — a single all-components group.
pub fn cache_groups(
    circuit: &CacheCircuit,
    scheme: Scheme,
    grid: &KnobGrid,
    delay_weight: f64,
    cost: CostKind,
) -> Vec<Group> {
    scheme
        .layout()
        .iter()
        .map(|(ids, suffix)| tied_group(circuit, ids, suffix, grid, delay_weight, cost))
        .collect()
}

/// Reconstructs a full [`ComponentKnobs`] from the per-group knob choice
/// of a front point produced over [`cache_groups`] output.
///
/// # Panics
///
/// Panics when the choice length does not match the scheme's group count.
pub fn knobs_from_choice(scheme: Scheme, choice: &[KnobPoint]) -> ComponentKnobs {
    match scheme {
        Scheme::PerComponent => {
            assert_eq!(choice.len(), 4, "scheme I has four groups");
            ComponentKnobs::per_component(choice[0], choice[1], choice[2], choice[3])
        }
        Scheme::Split => {
            assert_eq!(choice.len(), 2, "scheme II has two groups");
            ComponentKnobs::split(choice[0], choice[1])
        }
        Scheme::Uniform => {
            assert_eq!(choice.len(), 1, "scheme III has one group");
            ComponentKnobs::uniform(choice[0])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::TechnologyNode;
    use nm_geometry::CacheConfig;

    fn circuit() -> CacheCircuit {
        let tech = TechnologyNode::bptm65();
        CacheCircuit::new(CacheConfig::new(16 * 1024, 64, 4).unwrap(), &tech)
    }

    #[test]
    fn group_counts_per_scheme() {
        let c = circuit();
        let grid = KnobGrid::coarse();
        assert_eq!(
            cache_groups(&c, Scheme::PerComponent, &grid, 1.0, CostKind::LeakagePower).len(),
            4
        );
        assert_eq!(
            cache_groups(&c, Scheme::Split, &grid, 1.0, CostKind::LeakagePower).len(),
            2
        );
        assert_eq!(
            cache_groups(&c, Scheme::Uniform, &grid, 1.0, CostKind::LeakagePower).len(),
            1
        );
    }

    #[test]
    fn candidates_match_direct_analysis() {
        let c = circuit();
        let grid = KnobGrid::coarse();
        let g = component_group(&c, ComponentId::Decoder, &grid, 1.0, CostKind::LeakagePower);
        for cand in g.candidates() {
            let m = c.analyze_component(ComponentId::Decoder, cand.knobs);
            assert!((cand.delay - m.delay.0).abs() < 1e-18);
            assert!((cand.cost - m.leakage.total().0).abs() < 1e-15);
        }
    }

    #[test]
    fn tied_group_sums_components() {
        let c = circuit();
        let grid = KnobGrid::coarse();
        let g = tied_group(
            &c,
            &COMPONENT_IDS,
            "all",
            &grid,
            1.0,
            CostKind::LeakagePower,
        );
        let p = KnobPoint::nominal();
        let cand = g
            .candidates()
            .iter()
            .find(|cand| cand.knobs == grid.snap(p))
            .expect("nominal snaps to grid");
        let m = c.analyze(&ComponentKnobs::uniform(grid.snap(p)));
        assert!((cand.delay - m.access_time().0).abs() < 1e-15);
        assert!((cand.cost - m.leakage().total().0).abs() < 1e-12);
    }

    #[test]
    fn delay_weight_scales_delay_only() {
        let c = circuit();
        let grid = KnobGrid::coarse();
        let g1 = component_group(&c, ComponentId::DataBus, &grid, 1.0, CostKind::LeakagePower);
        let g2 = component_group(
            &c,
            ComponentId::DataBus,
            &grid,
            0.05,
            CostKind::LeakagePower,
        );
        for (a, b) in g1.candidates().iter().zip(g2.candidates()) {
            assert!((b.delay - 0.05 * a.delay).abs() < 1e-18);
            assert_eq!(a.cost, b.cost);
        }
    }

    #[test]
    fn energy_cost_combines_leakage_and_dynamic() {
        let c = circuit();
        let grid = KnobGrid::coarse();
        let t_ref = 1.5e-9;
        let g = component_group(
            &c,
            ComponentId::MemoryArray,
            &grid,
            1.0,
            CostKind::Energy {
                t_ref,
                access_rate: 1.0,
                write_fraction: 0.25,
            },
        );
        for cand in g.candidates() {
            let m = c.analyze_component(ComponentId::MemoryArray, cand.knobs);
            let dynamic = 0.75 * m.read_energy.0 + 0.25 * m.write_energy.0;
            let expected = m.leakage.total().0 * t_ref + dynamic;
            assert!((cand.cost - expected).abs() < 1e-18);
        }
    }

    #[test]
    fn knobs_roundtrip_per_scheme() {
        let a = KnobPoint::fastest();
        let b = KnobPoint::lowest_leakage();
        let knobs = knobs_from_choice(Scheme::Split, &[b, a]);
        assert_eq!(knobs[ComponentId::MemoryArray], b);
        assert_eq!(knobs[ComponentId::AddressBus], a);
        let u = knobs_from_choice(Scheme::Uniform, &[a]);
        assert_eq!(u[ComponentId::Decoder], a);
        let pc = knobs_from_choice(Scheme::PerComponent, &[a, b, a, b]);
        assert_eq!(pc[ComponentId::Decoder], b);
    }

    #[test]
    fn layout_partitions_components_and_matches_group_names() {
        let c = circuit();
        let grid = KnobGrid::coarse();
        for scheme in Scheme::ALL {
            let layout = scheme.layout();
            assert_eq!(layout.len(), scheme.group_count(), "{scheme}");
            // Every component appears exactly once across the layout.
            let mut seen: Vec<ComponentId> =
                layout.iter().flat_map(|(ids, _)| ids.clone()).collect();
            seen.sort_by_key(|id| id.index());
            assert_eq!(seen, COMPONENT_IDS.to_vec(), "{scheme}");
            // Group names derive from the layout suffixes.
            let groups = cache_groups(&c, scheme, &grid, 1.0, CostKind::LeakagePower);
            for (g, (_, suffix)) in groups.iter().zip(&layout) {
                assert_eq!(g.name(), format!("{}:{suffix}", c.config()));
            }
        }
    }

    #[test]
    fn cost_kind_objective_matches_candidate_cost() {
        let c = circuit();
        let grid = KnobGrid::coarse();
        let energy = CostKind::Energy {
            t_ref: 1.5e-9,
            access_rate: 0.07,
            write_fraction: 0.25,
        };
        for cost in [CostKind::LeakagePower, energy] {
            let g = tied_group(&c, &COMPONENT_IDS, "all", &grid, 1.0, cost);
            for cand in g.candidates() {
                let metrics: Vec<ComponentMetrics> = COMPONENT_IDS
                    .iter()
                    .map(|&id| c.analyze_component(id, cand.knobs))
                    .collect();
                let sample = sample_over(metrics.iter());
                assert_eq!(cand.cost, cost.cost(&sample));
                assert_eq!(cand.delay, sample.delay);
            }
        }
    }

    #[test]
    fn scheme_display() {
        assert_eq!(Scheme::PerComponent.to_string(), "scheme I");
        assert_eq!(Scheme::Split.numeral(), "II");
        assert_eq!(Scheme::Uniform.numeral(), "III");
    }
}
