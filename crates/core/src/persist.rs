//! Bit-exact persistence codecs for computed evaluation artefacts.
//!
//! The engine's results are pure functions of their inputs, which makes
//! persistence a *content-addressing* problem: a record is keyed by a
//! stable 128-bit FNV-1a hash of everything its bytes depend on — the
//! circuit (configuration, technology node with all fitted parameters
//! and temperature, cell, organisation, cell-technology profile), the
//! component or hierarchy spec, the knob grid, and the codec version.
//! Equal keys imply equal payloads, so a store never needs updates and
//! stale entries are structurally impossible: any input change changes
//! the key.
//!
//! Payloads are little-endian and carry raw `f64` bit patterns — no
//! textual round-trip anywhere — so `decode(encode(x))` is bit-identical
//! to `x`, signed zeros and all. Decoding is paranoid (it revalidates
//! lengths, tags, versions and knob ranges) because these bytes come
//! from disk: a corrupt or incompatible payload decodes to a typed
//! [`PersistError`], never a panic, and the evaluation engine treats
//! that as a cache miss.
//!
//! The circuit and spec fingerprints feed `Debug` renderings into the
//! key hash. Rust formats `f64` with the shortest round-trip
//! representation, so two circuits hash identically exactly when every
//! parameter is bit-identical — the same strictness the in-memory memo
//! caches get from `PartialEq`.

use crate::eval::HierarchySpec;
use nm_device::units::{Angstroms, Joules, Seconds, SquareMicrons, Volts, Watts};
use nm_device::KnobPoint;
use nm_geometry::{CacheCircuit, ComponentId, ComponentMetrics, ComponentSurface};
use nm_opt::merge::FrontPoint;
use nm_store::KeyHasher;
use std::fmt;

/// Version of the payload encodings below. Bump on any layout change —
/// the version participates in every content key, so old records simply
/// stop being found (never misread).
pub const PERSIST_FORMAT_VERSION: u32 = 1;

/// Payload kind tag: a component metric surface.
const KIND_SURFACE: u8 = 1;
/// Payload kind tag: a merged system Pareto front.
const KIND_FRONT: u8 = 2;

/// A persisted payload failed decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// What failed, for diagnostics.
    pub detail: String,
}

impl PersistError {
    fn new(detail: impl Into<String>) -> Self {
        PersistError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "persisted payload rejected: {}", self.detail)
    }
}

impl std::error::Error for PersistError {}

/// Feeds the knob grid's exact point sequence into a key.
fn push_points(h: &mut KeyHasher, points: &[KnobPoint]) {
    h.push_u64(points.len() as u64);
    for p in points {
        h.push_f64_bits(p.vth().0);
        h.push_f64_bits(p.tox().0);
    }
}

/// Feeds a circuit fingerprint into a key: the `Debug` rendering covers
/// the configuration, the technology node (every fitted parameter and
/// the operating temperature), the cell design, the subarray
/// organisation and the cell-technology profile — everything the
/// circuit model reads.
fn push_circuit(h: &mut KeyHasher, circuit: &CacheCircuit) {
    h.push_str(&format!("{circuit:?}"));
}

/// The content key of one component metric surface.
pub fn surface_key(circuit: &CacheCircuit, component: ComponentId, points: &[KnobPoint]) -> u128 {
    let mut h = KeyHasher::new();
    h.push_str("nmcache.surface");
    h.push_u64(u64::from(PERSIST_FORMAT_VERSION));
    push_circuit(&mut h, circuit);
    h.push_u64(component.index() as u64);
    push_points(&mut h, points);
    h.finish()
}

/// The content key of one hierarchy spec's merged Pareto front.
pub fn front_key(spec: &HierarchySpec, points: &[KnobPoint]) -> u128 {
    let mut h = KeyHasher::new();
    h.push_str("nmcache.front");
    h.push_u64(u64::from(PERSIST_FORMAT_VERSION));
    h.push_u64(spec.levels().len() as u64);
    for level in spec.levels() {
        h.push_str(level.label());
        push_circuit(&mut h, level.circuit());
        h.push_str(&format!("{:?}", level.scheme()));
        h.push_f64_bits(level.delay_weight());
        h.push_str(&format!("{:?}", level.cost()));
    }
    push_points(&mut h, points);
    h.finish()
}

/// Little-endian byte writer for the payload encodings.
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn new(kind: u8) -> Self {
        let mut out = Vec::new();
        out.push(kind);
        out.extend_from_slice(&PERSIST_FORMAT_VERSION.to_le_bytes());
        Writer { out }
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Little-endian cursor over a persisted payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], kind: u8) -> Result<Self, PersistError> {
        let mut r = Reader { bytes, at: 0 };
        let got_kind = r.u8()?;
        if got_kind != kind {
            return Err(PersistError::new(format!(
                "payload kind {got_kind} where {kind} was expected"
            )));
        }
        let version = r.u32()?;
        if version != PERSIST_FORMAT_VERSION {
            return Err(PersistError::new(format!(
                "payload format version {version} (this build reads {PERSIST_FORMAT_VERSION})"
            )));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| PersistError::new("payload truncated"))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn f64_bits(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length field about to size an allocation: bounded by what the
    /// payload could physically contain, so a corrupt count cannot
    /// provoke a huge allocation before the truncation check fires.
    fn count(&mut self, per_item_bytes: usize) -> Result<usize, PersistError> {
        let n = self.u64()?;
        let remaining = (self.bytes.len() - self.at) as u64;
        if n.saturating_mul(per_item_bytes as u64) > remaining {
            return Err(PersistError::new(format!(
                "count {n} exceeds the payload's remaining {remaining} bytes"
            )));
        }
        Ok(n as usize)
    }

    fn finish(self) -> Result<(), PersistError> {
        if self.at != self.bytes.len() {
            return Err(PersistError::new(format!(
                "{} trailing bytes after the payload",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }

    fn knob_point(&mut self) -> Result<KnobPoint, PersistError> {
        let vth = self.f64_bits()?;
        let tox = self.f64_bits()?;
        KnobPoint::new(Volts(vth), Angstroms(tox))
            .map_err(|e| PersistError::new(format!("stored knob point out of range: {e}")))
    }
}

/// Encodes a component surface: points, then the eight metric buffers in
/// point order, all as raw bit patterns.
pub fn encode_surface(surface: &ComponentSurface) -> Vec<u8> {
    let mut w = Writer::new(KIND_SURFACE);
    let n = surface.len();
    w.u64(n as u64);
    for p in surface.points() {
        w.f64_bits(p.vth().0);
        w.f64_bits(p.tox().0);
    }
    for buffer in [
        surface.delays(),
        surface.subthreshold_leakages(),
        surface.gate_leakages(),
        surface.junction_leakages(),
        surface.read_energies(),
        surface.write_energies(),
        surface.areas(),
    ] {
        for &v in buffer {
            w.f64_bits(v);
        }
    }
    for &t in surface.transistor_counts() {
        w.u64(t);
    }
    w.out
}

/// Decodes a surface payload back to a bit-identical [`ComponentSurface`].
///
/// # Errors
///
/// [`PersistError`] on any structural mismatch — truncation, wrong kind
/// or version, out-of-range knob values, trailing bytes.
pub fn decode_surface(bytes: &[u8]) -> Result<ComponentSurface, PersistError> {
    let mut r = Reader::new(bytes, KIND_SURFACE)?;
    // Each point costs 16 bytes up front plus 64 more across the metric
    // buffers; 16 is the binding bound for the immediate reads.
    let n = r.count(16)?;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        points.push(r.knob_point()?);
    }
    let mut buffers: [Vec<f64>; 7] = Default::default();
    for buffer in &mut buffers {
        buffer.reserve_exact(n);
        for _ in 0..n {
            buffer.push(r.f64_bits()?);
        }
    }
    let mut transistors = Vec::with_capacity(n);
    for _ in 0..n {
        transistors.push(r.u64()?);
    }
    r.finish()?;
    let metrics: Vec<ComponentMetrics> = (0..n)
        .map(|i| ComponentMetrics {
            delay: Seconds(buffers[0][i]),
            leakage: nm_device::leakage::LeakageBreakdown {
                subthreshold: Watts(buffers[1][i]),
                gate: Watts(buffers[2][i]),
                junction: Watts(buffers[3][i]),
            },
            read_energy: Joules(buffers[4][i]),
            write_energy: Joules(buffers[5][i]),
            transistors: transistors[i],
            area: SquareMicrons(buffers[6][i]),
        })
        .collect();
    Ok(ComponentSurface::from_parts(points, metrics))
}

/// Encodes a merged Pareto front: per point, delay and cost bit
/// patterns plus the knob choice vector.
pub fn encode_front(front: &[FrontPoint]) -> Vec<u8> {
    let mut w = Writer::new(KIND_FRONT);
    w.u64(front.len() as u64);
    for p in front {
        w.f64_bits(p.delay);
        w.f64_bits(p.cost);
        w.u64(p.choice.len() as u64);
        for k in &p.choice {
            w.f64_bits(k.vth().0);
            w.f64_bits(k.tox().0);
        }
    }
    w.out
}

/// Decodes a front payload back to a bit-identical `Vec<FrontPoint>`.
///
/// # Errors
///
/// [`PersistError`] on any structural mismatch (see
/// [`decode_surface`]).
pub fn decode_front(bytes: &[u8]) -> Result<Vec<FrontPoint>, PersistError> {
    let mut r = Reader::new(bytes, KIND_FRONT)?;
    // A front point is at least delay + cost + choice length: 24 bytes.
    let n = r.count(24)?;
    let mut front = Vec::with_capacity(n);
    for _ in 0..n {
        let delay = r.f64_bits()?;
        let cost = r.f64_bits()?;
        let groups = r.count(16)?;
        let mut choice = Vec::with_capacity(groups);
        for _ in 0..groups {
            choice.push(r.knob_point()?);
        }
        front.push(FrontPoint {
            delay,
            cost,
            choice,
        });
    }
    r.finish()?;
    Ok(front)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::{CostKind, Scheme};
    use nm_device::{KnobGrid, TechnologyNode};
    use nm_geometry::CacheConfig;

    fn circuit(bytes: u64) -> CacheCircuit {
        let tech = TechnologyNode::bptm65();
        CacheCircuit::new(CacheConfig::new(bytes, 64, 4).unwrap(), &tech)
    }

    #[test]
    fn surface_round_trips_bit_identical() {
        let c = circuit(16 * 1024);
        let points: Vec<KnobPoint> = KnobGrid::coarse().points().collect();
        let surface = c.component_surface(ComponentId::Decoder, &points);
        let decoded = decode_surface(&encode_surface(&surface)).expect("round trip");
        assert_eq!(decoded, surface);
        // Bit-level check on every buffer, not just PartialEq.
        for (a, b) in surface.delays().iter().zip(decoded.delays()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in surface.areas().iter().zip(decoded.areas()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(surface.transistor_counts(), decoded.transistor_counts());
    }

    #[test]
    fn front_round_trips_bit_identical_including_signed_zero() {
        let front = vec![
            FrontPoint {
                delay: 1.5e-9,
                cost: -0.0, // signed zero must survive by bit pattern
                choice: vec![KnobPoint::fastest(), KnobPoint::lowest_leakage()],
            },
            FrontPoint {
                delay: 2.5e-9,
                cost: 0.25,
                choice: vec![KnobPoint::nominal()],
            },
        ];
        let decoded = decode_front(&encode_front(&front)).expect("round trip");
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].cost.to_bits(), (-0.0f64).to_bits());
        assert_eq!(decoded, front);
    }

    #[test]
    fn truncated_and_oversized_payloads_are_typed_errors() {
        let front = vec![FrontPoint {
            delay: 1.0,
            cost: 2.0,
            choice: vec![KnobPoint::nominal()],
        }];
        let bytes = encode_front(&front);
        for cut in [0, 1, 4, bytes.len() - 1] {
            assert!(decode_front(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected, not ignored.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_front(&padded).is_err());
        // A forged huge count fails the remaining-bytes bound instead of
        // allocating.
        let mut forged = bytes.clone();
        forged[5..13].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_front(&forged).expect_err("forged count");
        assert!(err.detail.contains("count"), "{err}");
        // Kind confusion is rejected.
        assert!(decode_surface(&bytes).is_err());
    }

    #[test]
    fn out_of_range_stored_knobs_are_rejected() {
        let front = vec![FrontPoint {
            delay: 1.0,
            cost: 2.0,
            choice: vec![KnobPoint::nominal()],
        }];
        let mut bytes = encode_front(&front);
        // The choice's vth sits after kind(1)+version(4)+count(8)+
        // delay(8)+cost(8)+choice_len(8) = 37 bytes.
        bytes[37..45].copy_from_slice(&9.9f64.to_bits().to_le_bytes());
        let err = decode_front(&bytes).expect_err("vth 9.9 is illegal");
        assert!(err.detail.contains("out of range"), "{err}");
    }

    #[test]
    fn keys_separate_every_input() {
        let points: Vec<KnobPoint> = KnobGrid::coarse().points().collect();
        let c16 = circuit(16 * 1024);
        let c32 = circuit(32 * 1024);
        let base = surface_key(&c16, ComponentId::Decoder, &points);
        assert_eq!(base, surface_key(&c16, ComponentId::Decoder, &points));
        assert_ne!(base, surface_key(&c32, ComponentId::Decoder, &points));
        assert_ne!(base, surface_key(&c16, ComponentId::MemoryArray, &points));
        assert_ne!(
            base,
            surface_key(&c16, ComponentId::Decoder, &points[..points.len() - 1])
        );
        // A different temperature is a different technology node — and a
        // different key.
        let tech =
            TechnologyNode::bptm65().at_temperature(nm_device::units::Kelvin::from_celsius(100.0));
        let hot = CacheCircuit::new(CacheConfig::new(16 * 1024, 64, 4).unwrap(), &tech);
        assert_ne!(base, surface_key(&hot, ComponentId::Decoder, &points));
    }

    #[test]
    fn front_keys_separate_spec_shape() {
        let points: Vec<KnobPoint> = KnobGrid::coarse().points().collect();
        let spec = |w: f64| {
            HierarchySpec::single(circuit(16 * 1024), Scheme::Split, w, CostKind::LeakagePower)
        };
        let a = front_key(&spec(1.0), &points);
        assert_eq!(a, front_key(&spec(1.0), &points));
        assert_ne!(a, front_key(&spec(0.5), &points));
        let two = HierarchySpec::new()
            .level(
                "L1",
                circuit(16 * 1024),
                Scheme::Split,
                1.0,
                CostKind::LeakagePower,
            )
            .level(
                "L2",
                circuit(64 * 1024),
                Scheme::Split,
                0.05,
                CostKind::LeakagePower,
            );
        assert_ne!(a, front_key(&two, &points));
        // Surface and front keys never collide on the same material.
        assert_ne!(
            a,
            surface_key(&circuit(16 * 1024), ComponentId::Decoder, &points)
        );
    }
}
