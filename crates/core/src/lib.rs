//! # nm-cache-core — the paper's studies as a library
//!
//! This crate drives the substrates (`nm-device`, `nm-geometry`,
//! `nm-archsim`, `nm-opt`) through the experiments of *"Power-Performance
//! Trade-Offs in Nanometer-Scale Multi-Level Caches Considering Total
//! Leakage"* (Bai et al., DATE 2005):
//!
//! | Experiment | Paper artefact | Entry point |
//! |---|---|---|
//! | E1 | Figure 1 (fixed-Vth vs fixed-Tox, 16 KB) | [`single::SingleCacheStudy::fixed_knob_curves`] |
//! | E2 | Section 4 scheme comparison | [`single::SingleCacheStudy::scheme_comparison`] |
//! | E3 | Section 5 L2 size sweep (single pair) | [`twolevel::TwoLevelStudy::l2_size_sweep`] |
//! | E4 | Section 5 L2 split cell/periphery | [`twolevel::TwoLevelStudy::l2_size_sweep`] with [`groups::Scheme::Split`] |
//! | E5 | Section 5 L1 size sweep | [`twolevel::TwoLevelStudy::l1_size_sweep`] |
//! | E6 | Figure 2 (Tox, Vth) tuple problem | [`memsys::MemorySystemStudy::tuple_curves`] |
//! | E7 | "Vth is the better knob" ablation | [`single::SingleCacheStudy::knob_ablation`] |
//! | E0 | Eq. 1/Eq. 2 surface-fit quality | [`fitcheck::fit_report`] |
//! | E8 | Extension: 3-level mixed-technology hierarchy | [`mixedtech::MixedTechStudy`] |
//! | X1 | Extension: die-to-die variation | [`variation::VariationStudy`] |
//! | X2 | Extension: temperature sensitivity | [`thermal::ThermalStudy`] |
//! | X3 | Extension: knobs vs cache decay (gated-Vdd) | [`decay::DecayStudy`] |
//! | X4 | Extension: split I$/D$ vs unified L1 | [`splitl1::SplitL1Study`] |
//!
//! All four study pipelines run on the shared evaluation engine in
//! [`mod@eval`]: a [`eval::HierarchySpec`] describes the cache levels and
//! their knob grouping, and one memoizing [`eval::Evaluator`] enumerates
//! candidates, merges Pareto fronts and reads constrained optima off
//! them — each `(component, knob point)` is analysed exactly once per
//! evaluator no matter how many schemes, deadlines or sizes share it.
//!
//! ```
//! use nm_cache_core::single::SingleCacheStudy;
//! use nm_cache_core::groups::Scheme;
//!
//! let study = SingleCacheStudy::paper_16kb()?;
//! let sweep = study.delay_sweep(5);
//! let sol = study.optimize(Scheme::Split, sweep[2]).expect("feasible");
//! assert!(sol.leakage.total().0 > 0.0);
//! # Ok::<(), nm_cache_core::StudyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amat;
pub mod campaign;
pub mod decay;
pub mod eval;
pub mod experiments;
pub mod fitcheck;
pub mod groups;
pub mod memsys;
pub mod mixedtech;
pub mod names;
pub mod persist;
pub mod plot;
pub mod report;
pub mod sensitivity;
pub mod single;
pub mod splitl1;
pub mod thermal;
pub mod twolevel;
pub mod variation;

mod error;

pub use error::StudyError;
pub use report::Table;
