//! Extension study: leakage optima under die-to-die process variation.
//!
//! The paper optimises at nominal corners. This study asks what its
//! Scheme II optimum looks like on real silicon: every component's knob
//! pair shifts by a common die corner, and because leakage is exponential
//! in `Vth`, the *mean* leakage across dies exceeds nominal and the tail
//! (p95/p99) exceeds it further. The study also evaluates a simple
//! guard-banding remedy — optimising against a `Vth` lowered by `k·σ`.

use crate::groups::Scheme;
use crate::report::{cell, Table};
use crate::single::SingleCacheStudy;
use nm_device::units::{Seconds, Volts, Watts};
use nm_device::variation::{MonteCarlo, VariationDistribution, VariationModel};
use nm_device::KnobPoint;
use nm_geometry::{ComponentKnobs, COMPONENT_IDS};
use nm_sweep::ParallelSweep;
use serde::{Deserialize, Serialize};

/// Distribution of whole-cache leakage for one deadline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationRow {
    /// Delay constraint the assignment was optimised for.
    pub deadline: Seconds,
    /// Nominal (variation-free) leakage of the optimum.
    pub nominal: Watts,
    /// Leakage distribution across sampled die corners.
    pub distribution: VariationDistribution,
    /// Fraction of dies that still meet the deadline.
    pub timing_yield: f64,
}

/// Variation study over a [`SingleCacheStudy`] subject.
#[derive(Debug, Clone)]
pub struct VariationStudy {
    study: SingleCacheStudy,
    model: VariationModel,
    samples: usize,
    seed: u64,
}

impl VariationStudy {
    /// Creates the study. `samples` die corners are drawn per deadline.
    pub fn new(study: SingleCacheStudy, model: VariationModel, samples: usize, seed: u64) -> Self {
        VariationStudy {
            study,
            model,
            samples,
            seed,
        }
    }

    /// The underlying single-cache study (for deadline sweeps).
    pub fn study(&self) -> &SingleCacheStudy {
        &self.study
    }

    /// Shifts every component of an assignment by one die corner (global
    /// variation: all components move together).
    #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: clamped to legal window
    fn shift(knobs: &ComponentKnobs, from: KnobPoint, to: KnobPoint) -> ComponentKnobs {
        let dv = to.vth().0 - from.vth().0;
        let dt = to.tox().0 - from.tox().0;
        let mut out = *knobs;
        for id in COMPONENT_IDS {
            let p = knobs.get(id);
            let vth = (p.vth().0 + dv)
                .clamp(nm_device::knobs::VTH_RANGE.0, nm_device::knobs::VTH_RANGE.1);
            let tox = (p.tox().0 + dt)
                .clamp(nm_device::knobs::TOX_RANGE.0, nm_device::knobs::TOX_RANGE.1);
            out[id] = KnobPoint::new(Volts(vth), nm_device::units::Angstroms(tox))
                .expect("clamped to legal window");
        }
        out
    }

    /// Evaluates the Scheme II optimum at each deadline across die
    /// corners.
    pub fn evaluate(&self, deadlines: &[Seconds]) -> Vec<VariationRow> {
        let mut rows = Vec::new();
        for &deadline in deadlines {
            let Some(sol) = self.study.optimize(Scheme::Split, deadline) else {
                continue;
            };
            let circuit = self.study.circuit();
            let mut mc = MonteCarlo::new(self.model, self.seed);
            let reference = KnobPoint::nominal();
            // Corners are drawn serially (one RNG stream, same sequence as
            // the old serial loop); only the expensive circuit analysis
            // fans out onto the bounded executor.
            let corners: Vec<KnobPoint> = (0..self.samples)
                .map(|_| mc.sample_corner(reference))
                .collect();
            let evals: Vec<(f64, bool)> =
                ParallelSweep::new()
                    .labeled("variation-corners")
                    .map(&corners, |&corner| {
                        let shifted = Self::shift(&sol.knobs, reference, corner);
                        let m = circuit.analyze(&shifted);
                        (m.leakage().total().0, m.access_time().0 <= deadline.0)
                    });
            let leaks: Vec<f64> = evals.iter().map(|&(leak, _)| leak).collect();
            let meets = evals.iter().filter(|&&(_, ok)| ok).count();
            rows.push(VariationRow {
                deadline,
                nominal: sol.leakage.total(),
                distribution: VariationDistribution::from_samples(leaks),
                timing_yield: meets as f64 / self.samples as f64,
            });
        }
        rows
    }

    /// Renders the study as a table (powers in mW).
    pub fn to_table(&self, deadlines: &[Seconds]) -> Table {
        let rows = self.evaluate(deadlines);
        let mut t = Table::new(
            format!(
                "Leakage under die-to-die variation (σVth = {:.0} mV, σTox = {:.2} Å), {}",
                self.model.sigma_vth.0 * 1e3,
                self.model.sigma_tox.0,
                self.study.circuit().config()
            ),
            &[
                "deadline (ps)",
                "nominal (mW)",
                "mean (mW)",
                "p95 (mW)",
                "p99 (mW)",
                "timing yield",
            ],
        );
        for r in &rows {
            t.push_row(vec![
                cell(r.deadline.picos(), 0),
                cell(r.nominal.milli(), 3),
                cell(r.distribution.mean * 1e3, 3),
                cell(r.distribution.p95 * 1e3, 3),
                cell(r.distribution.p99 * 1e3, 3),
                cell(r.timing_yield, 3),
            ]);
        }
        t
    }
}

/// Convenience: the default variation study on the paper's 16 KB cache.
///
/// # Errors
///
/// Propagates construction errors from [`SingleCacheStudy::paper_16kb`].
pub fn paper_16kb_variation(
    samples: usize,
    seed: u64,
) -> Result<VariationStudy, crate::StudyError> {
    Ok(VariationStudy::new(
        SingleCacheStudy::paper_16kb()?,
        VariationModel::typical_65nm(),
        samples,
        seed,
    ))
}

impl Default for VariationStudy {
    #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: paper configuration is valid
    fn default() -> Self {
        paper_16kb_variation(200, 65).expect("paper configuration is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::{KnobGrid, TechnologyNode};
    use nm_geometry::CacheConfig;

    fn quick() -> VariationStudy {
        let tech = TechnologyNode::bptm65();
        let study = SingleCacheStudy::new(
            CacheConfig::new(16 * 1024, 64, 4).unwrap(),
            &tech,
            KnobGrid::coarse(),
        );
        VariationStudy::new(study, VariationModel::typical_65nm(), 64, 3)
    }

    #[test]
    fn variation_raises_mean_above_nominal() {
        let vs = quick();
        let deadlines = vs.study.delay_sweep(5);
        let rows = vs.evaluate(&deadlines[2..4]);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.distribution.mean > r.nominal.0,
                "mean {:.3e} ≤ nominal {:.3e}",
                r.distribution.mean,
                r.nominal.0
            );
            assert!(r.distribution.p95 >= r.distribution.p50);
        }
    }

    #[test]
    fn timing_yield_is_a_probability_and_not_trivial() {
        let vs = quick();
        let deadlines = vs.study.delay_sweep(5);
        let rows = vs.evaluate(&deadlines[2..3]);
        let y = rows[0].timing_yield;
        assert!((0.0..=1.0).contains(&y));
        // With the optimum sitting on the constraint, roughly half the
        // dies violate timing — the motivation for guard-banding.
        assert!(y < 0.999, "yield suspiciously perfect: {y}");
    }

    #[test]
    fn table_renders_with_all_columns() {
        let vs = quick();
        let deadlines = vs.study.delay_sweep(4);
        let t = vs.to_table(&deadlines[2..3]);
        assert_eq!(t.headers().len(), 6);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn shift_is_identity_for_same_corner() {
        let knobs = ComponentKnobs::default();
        let p = KnobPoint::nominal();
        assert_eq!(VariationStudy::shift(&knobs, p, p), knobs);
    }
}
