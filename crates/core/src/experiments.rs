//! The experiment registry: a machine-readable index of every reproduced
//! artefact (the programmatic counterpart of `DESIGN.md`'s table).

use crate::report::Table;
use serde::{Deserialize, Serialize};

/// One reproducible artefact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Experiment {
    /// Short id (`"E1"`, `"X3"`, …).
    pub id: &'static str,
    /// The paper artefact or extension it regenerates.
    pub artefact: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The bench target that regenerates it (`cargo bench --bench …`).
    pub bench: &'static str,
    /// The `nmcache` CLI subcommand covering it, if any.
    pub cli: Option<&'static str>,
}

/// Every experiment, in the order of `DESIGN.md`'s index.
pub const ALL: [Experiment; 15] = [
    Experiment {
        id: "E1",
        artefact: "Figure 1",
        title: "fixed-Vth vs fixed-Tox leakage/access-time curves (16 KB)",
        bench: "fig1_fixed_knobs",
        cli: Some("fig1"),
    },
    Experiment {
        id: "E2",
        artefact: "Section 4",
        title: "assignment schemes I/II/III at iso-delay",
        bench: "table2_schemes",
        cli: Some("schemes"),
    },
    Experiment {
        id: "E3",
        artefact: "Section 5",
        title: "L2 size sweep with a single knob pair at iso-AMAT",
        bench: "table3_l2_size",
        cli: Some("l2-sweep"),
    },
    Experiment {
        id: "E4",
        artefact: "Section 5",
        title: "L2 split cell/periphery pairs move the winner smaller",
        bench: "table4_l2_split",
        cli: Some("l2-sweep --scheme split"),
    },
    Experiment {
        id: "E5",
        artefact: "Section 5",
        title: "L1 size sweep with fixed L2 (small L1 wins)",
        bench: "table5_l1_size",
        cli: Some("l1-sweep"),
    },
    Experiment {
        id: "E6",
        artefact: "Figure 2",
        title: "(Tox, Vth) tuple problem: energy vs AMAT",
        bench: "fig2_tuples",
        cli: Some("fig2"),
    },
    Experiment {
        id: "E7",
        artefact: "Section 4",
        title: "single-knob ablation ('Vth is the better knob')",
        bench: "table6_knob_ablation",
        cli: Some("ablation"),
    },
    Experiment {
        id: "E0",
        artefact: "Section 3",
        title: "Eq.1/Eq.2 surface-fit quality per component",
        bench: "table1_model_fit",
        cli: Some("fit"),
    },
    Experiment {
        id: "E8",
        artefact: "extension",
        title: "3-level mixed-technology hierarchy (SRAM/eDRAM/STT-MRAM L3)",
        bench: "table12_mixed_tech",
        cli: Some("e8"),
    },
    Experiment {
        id: "X1",
        artefact: "extension",
        title: "die-to-die variation on the Scheme II optimum",
        bench: "table7_variation",
        cli: Some("variation"),
    },
    Experiment {
        id: "X2",
        artefact: "extension",
        title: "temperature sensitivity (25/80/110 °C)",
        bench: "table8_temperature",
        cli: Some("thermal"),
    },
    Experiment {
        id: "X3",
        artefact: "extension",
        title: "process knobs vs cache decay (gated-Vdd)",
        bench: "table9_decay",
        cli: Some("decay"),
    },
    Experiment {
        id: "X4",
        artefact: "extension",
        title: "split I$/D$ vs unified L1 at iso mean access time",
        bench: "table10_split_l1",
        cli: Some("split-l1"),
    },
    Experiment {
        id: "T0",
        artefact: "audit",
        title: "workload substitution audit (miss-rate shapes)",
        bench: "table0_workload_validation",
        cli: Some("missrates"),
    },
    Experiment {
        id: "T11",
        artefact: "ablation",
        title: "calibration ablation of κ/Bg/λ",
        bench: "table11_calibration_ablation",
        cli: None,
    },
];

/// Looks an experiment up by id (case-insensitive).
pub fn find(id: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.id.eq_ignore_ascii_case(id))
}

/// Renders the registry as a table.
pub fn registry_table() -> Table {
    let mut t = Table::new(
        "Experiment registry (see DESIGN.md / EXPERIMENTS.md)",
        &["id", "artefact", "title", "bench", "cli"],
    );
    for e in &ALL {
        t.push_row(vec![
            e.id.to_owned(),
            e.artefact.to_owned(),
            e.title.to_owned(),
            e.bench.to_owned(),
            e.cli.unwrap_or("-").to_owned(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = ALL.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL.len());
    }

    #[test]
    fn find_is_case_insensitive() {
        assert_eq!(find("e1").unwrap().bench, "fig1_fixed_knobs");
        assert_eq!(find("X3").unwrap().cli, Some("decay"));
        assert!(find("E99").is_none());
    }

    #[test]
    fn every_bench_target_exists_on_disk() {
        // Registry entries must point at real bench files.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../bench/benches");
        for e in &ALL {
            let path = dir.join(format!("{}.rs", e.bench));
            assert!(path.exists(), "{}: missing {}", e.id, path.display());
        }
    }

    #[test]
    fn registry_table_has_all_rows() {
        assert_eq!(registry_table().len(), ALL.len());
    }
}
