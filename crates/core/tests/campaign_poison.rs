//! Poisoned-cell containment in the campaign engine.
//!
//! Arms the sweep executor's deterministic fault plan
//! (`nm_sweep::faultinject`) so one cell's surface build panics: the
//! panic is contained by the executor, surfaces as a typed
//! `StudyError::WorkerPanic`, and fails *its cell* — the campaign
//! records the failure and completes every other cell. The failure is
//! checkpointed like any other outcome, so a resumed campaign does not
//! silently retry it; `fresh` does.
//!
//! Compile with `--features faultinject`; without the feature this file
//! is empty.

#![cfg(feature = "faultinject")]

use nm_cache_core::campaign::{Campaign, CampaignConfig};
use nm_cache_core::groups::Scheme;
use nm_device::TechProfile;
use nm_sweep::faultinject::{self, Fault};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// The fault plan is process-global; serialize every test that arms it.
fn plan_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn config() -> CampaignConfig {
    CampaignConfig {
        l1_sizes: vec![16 * 1024],
        l2_sizes: vec![64 * 1024],
        schemes: vec![Scheme::Uniform],
        l2_techs: vec![TechProfile::sram()],
        temperatures_c: vec![40.0, 80.0],
        slack: 0.2,
        quick: true,
        checkpoint_every: 1,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nm-camppoison-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
    dir
}

fn ckpt(dir: &Path) -> PathBuf {
    dir.join("checkpoint.nmck")
}

#[test]
fn poisoned_cell_fails_alone_and_the_campaign_completes() {
    let _guard = plan_lock();
    faultinject::clear();

    let dir = tmpdir("contain");
    // The first cell's bulk surface build panics on job 0; the executor
    // contains it and the cell is recorded as failed.
    faultinject::arm(Some("eval-surfaces"), 0, Fault::Panic, 1);
    let campaign = Campaign::new(config(), None);
    let out = campaign
        .run(&ckpt(&dir), false, None)
        .unwrap_or_else(|e| panic!("{e}"));
    faultinject::clear();

    assert!(out.complete, "a faulty cell must not abort the campaign");
    assert_eq!(out.computed, 2);
    assert_eq!(out.failed, 1);
    let failures = out.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].0, 0, "the armed cell is the failed one");
    assert!(failures[0].1.contains("panicked"), "{}", failures[0].1);
    // The healthy cell's row is in the table.
    assert_eq!(out.to_table().len(), 1);

    // The failure is durable: a resumed campaign (fresh process, no
    // faults armed) keeps the recorded outcome instead of silently
    // retrying the cell.
    let resumed = Campaign::new(config(), None);
    let out2 = resumed
        .run(&ckpt(&dir), false, None)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(out2.complete);
    assert_eq!(out2.computed, 0);
    assert_eq!(out2.resumed, 2);
    assert_eq!(out2.failed, 1);

    // `fresh` discards the poisoned record and, with no fault armed,
    // the retried cell succeeds.
    let retried = Campaign::new(config(), None);
    let out3 = retried
        .run(&ckpt(&dir), true, None)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(out3.complete);
    assert_eq!(out3.failed, 0);
    assert_eq!(out3.to_table().len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
