//! Memoization soundness: metrics served from the evaluation engine's
//! cached surfaces must agree **bit-for-bit** with direct
//! `analyze_component` calls, across the whole knob grid, and the groups
//! the engine assembles from those surfaces must equal the direct
//! `cache_groups` pipeline exactly.

use nm_cache_core::eval::{Evaluator, HierarchySpec};
use nm_cache_core::groups::{cache_groups, CostKind, Scheme};
use nm_device::units::{Angstroms, Volts};
use nm_device::{KnobGrid, KnobPoint, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig, ComponentKnobs, COMPONENT_IDS};
use nm_opt::constraint::best_under_deadline;
use nm_opt::merge::system_front;
use nm_opt::objective::Deadline;
use proptest::prelude::*;

fn circuit(bytes: u64, ways: u64) -> CacheCircuit {
    let tech = TechnologyNode::bptm65();
    CacheCircuit::new(CacheConfig::new(bytes, 64, ways).unwrap(), &tech)
}

/// Exhaustive: every `(component, knob point)` of the paper's fine grid,
/// memoized vs direct, compared with `==` on raw f64 fields (no epsilon).
#[test]
fn surfaces_agree_bitwise_with_direct_analysis_on_full_grid() {
    let grid = KnobGrid::paper();
    let points: Vec<KnobPoint> = grid.points().collect();
    let c = circuit(16 * 1024, 4);
    for id in COMPONENT_IDS {
        let surface = c.component_surface(id, &points);
        assert_eq!(surface.len(), points.len());
        for (p, cached) in surface.iter() {
            assert_eq!(cached, c.analyze_component(id, p), "{id} at {p}");
            assert_eq!(surface.lookup(p), Some(cached));
        }
    }
}

/// The engine's whole-cache analysis equals the circuit's, whether the
/// assignment is on-grid (surface-served) or off-grid (fallback).
#[test]
fn evaluator_analyze_is_bitwise_identical() {
    let grid = KnobGrid::coarse();
    let eval = Evaluator::new(grid.clone());
    let c = circuit(16 * 1024, 4);
    eval.ensure_surfaces(&HierarchySpec::single(
        c.clone(),
        Scheme::Uniform,
        1.0,
        CostKind::LeakagePower,
    ));
    // On-grid, per-component mixed assignment.
    let pts: Vec<KnobPoint> = grid.points().collect();
    let mixed = ComponentKnobs::per_component(
        pts[0],
        pts[1 % pts.len()],
        pts[2 % pts.len()],
        pts[3 % pts.len()],
    );
    assert_eq!(eval.analyze(&c, &mixed), c.analyze(&mixed));
    // Off-grid fallback.
    let off = ComponentKnobs::uniform(KnobPoint::new(Volts(0.317), Angstroms(11.3)).unwrap());
    assert_eq!(eval.analyze(&c, &off), c.analyze(&off));
}

/// Engine-assembled groups equal the direct pipeline for a multi-level
/// spec, and the memoized front yields the same optimum.
#[test]
fn two_level_groups_and_front_match_direct_pipeline() {
    let grid = KnobGrid::coarse();
    let eval = Evaluator::new(grid.clone());
    let l1 = circuit(16 * 1024, 4);
    let l2 = circuit(256 * 1024, 8);
    let m1 = 0.04;

    let spec = HierarchySpec::new()
        .level("L1", l1.clone(), Scheme::Split, 1.0, CostKind::LeakagePower)
        .level("L2", l2.clone(), Scheme::Split, m1, CostKind::LeakagePower);

    let mut direct = cache_groups(&l1, Scheme::Split, &grid, 1.0, CostKind::LeakagePower);
    direct.extend(cache_groups(
        &l2,
        Scheme::Split,
        &grid,
        m1,
        CostKind::LeakagePower,
    ));
    assert_eq!(eval.groups(&spec), direct);

    let front = system_front(&direct);
    assert_eq!(*eval.front(&spec), front);

    let deadline = front.last().expect("non-empty").delay * 0.9;
    let manual = best_under_deadline(&front, deadline);
    let solved = eval.solve(&spec, &Deadline(deadline));
    match (manual, solved) {
        (Some(p), Some(s)) => {
            assert_eq!(s.delay, p.delay);
            assert_eq!(s.cost, p.cost);
            assert_eq!(s.choice, p.choice);
        }
        (None, None) => {}
        (m, s) => panic!("feasibility disagreement: manual={m:?} solved={s:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property: at any grid point (picked by random axis indices) and
    /// any component, the memoized surface serves the exact bits direct
    /// analysis produces — for two different circuit geometries.
    #[test]
    fn memoized_metrics_match_direct_at_random_grid_points(
        vi in 0usize..100,
        ti in 0usize..100,
        comp in 0usize..4,
        big in proptest::bool::ANY,
    ) {
        let grid = KnobGrid::paper();
        let vths = grid.vth_values();
        let toxes = grid.tox_values();
        let p = KnobPoint::new(vths[vi % vths.len()], toxes[ti % toxes.len()]).expect("grid point");
        let c = if big { circuit(1024 * 1024, 8) } else { circuit(8 * 1024, 4) };
        let id = COMPONENT_IDS[comp];

        let points: Vec<KnobPoint> = grid.points().collect();
        let surface = c.component_surface(id, &points);
        let cached = surface.lookup(p).expect("every grid point is on the surface");
        let direct = c.analyze_component(id, p);
        prop_assert_eq!(cached, direct);
        // Bit-level, not just PartialEq: delays and leakages are raw f64s.
        prop_assert_eq!(cached.delay.0.to_bits(), direct.delay.0.to_bits());
        prop_assert_eq!(
            cached.leakage.total().0.to_bits(),
            direct.leakage.total().0.to_bits()
        );
        prop_assert_eq!(cached.read_energy.0.to_bits(), direct.read_energy.0.to_bits());
        prop_assert_eq!(cached.write_energy.0.to_bits(), direct.write_energy.0.to_bits());
    }

    /// Property: single-cache groups assembled from memoized surfaces
    /// equal `cache_groups` for every scheme and random delay weight.
    #[test]
    fn evaluator_groups_equal_direct_groups(
        scheme_idx in 0usize..3,
        weight in 0.01f64..1.0,
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let grid = KnobGrid::coarse();
        let eval = Evaluator::new(grid.clone());
        let c = circuit(32 * 1024, 4);
        let spec = HierarchySpec::single(c.clone(), scheme, weight, CostKind::LeakagePower);
        prop_assert_eq!(
            eval.groups(&spec),
            cache_groups(&c, scheme, &grid, weight, CostKind::LeakagePower)
        );
    }
}
