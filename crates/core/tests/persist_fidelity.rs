//! Property tests of the persist encodings' bit-level fidelity.
//!
//! The store tier must reproduce *exactly* the values it was handed:
//! every `f64` round-trips by bit pattern — signed zeros, subnormals,
//! infinities and NaN payloads included — because the evaluator's memo
//! caches key on bit-identical inputs and a canonicalising codec would
//! silently fork cache entries after a reload.

use nm_cache_core::persist::{decode_front, decode_surface, encode_front, encode_surface};
use nm_device::leakage::LeakageBreakdown;
use nm_device::units::{Joules, Seconds, SquareMicrons, Watts};
use nm_device::{KnobGrid, KnobPoint};
use nm_geometry::{ComponentMetrics, ComponentSurface};
use nm_opt::merge::FrontPoint;
use proptest::prelude::*;

/// Reinterprets raw bits as an `f64`, biasing toward the adversarial
/// corners: signed zeros, subnormals, infinities and NaNs with varied
/// payloads all appear alongside ordinary values.
fn bits_to_f64(bits: u64, corner: u8) -> f64 {
    match corner % 8 {
        0 => 0.0,
        1 => -0.0,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => f64::from_bits(0x7ff8_0000_0000_0000 | (bits >> 12)), // NaN payload
        5 => f64::from_bits(bits & 0x000f_ffff_ffff_ffff),         // subnormal
        _ => f64::from_bits(bits),
    }
}

/// A legal knob point picked from the paper grid by index.
fn grid_point(index: u8) -> KnobPoint {
    let points: Vec<KnobPoint> = KnobGrid::paper().points().collect();
    points[index as usize % points.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn front_round_trips_every_f64_bit_pattern(
        raw in proptest::collection::vec(
            (any::<u64>(), any::<u8>(), any::<u64>(), any::<u8>(), any::<u8>()),
            0..12),
    ) {
        let front: Vec<FrontPoint> = raw
            .iter()
            .map(|&(dbits, dcorner, cbits, ccorner, knob)| FrontPoint {
                delay: bits_to_f64(dbits, dcorner),
                cost: bits_to_f64(cbits, ccorner),
                choice: vec![grid_point(knob), grid_point(knob.wrapping_add(7))],
            })
            .collect();
        let decoded = decode_front(&encode_front(&front)).expect("round trip");
        prop_assert_eq!(decoded.len(), front.len());
        for (a, b) in front.iter().zip(&decoded) {
            prop_assert_eq!(a.delay.to_bits(), b.delay.to_bits());
            prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            prop_assert_eq!(&a.choice, &b.choice);
        }
    }

    fn surface_round_trips_every_f64_bit_pattern(
        raw in proptest::collection::vec(
            ((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
             (any::<u64>(), any::<u64>(), any::<u64>()),
             any::<u8>(),
             any::<u64>()),
            1..10),
    ) {
        // Distinct grid points per row (the surface index maps a point
        // to one row), with adversarial metric bit patterns.
        let points: Vec<KnobPoint> = KnobGrid::paper().points().take(raw.len()).collect();
        let metrics: Vec<ComponentMetrics> = raw
            .iter()
            .enumerate()
            .map(|(i, &((b0, b1, b2, b3), (b4, b5, b6), corner, transistors))| ComponentMetrics {
                delay: Seconds(bits_to_f64(b0, corner)),
                leakage: LeakageBreakdown {
                    subthreshold: Watts(bits_to_f64(b1, corner.wrapping_add(1))),
                    gate: Watts(bits_to_f64(b2, corner.wrapping_add(2))),
                    junction: Watts(bits_to_f64(b3, corner.wrapping_add(3))),
                },
                read_energy: Joules(bits_to_f64(b4, corner.wrapping_add(4))),
                write_energy: Joules(bits_to_f64(b5, corner.wrapping_add(5))),
                transistors,
                area: SquareMicrons(bits_to_f64(b6, i as u8)),
            })
            .collect();
        let surface = ComponentSurface::from_parts(points.clone(), metrics);
        let decoded = decode_surface(&encode_surface(&surface)).expect("round trip");
        prop_assert_eq!(decoded.points(), surface.points());
        for (ours, theirs) in [
            (surface.delays(), decoded.delays()),
            (surface.subthreshold_leakages(), decoded.subthreshold_leakages()),
            (surface.gate_leakages(), decoded.gate_leakages()),
            (surface.junction_leakages(), decoded.junction_leakages()),
            (surface.read_energies(), decoded.read_energies()),
            (surface.write_energies(), decoded.write_energies()),
            (surface.areas(), decoded.areas()),
        ] {
            prop_assert_eq!(ours.len(), theirs.len());
            for (a, b) in ours.iter().zip(theirs) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        prop_assert_eq!(surface.transistor_counts(), decoded.transistor_counts());
    }
}
