//! N-level generalisation soundness: the technology axis and the derived
//! AMAT weights must be *pure generalisations* — an N=2, SRAM-only
//! hierarchy built through the new machinery is bit-for-bit the old
//! two-level pipeline. (The seven golden snapshots in
//! `tests/golden_tables.rs` pin the same contract end-to-end at the
//! rendered-table level, since every study now routes through
//! `HierarchySpec::amat_weights` and the `MultiLevel` simulator.)

use nm_cache_core::eval::{Evaluator, HierarchySpec};
use nm_cache_core::groups::{CostKind, Scheme};
use nm_device::{KnobGrid, TechProfile, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig};
use nm_opt::objective::Deadline;
use proptest::prelude::*;

fn sram_circuit(bytes: u64, ways: u64) -> CacheCircuit {
    let tech = TechnologyNode::bptm65();
    CacheCircuit::new(CacheConfig::new(bytes, 64, ways).unwrap(), &tech)
}

fn explicit_sram_circuit(bytes: u64, ways: u64) -> CacheCircuit {
    let tech = TechnologyNode::bptm65();
    CacheCircuit::with_technology(
        CacheConfig::new(bytes, 64, ways).unwrap(),
        &tech,
        TechProfile::sram(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chained weights `[1, m1, m1·m2, …]` never increase: deeper levels
    /// are reached no more often than shallower ones.
    #[test]
    fn amat_weights_monotone_non_increasing(
        rates in prop::collection::vec(0.0f64..=1.0, 0..6),
    ) {
        let w = HierarchySpec::try_amat_weights(&rates).unwrap();
        prop_assert_eq!(w.len(), rates.len() + 1);
        prop_assert_eq!(w[0], 1.0);
        for pair in w.windows(2) {
            prop_assert!(pair[1] <= pair[0], "weights rose: {pair:?}");
        }
    }

    /// For a two-level chain, the derived weights equal the constants the
    /// old pipeline passed by hand — exactly, not approximately.
    #[test]
    fn two_level_weights_equal_the_hand_passed_constants(m1 in 0.0f64..=1.0) {
        let w = HierarchySpec::try_amat_weights(&[m1]).unwrap();
        prop_assert_eq!(w[0].to_bits(), 1.0f64.to_bits());
        prop_assert_eq!(w[1].to_bits(), m1.to_bits());
    }
}

/// An N=2 SRAM-only spec built through the technology-aware constructor
/// and derived weights produces bitwise-identical fronts and optima to
/// the pre-refactor construction (plain circuits, hand-passed weights).
#[test]
fn sram_two_level_spec_is_bitwise_identical_to_the_old_construction() {
    let grid = KnobGrid::coarse();
    let m1 = 0.0517;

    let old_spec = HierarchySpec::new()
        .level(
            "L1",
            sram_circuit(16 * 1024, 4),
            Scheme::Split,
            1.0,
            CostKind::LeakagePower,
        )
        .level(
            "L2",
            sram_circuit(256 * 1024, 8),
            Scheme::Split,
            m1,
            CostKind::LeakagePower,
        );

    let weights = HierarchySpec::try_amat_weights(&[m1]).unwrap();
    let new_spec = HierarchySpec::new()
        .level(
            "L1",
            explicit_sram_circuit(16 * 1024, 4),
            Scheme::Split,
            weights[0],
            CostKind::LeakagePower,
        )
        .level(
            "L2",
            explicit_sram_circuit(256 * 1024, 8),
            Scheme::Split,
            weights[1],
            CostKind::LeakagePower,
        );

    // Same groups (including names: identity profiles must not rename),
    // same front, same constrained optima — all on separate evaluators so
    // nothing is shared by accident.
    let old_eval = Evaluator::new(grid.clone());
    let new_eval = Evaluator::new(grid);
    assert_eq!(old_eval.groups(&old_spec), new_eval.groups(&new_spec));

    let deadlines = [2.0e-9, 3.5e-9, 6.0e-9];
    for d in deadlines {
        let old = old_eval.try_solve(&old_spec, &Deadline(d)).unwrap();
        let new = new_eval.try_solve(&new_spec, &Deadline(d)).unwrap();
        match (old, new) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.delay.to_bits(), b.delay.to_bits(), "delay at {d}");
                assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "cost at {d}");
                assert_eq!(a.knobs, b.knobs, "knobs at {d}");
            }
            (a, b) => panic!("feasibility diverged at {d}: {a:?} vs {b:?}"),
        }
    }
}

/// A non-identity technology *does* change the spec's groups — the
/// renaming is visible and the metrics move — so the identity test above
/// cannot be passing vacuously.
#[test]
fn non_sram_technology_changes_groups_and_names() {
    let tech = TechnologyNode::bptm65();
    let sram = HierarchySpec::single(
        explicit_sram_circuit(256 * 1024, 8),
        Scheme::Split,
        1.0,
        CostKind::LeakagePower,
    );
    let mram = HierarchySpec::single(
        CacheCircuit::with_technology(
            CacheConfig::new(256 * 1024, 64, 8).unwrap(),
            &tech,
            TechProfile::stt_mram(),
        ),
        Scheme::Split,
        1.0,
        CostKind::LeakagePower,
    );
    let eval = Evaluator::new(KnobGrid::coarse());
    let sram_groups = eval.groups(&sram);
    let mram_groups = eval.groups(&mram);
    assert_eq!(sram_groups.len(), mram_groups.len());
    assert!(mram_groups.iter().all(|g| g.name().contains("[stt-mram]")));
    assert!(sram_groups.iter().all(|g| !g.name().contains('[')));
}
