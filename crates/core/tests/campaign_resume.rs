//! Crash-resume fidelity of the campaign engine.
//!
//! Contracts under test:
//! * a campaign interrupted at *any* cell offset and resumed produces a
//!   final table byte-identical to an uninterrupted run;
//! * a corrupt checkpoint is a typed error (never a panic, never silent
//!   misreads) and `fresh` recovers;
//! * a checkpoint from a different configuration is refused;
//! * the store tier underneath makes recomputation cheap without
//!   changing a byte of output.

use nm_cache_core::campaign::{Campaign, CampaignConfig, CampaignError};
use nm_cache_core::groups::Scheme;
use nm_device::TechProfile;
use nm_store::Store;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

fn config() -> CampaignConfig {
    CampaignConfig {
        l1_sizes: vec![16 * 1024],
        l2_sizes: vec![64 * 1024],
        schemes: vec![Scheme::Uniform, Scheme::Split],
        l2_techs: vec![TechProfile::sram()],
        temperatures_c: vec![40.0, 80.0],
        slack: 0.2,
        quick: true,
        checkpoint_every: 1,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nm-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
    dir
}

fn ckpt(dir: &Path) -> PathBuf {
    dir.join("checkpoint.nmck")
}

/// The uninterrupted run's rendered table — the golden every resume
/// variant must reproduce byte-for-byte.
fn golden() -> &'static String {
    static GOLDEN: OnceLock<String> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let dir = tmpdir("golden");
        let campaign = Campaign::new(config(), None);
        let out = campaign
            .run(&ckpt(&dir), false, None)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(out.complete);
        assert_eq!(out.computed, 4);
        assert_eq!(out.failed, 0);
        let _ = std::fs::remove_dir_all(&dir);
        out.to_table().to_csv()
    })
}

#[test]
fn single_cell_steps_resume_to_a_byte_identical_table() {
    let dir = tmpdir("steps");
    let mut total_computed = 0;
    let final_table = loop {
        // A fresh Campaign per step models a process restart: nothing
        // survives but the checkpoint file.
        let campaign = Campaign::new(config(), None);
        let out = campaign
            .run(&ckpt(&dir), false, Some(1))
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(out.computed <= 1);
        total_computed += out.computed;
        assert_eq!(out.resumed, total_computed - out.computed);
        if out.complete {
            break out.to_table().to_csv();
        }
    };
    assert_eq!(total_computed, 4);
    assert_eq!(&final_table, golden());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_interruption_offset_resumes_to_the_same_table() {
    // Interrupt after k cells for every possible k, resume to
    // completion, and demand byte identity with the uninterrupted run —
    // the deterministic analogue of killing the process at random
    // checkpoint offsets.
    for k in 1..4 {
        let dir = tmpdir(&format!("offset-{k}"));
        let partial = Campaign::new(config(), None);
        let out = partial
            .run(&ckpt(&dir), false, Some(k))
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(out.computed, k);
        assert!(!out.complete);

        let resumed = Campaign::new(config(), None);
        let out = resumed
            .run(&ckpt(&dir), false, None)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(out.complete);
        assert_eq!(out.resumed, k);
        assert_eq!(out.computed, 4 - k);
        assert_eq!(&out.to_table().to_csv(), golden(), "interrupted at {k}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupt_checkpoint_is_a_typed_error_and_fresh_recovers() {
    let dir = tmpdir("corrupt");
    let campaign = Campaign::new(config(), None);
    campaign
        .run(&ckpt(&dir), false, Some(2))
        .unwrap_or_else(|e| panic!("{e}"));

    // Flip one byte in the middle of the checkpoint.
    let path = ckpt(&dir);
    let mut bytes = std::fs::read(&path).unwrap_or_else(|e| panic!("{e}"));
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap_or_else(|e| panic!("{e}"));

    let err = campaign
        .run(&path, false, None)
        .expect_err("corrupt checkpoint must not be trusted");
    assert!(
        matches!(err, CampaignError::Checkpoint { .. }),
        "wrong class: {err:?}"
    );
    assert!(err.to_string().contains("--fresh"), "{err}");

    // `fresh` discards the damage and completes; the table matches.
    let out = campaign
        .run(&path, true, None)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(out.complete);
    assert_eq!(out.resumed, 0);
    assert_eq!(&out.to_table().to_csv(), golden());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_from_a_different_config_is_refused() {
    let dir = tmpdir("mismatch");
    let campaign = Campaign::new(config(), None);
    campaign
        .run(&ckpt(&dir), false, Some(1))
        .unwrap_or_else(|e| panic!("{e}"));

    let mut other = config();
    other.slack = 0.25;
    let refused = Campaign::new(other, None);
    let err = refused
        .run(&ckpt(&dir), false, None)
        .expect_err("foreign checkpoint must be refused");
    assert!(
        matches!(err, CampaignError::Mismatch { .. }),
        "wrong class: {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_tier_feeds_recomputation_without_changing_output() {
    let dir = tmpdir("store");
    let store_dir = dir.join("store");
    let open = || {
        Arc::new(
            Store::open(&store_dir).unwrap_or_else(|e| panic!("open {}: {e}", store_dir.display())),
        )
    };
    let first = Campaign::new(config(), Some(open()));
    let out = first
        .run(&ckpt(&dir), false, None)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(out.complete);

    // `fresh` recomputes every cell, but the persisted surfaces and
    // fronts satisfy the evaluator — and the table stays byte-identical.
    let second = Campaign::new(config(), Some(open()));
    let out2 = second
        .run(&ckpt(&dir), true, None)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(out2.complete);
    assert_eq!(out2.resumed, 0);
    let stats = second.evaluator().stats();
    assert!(stats.store_loaded > 0, "{stats:?}");
    assert_eq!(stats.store_errors, 0, "{stats:?}");
    assert_eq!(&out2.to_table().to_csv(), golden());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_axes_complete_immediately() {
    let dir = tmpdir("empty");
    let mut cfg = config();
    cfg.temperatures_c.clear();
    assert!(cfg.is_empty());
    let campaign = Campaign::new(cfg, None);
    let out = campaign
        .run(&ckpt(&dir), false, None)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(out.complete);
    assert_eq!(out.total, 0);
    assert!(out.to_table().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
