//! The persistence tier under the evaluation engine.
//!
//! Contracts:
//! * a warm store makes a *fresh* evaluator produce bit-identical
//!   solutions without recomputing a single surface;
//! * a corrupted store degrades to recompute (counted, never an error);
//! * a store that fails on write degrades to memory-only operation.

use nm_cache_core::eval::{Evaluator, HierarchySpec};
use nm_cache_core::groups::{CostKind, Scheme};
use nm_device::{KnobGrid, TechnologyNode};
use nm_geometry::CacheConfig;
use nm_opt::objective::Deadline;
use nm_store::{Store, SEGMENT_FILE};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn circuit(bytes: u64) -> nm_geometry::CacheCircuit {
    let tech = TechnologyNode::bptm65();
    nm_geometry::CacheCircuit::new(CacheConfig::new(bytes, 64, 4).unwrap(), &tech)
}

fn spec() -> HierarchySpec {
    HierarchySpec::new()
        .level(
            "L1",
            circuit(16 * 1024),
            Scheme::Split,
            1.0,
            CostKind::LeakagePower,
        )
        .level(
            "L2",
            circuit(64 * 1024),
            Scheme::Split,
            0.05,
            CostKind::LeakagePower,
        )
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nm-eval-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path) -> Arc<Store> {
    Arc::new(Store::open(dir).unwrap_or_else(|e| panic!("open {}: {e}", dir.display())))
}

#[test]
fn warm_store_reproduces_solutions_bit_identical_without_recompute() {
    let dir = tmpdir("warm");
    let spec = spec();

    // Cold run: everything computed, written through.
    let cold = Evaluator::with_store(KnobGrid::coarse(), open(&dir));
    let front = cold.front(&spec);
    let deadline = front.last().expect("non-empty front").delay * 1.1;
    let cold_solution = cold.solve(&spec, &Deadline(deadline)).expect("feasible");
    let cold_stats = cold.stats();
    assert_eq!(cold_stats.surfaces_built, 8);
    assert_eq!(cold_stats.store_loaded, 0);
    assert_eq!(cold_stats.store_errors, 0);

    // Warm run in a fresh process-equivalent: same store, new evaluator.
    let warm = Evaluator::with_store(KnobGrid::coarse(), open(&dir));
    let warm_front = warm.front(&spec);
    let warm_solution = warm.solve(&spec, &Deadline(deadline)).expect("feasible");
    let stats = warm.stats();
    // The front came straight from the store: no surfaces were built, no
    // fronts merged.
    assert_eq!(stats.surfaces_built, 0, "{stats:?}");
    assert_eq!(stats.fronts_built, 0, "{stats:?}");
    assert_eq!(stats.store_loaded, 1, "{stats:?}");
    assert_eq!(stats.store_rejected, 0, "{stats:?}");
    // Bit-identical results, down to the f64 bit patterns.
    assert_eq!(front.len(), warm_front.len());
    for (a, b) in front.iter().zip(warm_front.iter()) {
        assert_eq!(a.delay.to_bits(), b.delay.to_bits());
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.choice, b.choice);
    }
    assert_eq!(cold_solution, warm_solution);

    // Surfaces load from the store too when only surfaces are needed.
    let surfaces_only = Evaluator::with_store(KnobGrid::coarse(), open(&dir));
    surfaces_only.ensure_surfaces(&spec);
    let stats = surfaces_only.stats();
    assert_eq!(stats.surfaces_built, 0, "{stats:?}");
    assert_eq!(stats.store_loaded, 8, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_degrades_to_recompute() {
    let dir = tmpdir("corrupt");
    let spec = spec();
    {
        let e = Evaluator::with_store(KnobGrid::coarse(), open(&dir));
        let _ = e.front(&spec);
    }
    // Tear the segment mid-file: the open-time scan quarantines from the
    // damage onward, so some records survive and some are gone.
    let seg = dir.join(SEGMENT_FILE);
    let bytes = std::fs::read(&seg).unwrap_or_else(|e| panic!("{e}"));
    std::fs::write(&seg, &bytes[..bytes.len() / 2]).unwrap_or_else(|e| panic!("{e}"));

    let store = open(&dir);
    assert!(store.open_report().salvage_performed());
    let e = Evaluator::with_store(KnobGrid::coarse(), Arc::clone(&store));
    let front = e.front(&spec);
    let stats = e.stats();
    // Whatever was salvaged loaded; the rest recomputed. Either way the
    // study succeeded and the results are the same as a storeless run.
    assert_eq!(stats.store_loaded + stats.surfaces_built, 8, "{stats:?}");
    assert_eq!(stats.store_errors, 0, "{stats:?}");
    let plain = Evaluator::new(KnobGrid::coarse());
    let reference = plain.front(&spec);
    assert_eq!(front.len(), reference.len());
    for (a, b) in front.iter().zip(reference.iter()) {
        assert_eq!(a.delay.to_bits(), b.delay.to_bits());
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_and_storeless_runs_are_bit_identical() {
    let dir = tmpdir("parity");
    let spec = spec();
    let with = Evaluator::with_store(KnobGrid::coarse(), open(&dir));
    let without = Evaluator::new(KnobGrid::coarse());
    let a = with.front(&spec);
    let b = without.front(&spec);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.delay.to_bits(), y.delay.to_bits());
        assert_eq!(x.cost.to_bits(), y.cost.to_bits());
        assert_eq!(x.choice, y.choice);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cloned_evaluator_shares_the_store_tier() {
    let dir = tmpdir("clone");
    let spec = spec();
    let e = Evaluator::with_store(KnobGrid::coarse(), open(&dir));
    let _ = e.front(&spec);
    let fresh = e.clone();
    assert!(fresh.store().is_some());
    let _ = fresh.front(&spec);
    // The clone's memo caches started cold, but the store satisfied the
    // whole query.
    let stats = fresh.stats();
    assert_eq!(stats.surfaces_built, 0, "{stats:?}");
    assert!(stats.store_loaded >= 1, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
