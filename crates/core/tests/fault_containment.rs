//! End-to-end fault containment through the evaluation stack.
//!
//! These tests arm the deterministic fault plan in
//! `nm_sweep::faultinject` and drive the [`Evaluator`] through its
//! fallible API, proving the ISSUE's containment guarantees:
//!
//! * an injected worker panic fails only its own surface-build job, as a
//!   typed [`StudyError::WorkerPanic`]; every other job completes and is
//!   cached;
//! * an injected NaN surface is rejected by validation *before* the memo
//!   cache, as a typed [`StudyError::InvalidSurface`], and never serves a
//!   later query;
//! * after the fault plan drains, a retry completes and produces results
//!   bit-identical to a never-faulted evaluator.
//!
//! Compile with `--features faultinject`; without the feature this file
//! is empty.

#![cfg(feature = "faultinject")]

use nm_cache_core::eval::{Evaluator, HierarchySpec};
use nm_cache_core::groups::{CostKind, Scheme};
use nm_cache_core::StudyError;
use nm_device::{KnobGrid, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig};
use nm_opt::objective::Deadline;
use nm_sweep::faultinject::{self, Fault};
use std::sync::{Mutex, MutexGuard};

/// The fault plan is process-global; serialize every test that arms it.
fn plan_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn circuit(bytes: u64) -> CacheCircuit {
    let tech = TechnologyNode::bptm65();
    CacheCircuit::new(CacheConfig::new(bytes, 64, 4).expect("legal config"), &tech)
}

fn spec_16kb() -> HierarchySpec {
    HierarchySpec::single(
        circuit(16 * 1024),
        Scheme::Split,
        1.0,
        CostKind::LeakagePower,
    )
}

/// A deadline loose enough that the 16 KB spec is always feasible.
fn loose_deadline(reference: &Evaluator, spec: &HierarchySpec) -> Deadline {
    let front = reference.try_front(spec).expect("healthy build");
    Deadline(front.last().expect("non-empty front").delay)
}

#[test]
fn injected_panic_fails_one_job_and_spares_the_rest() {
    let _guard = plan_lock();
    faultinject::clear();

    let reference = Evaluator::new(KnobGrid::coarse());
    let spec = spec_16kb();
    let deadline = loose_deadline(&reference, &spec);
    let expected = reference
        .try_solve(&spec, &deadline)
        .expect("healthy build")
        .expect("feasible");

    // Job 1 of the 4-component surface build panics once.
    faultinject::arm(Some("eval-surfaces"), 1, Fault::Panic, 1);
    let e = Evaluator::new(KnobGrid::coarse());
    let err = e.try_solve(&spec, &deadline).expect_err("armed panic");
    match err {
        StudyError::WorkerPanic {
            label,
            index,
            message,
        } => {
            assert_eq!(label, "eval-surfaces");
            assert_eq!(index, 1);
            assert!(message.contains("faultinject"), "{message}");
        }
        other => panic!("wrong error class: {other:?}"),
    }
    // The three healthy jobs completed and were cached; the failed one
    // was not.
    assert_eq!(e.stats().surfaces_built, 3);
    assert_eq!(e.stats().surfaces_rejected, 0);

    // The plan is drained: a retry rebuilds only the missing surface and
    // the result is bit-identical to the never-faulted evaluator.
    assert_eq!(faultinject::armed(), 0);
    let retried = e
        .try_solve(&spec, &deadline)
        .expect("retry succeeds")
        .expect("feasible");
    assert_eq!(e.stats().surfaces_built, 4);
    assert_eq!(retried, expected);
}

#[test]
fn injected_nan_surface_never_enters_the_cache() {
    let _guard = plan_lock();
    faultinject::clear();

    let reference = Evaluator::new(KnobGrid::coarse());
    let spec = spec_16kb();
    let deadline = loose_deadline(&reference, &spec);
    let expected = reference
        .try_solve(&spec, &deadline)
        .expect("healthy build")
        .expect("feasible");

    // Job 2's freshly computed surface is poisoned with a NaN delay.
    faultinject::arm(Some("eval-surfaces"), 2, Fault::Nan, 1);
    let e = Evaluator::new(KnobGrid::coarse());
    let err = e.try_solve(&spec, &deadline).expect_err("armed NaN");
    match err {
        StudyError::InvalidSurface { metric, value, .. } => {
            assert_eq!(metric, "delay");
            assert!(value.is_nan());
        }
        other => panic!("wrong error class: {other:?}"),
    }
    // Three healthy surfaces cached; the poisoned one rejected, counted,
    // and NOT installed.
    assert_eq!(e.stats().surfaces_built, 3);
    assert_eq!(e.stats().surfaces_rejected, 1);

    // Retry rebuilds the rejected surface from scratch — proof it never
    // entered the cache — and matches the clean result exactly.
    assert_eq!(faultinject::armed(), 0);
    let retried = e
        .try_solve(&spec, &deadline)
        .expect("retry succeeds")
        .expect("feasible");
    assert_eq!(e.stats().surfaces_built, 4);
    assert_eq!(e.stats().surfaces_rejected, 1);
    assert_eq!(retried, expected);
}

#[test]
fn nonfault_path_is_identical_with_the_feature_compiled_in() {
    let _guard = plan_lock();
    faultinject::clear();

    // With nothing armed, the contained pipeline is bit-identical run to
    // run (the golden-table suite separately pins the absolute values).
    let spec = spec_16kb();
    let a = Evaluator::new(KnobGrid::coarse());
    let b = Evaluator::new(KnobGrid::coarse());
    let deadline = loose_deadline(&a, &spec);
    let sa = a
        .try_solve(&spec, &deadline)
        .expect("healthy")
        .expect("feasible");
    let sb = b
        .try_solve(&spec, &deadline)
        .expect("healthy")
        .expect("feasible");
    assert_eq!(sa, sb);
    assert_eq!(a.stats().surfaces_rejected, 0);
    assert_eq!(b.stats().surfaces_rejected, 0);
}

#[test]
fn fault_in_one_spec_leaves_other_specs_untouched() {
    let _guard = plan_lock();
    faultinject::clear();

    // Fault an L1 surface build, then solve a *different* circuit on the
    // same evaluator: the second spec is unaffected by the first failure.
    let faulted = spec_16kb();
    let deadline = {
        let reference = Evaluator::new(KnobGrid::coarse());
        loose_deadline(&reference, &faulted)
    };
    faultinject::arm(Some("eval-surfaces"), 0, Fault::Panic, 1);
    let e = Evaluator::new(KnobGrid::coarse());
    assert!(e.try_solve(&faulted, &deadline).is_err());

    let other = HierarchySpec::single(
        circuit(64 * 1024),
        Scheme::Split,
        1.0,
        CostKind::LeakagePower,
    );
    let front = e.try_front(&other).expect("other spec healthy");
    assert!(!front.is_empty());
}
