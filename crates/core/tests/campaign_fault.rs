//! Checkpoint durability under injected storage faults.
//!
//! Arms the deterministic plan in `nm_store::storefault` against the
//! campaign's checkpoint writes, proving the atomic-write contract at
//! the campaign level: a crash anywhere inside a checkpoint rewrite
//! (temp-file write or the final rename) leaves the *previous complete
//! checkpoint* in place — a half-written index is unrepresentable — and
//! the campaign resumes from it to a byte-identical table.
//!
//! Compile with `--features storefault`; without the feature this file
//! is empty.

#![cfg(feature = "storefault")]

use nm_cache_core::campaign::{Campaign, CampaignConfig, CampaignError};
use nm_cache_core::groups::Scheme;
use nm_device::TechProfile;
use nm_store::storefault::{self, Fault, OP_ATOMIC_RENAME, OP_ATOMIC_WRITE};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// The fault plan is process-global; serialize every test that arms it.
fn plan_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn config() -> CampaignConfig {
    CampaignConfig {
        l1_sizes: vec![16 * 1024],
        l2_sizes: vec![64 * 1024],
        schemes: vec![Scheme::Uniform],
        l2_techs: vec![TechProfile::sram()],
        temperatures_c: vec![40.0, 80.0, 110.0],
        slack: 0.2,
        quick: true,
        checkpoint_every: 1,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nm-campfault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
    dir
}

fn ckpt(dir: &Path) -> PathBuf {
    dir.join("checkpoint.nmck")
}

/// Every crash point inside a checkpoint rewrite: the temp-file write
/// tearing (truncated, short, out of space) and the final rename
/// failing. In all cases the previous checkpoint must survive complete
/// and the resumed campaign must match the uninterrupted table.
#[test]
fn crash_inside_checkpoint_rewrite_cannot_lose_the_previous_checkpoint() {
    let _guard = plan_lock();
    storefault::clear();

    // Uninterrupted reference table.
    let golden = {
        let dir = tmpdir("golden");
        let out = Campaign::new(config(), None)
            .run(&ckpt(&dir), false, None)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(out.complete);
        let _ = std::fs::remove_dir_all(&dir);
        out.to_table().to_csv()
    };

    let faults = [
        (OP_ATOMIC_WRITE, Fault::TruncateOnWrite),
        (OP_ATOMIC_WRITE, Fault::ShortWrite(5)),
        (OP_ATOMIC_WRITE, Fault::DiskFull),
        (OP_ATOMIC_RENAME, Fault::RenameFail),
    ];
    for (op, fault) in faults {
        let dir = tmpdir("crash");
        let campaign = Campaign::new(config(), None);
        // Two cells in: a complete checkpoint exists.
        campaign
            .run(&ckpt(&dir), false, Some(2))
            .unwrap_or_else(|e| panic!("{e}"));
        let before = std::fs::read(ckpt(&dir)).unwrap_or_else(|e| panic!("{e}"));

        // The third cell's checkpoint rewrite crashes.
        storefault::clear();
        storefault::arm(op, 0, fault, 1);
        let err = campaign
            .run(&ckpt(&dir), false, None)
            .expect_err("armed checkpoint fault must surface");
        assert!(
            matches!(err, CampaignError::Store(_)),
            "{op} {fault:?}: wrong class: {err:?}"
        );
        storefault::clear();

        // The previous checkpoint is byte-for-byte intact: the rewrite
        // never touched the destination in place.
        let after = std::fs::read(ckpt(&dir)).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(before, after, "{op} {fault:?}: destination was touched");

        // Resume runs to completion and reproduces the golden exactly.
        let out = campaign
            .run(&ckpt(&dir), false, None)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(out.complete);
        assert_eq!(out.resumed, 2, "{op} {fault:?}");
        assert_eq!(out.to_table().to_csv(), golden, "{op} {fault:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// No temp-file debris accumulates after injected crashes: the atomic
/// writer cleans up its own temp file on every failure path.
#[test]
fn failed_checkpoint_rewrites_leave_no_temp_files() {
    let _guard = plan_lock();
    storefault::clear();

    let dir = tmpdir("debris");
    let campaign = Campaign::new(config(), None);
    campaign
        .run(&ckpt(&dir), false, Some(1))
        .unwrap_or_else(|e| panic!("{e}"));
    // Reset the op counters so index 0 targets the *next* rewrite.
    storefault::clear();
    storefault::arm(OP_ATOMIC_WRITE, 0, Fault::DiskFull, 1);
    let _ = campaign.run(&ckpt(&dir), false, None).expect_err("armed");
    storefault::clear();

    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{e}"))
        .map(|e| e.unwrap_or_else(|e| panic!("{e}")).file_name())
        .map(|n| n.to_string_lossy().into_owned())
        .collect();
    assert_eq!(names, vec!["checkpoint.nmck".to_owned()], "{names:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
