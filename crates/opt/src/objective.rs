//! The objective/constraint trait pair shared by every solver.
//!
//! The studies in `nm-cache-core` all minimise *some* additive cost under
//! *some* delay-style constraint; historically each study wired its own
//! closure into the solvers. This module names the two roles:
//!
//! * an [`Objective`] collapses a group's raw metric sums (delay, leakage,
//!   dynamic energy) into the scalar cost a [`Candidate`](crate::Candidate)
//!   carries — leakage power for the Section 4/5 studies, integrated
//!   energy for the Figure 2 memory-system study;
//! * a [`Constraint`] reads the optimum off a system Pareto front — a
//!   delay [`Deadline`] for the iso-delay/iso-AMAT studies, a
//!   [`CostBudget`] for the dual query.
//!
//! The exact solvers ([`crate::merge`], [`crate::tuple`]), the annealer
//! ([`crate::anneal`]) and the pruning layer ([`crate::pareto`]) all
//! consume these traits, so a new study only has to describe *what* it
//! optimises, never *how*.

use crate::constraint::{best_under_deadline, fastest_under_budget};
use crate::merge::FrontPoint;
use crate::pareto;
use crate::Candidate;
use nm_device::KnobPoint;
use serde::{Deserialize, Serialize};

/// Raw metric sums of one component group under one knob pair, before any
/// objective is applied. All fields are plain SI values (seconds, watts,
/// joules) so the type stays unit-library-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricSample {
    /// Summed delay contribution, seconds (unweighted).
    pub delay: f64,
    /// Summed standby leakage power, watts.
    pub leakage: f64,
    /// Summed dynamic energy per read access, joules.
    pub read_energy: f64,
    /// Summed dynamic energy per write access, joules.
    pub write_energy: f64,
}

/// Collapses a [`MetricSample`] into the scalar cost a candidate carries.
///
/// Implementations must be pure: the same sample always maps to the same
/// cost, which is what lets the evaluation engine memoize samples and
/// re-price them under different objectives.
pub trait Objective: Sync {
    /// The cost of one group sample (additive across groups).
    fn cost(&self, sample: &MetricSample) -> f64;
}

/// Selects the optimal point of a system Pareto front.
///
/// `front` is sorted by ascending delay with descending cost, as produced
/// by [`crate::merge::system_front`].
pub trait Constraint: Sync {
    /// The constraint's scalar limit (a deadline in seconds, a cost
    /// budget, …) — solvers that penalise violations (the annealer) scale
    /// by it.
    fn limit(&self) -> f64;

    /// The optimal feasible front point, or `None` when the constraint is
    /// infeasible.
    fn select<'a>(&self, front: &'a [FrontPoint]) -> Option<&'a FrontPoint>;

    /// Relative violation of a `(delay, cost)` operating point — `0` when
    /// the constraint is met, growing with the overshoot. Penalty-based
    /// solvers (the annealer) square this.
    fn violation(&self, delay: f64, cost: f64) -> f64;

    /// Whether a `(delay, cost)` operating point satisfies the constraint.
    fn satisfied(&self, delay: f64, cost: f64) -> bool {
        self.violation(delay, cost) <= 0.0
    }
}

/// Minimise cost subject to `total delay ≤ deadline` (iso-delay and
/// iso-AMAT studies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deadline(pub f64);

impl Constraint for Deadline {
    fn limit(&self) -> f64 {
        self.0
    }

    fn select<'a>(&self, front: &'a [FrontPoint]) -> Option<&'a FrontPoint> {
        best_under_deadline(front, self.0)
    }

    fn violation(&self, delay: f64, _cost: f64) -> f64 {
        ((delay - self.0) / self.0).max(0.0)
    }
}

/// Minimise delay subject to `total cost ≤ budget` (the dual query).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBudget(pub f64);

impl Constraint for CostBudget {
    fn limit(&self) -> f64 {
        self.0
    }

    fn select<'a>(&self, front: &'a [FrontPoint]) -> Option<&'a FrontPoint> {
        fastest_under_budget(front, self.0)
    }

    fn violation(&self, _delay: f64, cost: f64) -> f64 {
        ((cost - self.0) / self.0).max(0.0)
    }
}

/// Prices one knob pair's sample as a candidate: the delay is pre-weighted
/// by the caller's system weight (e.g. the L1 miss rate for an L2 group in
/// an AMAT study), the cost comes from the objective.
///
/// # Panics
///
/// Panics when the weighted delay or priced cost is negative or
/// non-finite (see [`Candidate::new`]).
pub fn price<O: Objective + ?Sized>(
    knobs: KnobPoint,
    sample: &MetricSample,
    delay_weight: f64,
    objective: &O,
) -> Candidate {
    Candidate::new(knobs, delay_weight * sample.delay, objective.cost(sample))
}

/// Prices a whole surface of samples and prunes it to its Pareto-optimal
/// candidates in one pass — the candidate-enumeration entry point of the
/// evaluation engine.
pub fn price_surface<O: Objective + ?Sized>(
    samples: &[(KnobPoint, MetricSample)],
    delay_weight: f64,
    objective: &O,
) -> Vec<Candidate> {
    pareto::prune(
        samples
            .iter()
            .map(|(p, s)| price(*p, s, delay_weight, objective))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    struct LeakageOnly;
    impl Objective for LeakageOnly {
        fn cost(&self, s: &MetricSample) -> f64 {
            s.leakage
        }
    }

    fn sample(delay: f64, leakage: f64) -> MetricSample {
        MetricSample {
            delay,
            leakage,
            read_energy: 1e-12,
            write_energy: 2e-12,
        }
    }

    fn front() -> Vec<FrontPoint> {
        vec![
            FrontPoint {
                delay: 1.0,
                cost: 10.0,
                choice: vec![KnobPoint::nominal()],
            },
            FrontPoint {
                delay: 3.0,
                cost: 2.0,
                choice: vec![KnobPoint::nominal()],
            },
        ]
    }

    #[test]
    fn deadline_selects_cheapest_feasible() {
        let f = front();
        assert_eq!(Deadline(2.0).select(&f).unwrap().cost, 10.0);
        assert_eq!(Deadline(3.0).select(&f).unwrap().cost, 2.0);
        assert!(Deadline(0.5).select(&f).is_none());
        assert_eq!(Deadline(2.0).limit(), 2.0);
    }

    #[test]
    fn violation_is_relative_overshoot() {
        assert_eq!(Deadline(2.0).violation(1.0, 99.0), 0.0);
        assert!((Deadline(2.0).violation(3.0, 0.0) - 0.5).abs() < 1e-12);
        assert!(Deadline(2.0).satisfied(2.0, 123.0));
        assert!(!Deadline(2.0).satisfied(2.1, 0.0));
        assert!((CostBudget(10.0).violation(0.0, 15.0) - 0.5).abs() < 1e-12);
        assert!(CostBudget(10.0).satisfied(99.0, 10.0));
    }

    #[test]
    fn budget_selects_fastest_affordable() {
        let f = front();
        assert_eq!(CostBudget(5.0).select(&f).unwrap().delay, 3.0);
        assert_eq!(CostBudget(50.0).select(&f).unwrap().delay, 1.0);
        assert!(CostBudget(1.0).select(&f).is_none());
    }

    #[test]
    fn price_weights_delay_and_prices_cost() {
        let c = price(KnobPoint::nominal(), &sample(2.0, 5.0), 0.25, &LeakageOnly);
        assert_eq!(c.delay, 0.5);
        assert_eq!(c.cost, 5.0);
    }

    #[test]
    fn price_surface_prunes_dominated_samples() {
        let samples = vec![
            (KnobPoint::fastest(), sample(1.0, 9.0)),
            (KnobPoint::nominal(), sample(2.0, 10.0)), // dominated
            (KnobPoint::lowest_leakage(), sample(3.0, 1.0)),
        ];
        let priced = price_surface(&samples, 1.0, &LeakageOnly);
        assert_eq!(priced.len(), 2);
    }
}
