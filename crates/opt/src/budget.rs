//! Delay-budget dynamic programming — a discretised alternative to the
//! exact merge solver.
//!
//! The classic way to solve `min Σ cost_i s.t. Σ delay_i ≤ D` over
//! independent groups is to discretise the delay budget into `B` bins and
//! run a knapsack-style DP: `best[g][b]` = least cost using groups
//! `0..=g` within budget bin `b`. The result is within one bin of the
//! exact optimum (delays round *up*, so feasibility is never violated).
//!
//! [`crate::merge::system_front`] is exact and usually faster for the
//! group sizes in this workspace; the DP exists as an independent
//! implementation for cross-checking and for callers whose group
//! candidate sets are too large to merge.

use crate::{Candidate, Group};
use nm_device::KnobPoint;
use serde::{Deserialize, Serialize};

/// A DP solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetSolution {
    /// Chosen knob pair per group, in input order.
    pub choice: Vec<KnobPoint>,
    /// Achieved total delay (exact, not binned).
    pub delay: f64,
    /// Achieved total cost.
    pub cost: f64,
}

/// Minimises total cost subject to `Σ delay ≤ deadline` by delay-budget
/// DP with `bins` quantisation steps.
///
/// ```
/// use nm_opt::budget::solve_budget_dp;
/// use nm_opt::{Candidate, Group};
/// use nm_device::KnobPoint;
///
/// let mk = |d: f64, c: f64| Candidate::new(KnobPoint::nominal(), d, c);
/// let g = Group::new("g", vec![mk(1.0, 10.0), mk(2.0, 1.0)]);
/// // A hair of slack over 3.0 absorbs the bin round-up.
/// let sol = solve_budget_dp(&[g.clone(), g], 3.01, 1000).unwrap();
/// assert!((sol.cost - 11.0).abs() < 1e-9); // one fast + one slow
/// ```
///
/// Returns `None` when no assignment fits the deadline. The answer's cost
/// is within the quantisation error of optimal (each candidate's delay is
/// rounded up to a bin boundary, so the reported assignment always truly
/// meets the deadline).
///
/// # Panics
///
/// Panics when `groups` is empty or `bins` is zero.
pub fn solve_budget_dp(groups: &[Group], deadline: f64, bins: usize) -> Option<BudgetSolution> {
    assert!(!groups.is_empty(), "budget DP needs at least one group");
    assert!(bins > 0, "budget DP needs at least one bin");
    if deadline < 0.0 {
        return None;
    }
    let step = deadline / bins as f64;

    // Quantised delay (rounded up) per candidate; candidates that alone
    // exceed the deadline are unusable.
    let bin_of = |c: &Candidate| -> Option<usize> {
        if step == 0.0 {
            return if c.delay == 0.0 { Some(0) } else { None };
        }
        let b = (c.delay / step).ceil() as usize;
        if b > bins {
            None
        } else {
            Some(b)
        }
    };

    const UNSET: usize = usize::MAX;
    // best[b] = (cost, chosen candidate idx per processed group, via
    // backpointers): store per-layer choice tables to reconstruct.
    let mut best = vec![f64::INFINITY; bins + 1];
    best[0] = 0.0;
    // backpointer[g][b] = (candidate index, previous bin)
    let mut back: Vec<Vec<(usize, usize)>> = Vec::with_capacity(groups.len());

    for group in groups {
        let mut next = vec![f64::INFINITY; bins + 1];
        let mut layer = vec![(UNSET, UNSET); bins + 1];
        for (ci, c) in group.candidates().iter().enumerate() {
            let Some(cb) = bin_of(c) else {
                continue;
            };
            for b in cb..=bins {
                let prev = best[b - cb];
                if prev.is_finite() {
                    let cost = prev + c.cost;
                    if cost < next[b] {
                        next[b] = cost;
                        layer[b] = (ci, b - cb);
                    }
                }
            }
        }
        // Make each bin also reachable by any cheaper smaller-bin state
        // (prefix-min), so the final readout at `bins` is the optimum.
        for b in 1..=bins {
            if next[b - 1] < next[b] {
                next[b] = next[b - 1];
                layer[b] = layer[b - 1];
            }
        }
        best = next;
        back.push(layer);
    }

    if !best[bins].is_finite() {
        return None;
    }

    // Reconstruct choices.
    let mut choice_idx = vec![0usize; groups.len()];
    let mut b = bins;
    for (g, layer) in back.iter().enumerate().rev() {
        let (ci, pb) = layer[b];
        debug_assert_ne!(ci, UNSET, "reachable states have backpointers");
        choice_idx[g] = ci;
        b = pb;
    }

    let mut delay = 0.0;
    let mut cost = 0.0;
    let mut choice = Vec::with_capacity(groups.len());
    for (group, &ci) in groups.iter().zip(&choice_idx) {
        let c = &group.candidates()[ci];
        delay += c.delay;
        cost += c.cost;
        choice.push(c.knobs);
    }
    Some(BudgetSolution {
        choice,
        delay,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::best_under_deadline;
    use crate::merge::system_front;
    use nm_device::units::{Angstroms, Volts};

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    fn grid_group(name: &str, scale: f64) -> Group {
        let mut cands = Vec::new();
        for i in 0..7 {
            let vth = 0.2 + 0.05 * i as f64;
            for j in 0..5 {
                let tox = 10.0 + j as f64;
                let delay = scale * (1.0 + 3.0 * vth + 0.08 * tox);
                let cost =
                    scale * ((-12.0 * vth).exp() * 80.0 + (-1.1 * (tox - 10.0)).exp() * 30.0);
                cands.push(Candidate::new(k(vth, tox), delay, cost));
            }
        }
        Group::new(name, cands)
    }

    #[test]
    fn dp_matches_exact_solver_within_binning() {
        let groups = vec![
            grid_group("a", 1.0),
            grid_group("b", 1.7),
            grid_group("c", 0.6),
        ];
        let front = system_front(&groups);
        for deadline in [8.5, 10.0, 12.0, 15.0] {
            let exact = best_under_deadline(&front, deadline).expect("feasible");
            let dp = solve_budget_dp(&groups, deadline, 2000).expect("feasible");
            assert!(dp.delay <= deadline + 1e-12, "deadline violated");
            assert!(dp.cost >= exact.cost - 1e-9, "DP beat the exact solver");
            assert!(
                dp.cost <= exact.cost * 1.02 + 1e-12,
                "deadline {deadline}: dp {} vs exact {}",
                dp.cost,
                exact.cost
            );
        }
    }

    #[test]
    fn dp_infeasible_when_too_tight() {
        let groups = vec![grid_group("a", 1.0)];
        assert!(solve_budget_dp(&groups, 0.5, 100).is_none());
        assert!(solve_budget_dp(&groups, -1.0, 100).is_none());
    }

    #[test]
    fn dp_single_group_picks_cheapest_feasible() {
        let g = Group::new(
            "g",
            vec![
                Candidate::new(k(0.2, 10.0), 1.0, 10.0),
                Candidate::new(k(0.3, 10.0), 2.0, 5.0),
                Candidate::new(k(0.4, 10.0), 4.0, 1.0),
            ],
        );
        let sol = solve_budget_dp(&[g], 2.5, 1000).unwrap();
        assert!((sol.cost - 5.0).abs() < 1e-12);
        assert!((sol.delay - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dp_respects_deadline_exactly_despite_binning() {
        // Coarse bins: rounding up must never yield a violating answer.
        let groups = vec![grid_group("a", 1.0), grid_group("b", 2.0)];
        for bins in [7, 23, 101] {
            if let Some(sol) = solve_budget_dp(&groups, 9.0, bins) {
                assert!(sol.delay <= 9.0 + 1e-12, "bins={bins}: {}", sol.delay);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn empty_groups_panic() {
        let _ = solve_budget_dp(&[], 1.0, 10);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panic() {
        let g = Group::new("g", vec![Candidate::new(k(0.2, 10.0), 1.0, 1.0)]);
        let _ = solve_budget_dp(&[g], 1.0, 0);
    }
}
