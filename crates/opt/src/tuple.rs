//! The (`nTox`, `nVth`) tuple-selection problem of the paper's Figure 2.
//!
//! A real process offers only a handful of distinct `Vth` implants and
//! oxide thicknesses. Figure 2 asks: how many of each are needed before
//! the memory system's energy/AMAT frontier stops improving? This module
//! enumerates every way to pick `n_vth` threshold voltages and `n_tox`
//! oxide thicknesses from a grid, solves the assignment problem under each
//! restriction, and keeps the best frontier.

use crate::merge::{system_front, FrontPoint};
use crate::objective::{Constraint, Deadline};
use crate::Group;
use serde::{Deserialize, Serialize};

/// All `k`-element combinations of `items` (lexicographic order).
///
/// ```
/// use nm_opt::tuple::combinations;
/// let c = combinations(&[1.0, 2.0, 3.0], 2);
/// assert_eq!(c, vec![vec![1.0, 2.0], vec![1.0, 3.0], vec![2.0, 3.0]]);
/// ```
pub fn combinations(items: &[f64], k: usize) -> Vec<Vec<f64>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    if k > items.len() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut indices: Vec<usize> = (0..k).collect();
    loop {
        out.push(indices.iter().map(|&i| items[i]).collect());
        // Advance the combination counter.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if indices[i] != i + items.len() - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        indices[i] += 1;
        for j in i + 1..k {
            indices[j] = indices[j - 1] + 1;
        }
    }
}

/// The solution of one tuple-restricted optimisation at one deadline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TupleSolution {
    /// The chosen `Vth` value set.
    pub vths: Vec<f64>,
    /// The chosen `Tox` value set.
    pub toxes: Vec<f64>,
    /// The optimal front point under the restriction.
    pub point: FrontPoint,
}

/// Minimises system cost at each deadline when only `n_vth` distinct
/// threshold voltages and `n_tox` distinct oxide thicknesses may be used
/// (chosen freely from `vth_axis` / `tox_axis`, shared by all groups).
///
/// Returns, per deadline, the best solution over all value-set choices
/// (`None` for infeasible deadlines).
///
/// The cost is exponential in the axis sizes — callers use a coarse grid
/// (the paper's Figure 2 does the same; it reports small tuple counts).
pub fn optimize_with_tuple_counts(
    groups: &[Group],
    vth_axis: &[f64],
    tox_axis: &[f64],
    n_vth: usize,
    n_tox: usize,
    deadlines: &[f64],
) -> Vec<Option<TupleSolution>> {
    let constraints: Vec<Deadline> = deadlines.iter().map(|&d| Deadline(d)).collect();
    optimize_with_tuples(groups, vth_axis, tox_axis, n_vth, n_tox, &constraints)
}

/// The trait-based form of [`optimize_with_tuple_counts`]: minimises
/// system cost at each [`Constraint`] under the same value-count
/// restriction. Returns, per constraint, the best solution over all
/// value-set choices (`None` where infeasible).
pub fn optimize_with_tuples<C: Constraint>(
    groups: &[Group],
    vth_axis: &[f64],
    tox_axis: &[f64],
    n_vth: usize,
    n_tox: usize,
    constraints: &[C],
) -> Vec<Option<TupleSolution>> {
    let vth_sets = combinations(vth_axis, n_vth);
    let tox_sets = combinations(tox_axis, n_tox);
    let mut best: Vec<Option<TupleSolution>> = vec![None; constraints.len()];

    for vths in &vth_sets {
        for toxes in &tox_sets {
            // Restrict every group; skip value sets that empty any group.
            let restricted: Option<Vec<Group>> =
                groups.iter().map(|g| g.restricted(vths, toxes)).collect();
            let Some(restricted) = restricted else {
                continue;
            };
            let front = system_front(&restricted);
            for (slot, constraint) in best.iter_mut().zip(constraints) {
                if let Some(point) = constraint.select(&front) {
                    let better = match slot {
                        Some(existing) => point.cost < existing.point.cost,
                        None => true,
                    };
                    if better {
                        *slot = Some(TupleSolution {
                            vths: vths.clone(),
                            toxes: toxes.clone(),
                            point: point.clone(),
                        });
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Candidate;
    use nm_device::units::{Angstroms, Volts};
    use nm_device::KnobPoint;

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    /// A synthetic group over a tiny grid where delay falls with low Vth
    /// and cost falls with high Vth/Tox.
    fn grid_group(name: &str, scale: f64) -> Group {
        let mut cands = Vec::new();
        for &vth in &[0.2, 0.35, 0.5] {
            for &tox in &[10.0, 12.0, 14.0] {
                let delay = scale * (1.0 + 2.0 * vth + 0.05 * tox);
                let cost = scale * ((-10.0 * vth).exp() * 50.0 + (-(tox - 10.0)).exp() * 20.0);
                cands.push(Candidate::new(k(vth, tox), delay, cost));
            }
        }
        Group::new(name, cands)
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(combinations(&[1.0, 2.0, 3.0, 4.0], 2).len(), 6);
        assert_eq!(combinations(&[1.0, 2.0, 3.0], 3).len(), 1);
        assert_eq!(combinations(&[1.0], 2).len(), 0);
        assert_eq!(combinations(&[1.0, 2.0], 0), vec![Vec::<f64>::new()]);
    }

    #[test]
    fn more_values_never_hurt() {
        let groups = vec![grid_group("a", 1.0), grid_group("b", 2.0)];
        let vth_axis = [0.2, 0.35, 0.5];
        let tox_axis = [10.0, 12.0, 14.0];
        let deadlines = [6.0, 8.0, 10.0];
        let one = optimize_with_tuple_counts(&groups, &vth_axis, &tox_axis, 1, 1, &deadlines);
        let two = optimize_with_tuple_counts(&groups, &vth_axis, &tox_axis, 2, 2, &deadlines);
        let full = optimize_with_tuple_counts(&groups, &vth_axis, &tox_axis, 3, 3, &deadlines);
        for i in 0..deadlines.len() {
            if let (Some(a), Some(b)) = (&one[i], &two[i]) {
                assert!(b.point.cost <= a.point.cost + 1e-12, "deadline {i}");
            }
            if let (Some(b), Some(c)) = (&two[i], &full[i]) {
                assert!(c.point.cost <= b.point.cost + 1e-12, "deadline {i}");
            }
        }
    }

    #[test]
    fn tuple_solution_respects_value_counts() {
        let groups = vec![grid_group("a", 1.0), grid_group("b", 2.0)];
        let sols = optimize_with_tuple_counts(
            &groups,
            &[0.2, 0.35, 0.5],
            &[10.0, 12.0, 14.0],
            2,
            1,
            &[8.0],
        );
        let sol = sols[0].as_ref().expect("feasible");
        assert_eq!(sol.vths.len(), 2);
        assert_eq!(sol.toxes.len(), 1);
        for p in &sol.point.choice {
            assert!(sol.vths.iter().any(|&v| (p.vth().0 - v).abs() < 1e-9));
            assert!(sol.toxes.iter().any(|&t| (p.tox().0 - t).abs() < 1e-9));
        }
    }

    #[test]
    fn infeasible_deadline_is_none() {
        let groups = vec![grid_group("a", 1.0)];
        let sols = optimize_with_tuple_counts(
            &groups,
            &[0.2, 0.35, 0.5],
            &[10.0, 12.0, 14.0],
            1,
            1,
            &[0.1],
        );
        assert!(sols[0].is_none());
    }
}
