//! Simulated-annealing cross-check for the exact solvers.
//!
//! The merge-based solver in [`crate::merge`] is exact for the additive
//! model; this independent stochastic optimiser exists to validate it (and
//! to handle any future non-additive extension). It walks over per-group
//! candidate indices, accepting cost increases with Boltzmann probability
//! and rejecting deadline violations via a quadratic penalty.

use crate::objective::{Constraint, Deadline};
use crate::{Candidate, Group};
use nm_device::KnobPoint;
use nm_sweep::ParallelSweep;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Monte-Carlo steps.
    pub steps: u32,
    /// Initial temperature as a fraction of the initial cost.
    pub initial_temperature: f64,
    /// Geometric cooling rate per step.
    pub cooling: f64,
    /// Penalty weight for deadline violation (per second of violation,
    /// squared, relative to the deadline).
    pub penalty: f64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            steps: 20_000,
            initial_temperature: 0.5,
            cooling: 0.9995,
            penalty: 1e3,
        }
    }
}

/// An annealed solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnealSolution {
    /// Chosen knob pair per group.
    pub choice: Vec<KnobPoint>,
    /// Achieved total delay (seconds).
    pub delay: f64,
    /// Achieved total cost.
    pub cost: f64,
    /// `true` when the deadline is met.
    pub feasible: bool,
}

fn evaluate(groups: &[Group], idx: &[usize]) -> (f64, f64) {
    let mut delay = 0.0;
    let mut cost = 0.0;
    for (g, &i) in groups.iter().zip(idx) {
        let c: &Candidate = &g.candidates()[i];
        delay += c.delay;
        cost += c.cost;
    }
    (delay, cost)
}

/// Minimises total cost subject to `total delay ≤ deadline` by simulated
/// annealing. Deterministic for a given seed.
pub fn anneal(groups: &[Group], deadline: f64, config: AnnealConfig, seed: u64) -> AnnealSolution {
    anneal_under(groups, &Deadline(deadline), config, seed)
}

/// Minimises total cost subject to an arbitrary [`Constraint`] by
/// simulated annealing, penalising violations quadratically through
/// [`Constraint::violation`]. Deterministic for a given seed.
pub fn anneal_under<C: Constraint>(
    groups: &[Group],
    constraint: &C,
    config: AnnealConfig,
    seed: u64,
) -> AnnealSolution {
    assert!(!groups.is_empty(), "anneal needs at least one group");
    let mut rng = StdRng::seed_from_u64(seed);

    // Start from the slowest/cheapest candidate of each group if feasible,
    // else the fastest.
    let start_idx: Vec<usize> = groups
        .iter()
        .map(|g| {
            let cands = g.candidates();
            (0..cands.len())
                .min_by(|&a, &b| cands[a].delay.total_cmp(&cands[b].delay))
                .unwrap_or(0)
        })
        .collect();

    let objective = |idx: &[usize]| {
        let (delay, cost) = evaluate(groups, idx);
        let violation = constraint.violation(delay, cost);
        cost * (1.0 + config.penalty * violation * violation)
    };

    let mut idx = start_idx;
    let mut best_idx = idx.clone();
    let mut current = objective(&idx);
    let mut best = current;
    let mut temperature = current.max(1e-30) * config.initial_temperature;

    for _ in 0..config.steps {
        // Propose: re-pick one group's candidate uniformly.
        let g = rng.gen_range(0..groups.len());
        let old = idx[g];
        idx[g] = rng.gen_range(0..groups[g].candidates().len());
        let proposed = objective(&idx);
        let accept = proposed <= current || {
            let p = ((current - proposed) / temperature.max(1e-300)).exp();
            rng.gen::<f64>() < p
        };
        if accept {
            current = proposed;
            if proposed < best {
                let (delay, cost) = evaluate(groups, &idx);
                if constraint.satisfied(delay, cost) {
                    best = proposed;
                    best_idx = idx.clone();
                }
            }
        } else {
            idx[g] = old;
        }
        temperature *= config.cooling;
    }

    let (delay, cost) = evaluate(groups, &best_idx);
    AnnealSolution {
        choice: best_idx
            .iter()
            .zip(groups)
            .map(|(&i, g)| g.candidates()[i].knobs)
            .collect(),
        delay,
        cost,
        feasible: constraint.satisfied(delay, cost),
    }
}

/// Runs `restarts` independent annealing chains (seeds `seed`,
/// `seed + 1`, …) on the bounded executor and returns the best solution:
/// feasible beats infeasible, then lower cost wins, with ties broken by
/// the earliest seed so the result is deterministic for any worker count.
///
/// # Panics
///
/// Panics when `groups` is empty or `restarts == 0`.
#[allow(clippy::expect_used)] // fingerprinted in analyze.allow: restarts >= 1 asserted above
pub fn anneal_restarts(
    groups: &[Group],
    deadline: f64,
    config: AnnealConfig,
    seed: u64,
    restarts: usize,
) -> AnnealSolution {
    assert!(restarts >= 1, "anneal_restarts needs at least one restart");
    let seeds: Vec<u64> = (0..restarts as u64).map(|i| seed.wrapping_add(i)).collect();
    let solutions = ParallelSweep::new()
        .labeled("anneal-restarts")
        .map(&seeds, |&s| anneal(groups, deadline, config, s));
    solutions
        .into_iter()
        .reduce(|best, sol| {
            let better = (sol.feasible && !best.feasible)
                || (sol.feasible == best.feasible && sol.cost < best.cost);
            if better {
                sol
            } else {
                best
            }
        })
        .expect("at least one restart ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::best_under_deadline;
    use crate::merge::system_front;
    use nm_device::units::{Angstroms, Volts};

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    fn grid_group(name: &str, scale: f64) -> Group {
        let mut cands = Vec::new();
        for i in 0..7 {
            let vth = 0.2 + 0.05 * i as f64;
            for j in 0..5 {
                let tox = 10.0 + j as f64;
                let delay = scale * (1.0 + 3.0 * vth + 0.08 * tox);
                let cost =
                    scale * ((-12.0 * vth).exp() * 80.0 + (-1.1 * (tox - 10.0)).exp() * 30.0);
                cands.push(Candidate::new(k(vth, tox), delay, cost));
            }
        }
        Group::new(name, cands)
    }

    #[test]
    fn anneal_matches_exact_solver_within_tolerance() {
        let groups = vec![
            grid_group("a", 1.0),
            grid_group("b", 1.7),
            grid_group("c", 0.6),
        ];
        let front = system_front(&groups);
        for deadline in [8.5, 10.0, 12.0] {
            let exact = best_under_deadline(&front, deadline).expect("feasible");
            let approx = anneal(&groups, deadline, AnnealConfig::default(), 42);
            assert!(approx.feasible, "deadline {deadline}");
            assert!(
                approx.cost >= exact.cost - 1e-9,
                "annealing beat the exact optimum?!"
            );
            assert!(
                approx.cost <= exact.cost * 1.05 + 1e-12,
                "deadline {deadline}: anneal {} vs exact {}",
                approx.cost,
                exact.cost
            );
        }
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let groups = vec![grid_group("a", 1.0), grid_group("b", 2.0)];
        let a = anneal(&groups, 8.0, AnnealConfig::default(), 7);
        let b = anneal(&groups, 8.0, AnnealConfig::default(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn restarts_never_worse_than_single_run_and_deterministic() {
        let groups = vec![
            grid_group("a", 1.0),
            grid_group("b", 1.7),
            grid_group("c", 0.6),
        ];
        let single = anneal(&groups, 9.0, AnnealConfig::default(), 7);
        let multi = anneal_restarts(&groups, 9.0, AnnealConfig::default(), 7, 4);
        assert!(multi.feasible);
        assert!(
            multi.cost <= single.cost + 1e-12,
            "restarts {} worse than single {}",
            multi.cost,
            single.cost
        );
        // Deterministic regardless of worker count.
        for workers in [1, 3] {
            nm_sweep::set_global_workers(Some(workers));
            let again = anneal_restarts(&groups, 9.0, AnnealConfig::default(), 7, 4);
            assert_eq!(again, multi, "workers = {workers}");
        }
        nm_sweep::set_global_workers(None);
    }

    #[test]
    fn infeasible_deadline_reported() {
        let groups = vec![grid_group("a", 1.0)];
        let sol = anneal(&groups, 0.01, AnnealConfig::default(), 1);
        assert!(!sol.feasible);
    }

    #[test]
    fn anneal_under_deadline_matches_legacy_entry_point() {
        let groups = vec![grid_group("a", 1.0), grid_group("b", 2.0)];
        let legacy = anneal(&groups, 8.0, AnnealConfig::default(), 7);
        let traited = anneal_under(&groups, &Deadline(8.0), AnnealConfig::default(), 7);
        assert_eq!(legacy, traited);
    }

    #[test]
    fn anneal_under_cost_budget_meets_the_budget() {
        use crate::objective::CostBudget;
        let groups = vec![grid_group("a", 1.0), grid_group("b", 1.7)];
        let budget = 40.0;
        let sol = anneal_under(&groups, &CostBudget(budget), AnnealConfig::default(), 3);
        assert!(sol.feasible, "budget {budget} should be achievable");
        assert!(sol.cost <= budget + 1e-12, "cost {} over budget", sol.cost);
    }
}
