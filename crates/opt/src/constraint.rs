//! Reading constrained optima off a Pareto front.

use crate::merge::FrontPoint;
use crate::objective::Constraint;

/// Reads the optimum off a front under any [`Constraint`] — the
/// trait-based form of [`best_under_deadline`] / [`fastest_under_budget`].
pub fn optimum<'a, C: Constraint>(
    front: &'a [FrontPoint],
    constraint: &C,
) -> Option<&'a FrontPoint> {
    constraint.select(front)
}

/// Returns the cheapest front point whose delay meets the deadline, or
/// `None` when the deadline is infeasible (tighter than the fastest
/// point).
///
/// `front` must be sorted by ascending delay with descending cost, as
/// produced by [`crate::merge::system_front`].
pub fn best_under_deadline(front: &[FrontPoint], deadline: f64) -> Option<&FrontPoint> {
    // The front is cost-descending in delay, so the *slowest* feasible
    // point is the cheapest feasible one.
    front.iter().take_while(|p| p.delay <= deadline).last()
}

/// Returns the fastest front point whose cost is at most `budget`, or
/// `None` when no point is cheap enough (the dual query).
pub fn fastest_under_budget(front: &[FrontPoint], budget: f64) -> Option<&FrontPoint> {
    front.iter().find(|p| p.cost <= budget)
}

/// Evenly spaced feasible deadlines across a front's delay range
/// (inclusive of both endpoints), for sweep-style experiments.
pub fn deadline_sweep(front: &[FrontPoint], steps: usize) -> Vec<f64> {
    let (Some(first), Some(last)) = (front.first(), front.last()) else {
        return Vec::new();
    };
    if steps == 0 {
        return Vec::new();
    }
    let lo = first.delay;
    let hi = last.delay;
    if steps == 1 || hi <= lo {
        return vec![hi];
    }
    (0..steps)
        .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::KnobPoint;

    fn front() -> Vec<FrontPoint> {
        vec![
            FrontPoint {
                delay: 1.0,
                cost: 10.0,
                choice: vec![KnobPoint::nominal()],
            },
            FrontPoint {
                delay: 2.0,
                cost: 5.0,
                choice: vec![KnobPoint::nominal()],
            },
            FrontPoint {
                delay: 4.0,
                cost: 1.0,
                choice: vec![KnobPoint::nominal()],
            },
        ]
    }

    #[test]
    fn deadline_picks_cheapest_feasible() {
        let f = front();
        assert_eq!(best_under_deadline(&f, 3.0).unwrap().cost, 5.0);
        assert_eq!(best_under_deadline(&f, 4.0).unwrap().cost, 1.0);
        assert_eq!(best_under_deadline(&f, 100.0).unwrap().cost, 1.0);
        assert_eq!(best_under_deadline(&f, 1.0).unwrap().cost, 10.0);
        assert!(best_under_deadline(&f, 0.5).is_none());
    }

    #[test]
    fn budget_picks_fastest_affordable() {
        let f = front();
        assert_eq!(fastest_under_budget(&f, 7.0).unwrap().delay, 2.0);
        assert_eq!(fastest_under_budget(&f, 100.0).unwrap().delay, 1.0);
        assert!(fastest_under_budget(&f, 0.5).is_none());
    }

    #[test]
    fn sweep_spans_range_inclusive() {
        let f = front();
        let s = deadline_sweep(&f, 4);
        assert_eq!(s.len(), 4);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[3] - 4.0).abs() < 1e-12);
        assert_eq!(deadline_sweep(&f, 1), vec![4.0]);
        assert!(deadline_sweep(&[], 5).is_empty());
        assert!(deadline_sweep(&f, 0).is_empty());
    }
}
