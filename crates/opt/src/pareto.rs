//! Pareto-dominance pruning on (delay, cost) candidate sets.

use crate::Candidate;

/// Sorts candidates by delay and removes every dominated one (another
/// candidate at most as slow and strictly cheaper, or at most as
/// expensive and strictly faster).
///
/// The result is sorted by ascending delay with strictly descending cost,
/// which is what [`crate::constraint::best_under_deadline`] binary-searches
/// over. Exact ties in both metrics keep the first occurrence.
///
/// NaN candidates (a NaN delay or cost — constructible through raw
/// `Candidate` literals, e.g. by fault-injection surfaces) are treated as
/// dominated and dropped up front, so downstream merges only ever see a
/// total order; `total_cmp` keeps the sort itself panic-free either way.
pub fn prune(mut candidates: Vec<Candidate>) -> Vec<Candidate> {
    candidates.retain(|c| !c.delay.is_nan() && !c.cost.is_nan());
    candidates.sort_by(|a, b| a.delay.total_cmp(&b.delay).then(a.cost.total_cmp(&b.cost)));
    let mut front: Vec<Candidate> = Vec::with_capacity(candidates.len());
    for c in candidates {
        match front.last() {
            Some(last) if c.cost >= last.cost => {
                // Slower (or equal) and at least as expensive: dominated.
            }
            _ => front.push(c),
        }
    }
    front
}

/// `true` when `a` dominates `b` (no worse on both axes, better on one).
pub fn dominates(a: &Candidate, b: &Candidate) -> bool {
    (a.delay <= b.delay && a.cost < b.cost) || (a.delay < b.delay && a.cost <= b.cost)
}

/// ε-pruning: like [`prune`], then thins the frontier so consecutive
/// survivors differ by at least a relative `eps` in delay *or* cost.
///
/// Bounds the front size for very fine grids at a bounded optimality
/// loss: for any deadline, the ε-front contains a point whose cost is
/// within a factor `(1 + eps)` of the exact front's optimum at a deadline
/// within `(1 + eps)` of the requested one. The fastest and cheapest
/// points always survive.
///
/// # Panics
///
/// Panics for negative or non-finite `eps` (`eps = 0` degenerates to
/// exact pruning).
pub fn prune_epsilon(candidates: Vec<Candidate>, eps: f64) -> Vec<Candidate> {
    assert!(
        eps.is_finite() && eps >= 0.0,
        "epsilon must be non-negative, got {eps}"
    );
    let exact = prune(candidates);
    if eps == 0.0 || exact.len() <= 2 {
        return exact;
    }
    let mut out: Vec<Candidate> = Vec::with_capacity(exact.len());
    let last_index = exact.len() - 1;
    for (i, c) in exact.iter().enumerate() {
        if i == 0 || i == last_index {
            out.push(*c);
            continue;
        }
        // The first element is always kept, so `out` is non-empty here;
        // degrade to keeping the point if that invariant ever breaks.
        let (kept_delay, kept_cost) = match out.last() {
            Some(kept) => (kept.delay, kept.cost),
            None => {
                out.push(*c);
                continue;
            }
        };
        let delay_gap = (c.delay - kept_delay) / kept_delay.max(f64::MIN_POSITIVE);
        let cost_gap = (kept_cost - c.cost) / c.cost.max(f64::MIN_POSITIVE);
        if delay_gap >= eps || cost_gap >= eps {
            out.push(*c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::KnobPoint;

    fn c(delay: f64, cost: f64) -> Candidate {
        Candidate::new(KnobPoint::nominal(), delay, cost)
    }

    #[test]
    fn prune_keeps_frontier_sorted() {
        let front = prune(vec![c(3.0, 1.0), c(1.0, 3.0), c(2.0, 2.0), c(2.5, 2.5)]);
        assert_eq!(front.len(), 3);
        for w in front.windows(2) {
            assert!(w[0].delay < w[1].delay);
            assert!(w[0].cost > w[1].cost);
        }
    }

    #[test]
    fn prune_removes_dominated() {
        let front = prune(vec![c(1.0, 1.0), c(2.0, 2.0), c(0.5, 5.0)]);
        assert_eq!(front.len(), 2);
        assert!(front.iter().all(|p| p.delay != 2.0));
    }

    #[test]
    fn prune_handles_exact_ties() {
        let front = prune(vec![c(1.0, 1.0), c(1.0, 1.0), c(1.0, 2.0)]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn prune_single_and_empty() {
        assert_eq!(prune(vec![]).len(), 0);
        assert_eq!(prune(vec![c(1.0, 1.0)]).len(), 1);
    }

    #[test]
    fn dominance_relation() {
        assert!(dominates(&c(1.0, 1.0), &c(2.0, 2.0)));
        assert!(dominates(&c(1.0, 1.0), &c(1.0, 2.0)));
        assert!(dominates(&c(1.0, 1.0), &c(2.0, 1.0)));
        assert!(!dominates(&c(1.0, 1.0), &c(1.0, 1.0)));
        assert!(!dominates(&c(1.0, 3.0), &c(2.0, 1.0)));
    }

    #[test]
    fn epsilon_pruning_thins_but_keeps_endpoints() {
        let cands: Vec<Candidate> = (0..1000)
            .map(|i| {
                let x = 1.0 + i as f64 * 0.001;
                c(x, 2.0 / x)
            })
            .collect();
        let exact = prune(cands.clone());
        let thinned = prune_epsilon(cands, 0.05);
        assert!(
            thinned.len() < exact.len() / 5,
            "{} vs {}",
            thinned.len(),
            exact.len()
        );
        assert_eq!(thinned.first().unwrap().delay, exact.first().unwrap().delay);
        assert_eq!(thinned.last().unwrap().delay, exact.last().unwrap().delay);
        // Bounded loss: every exact point has an ε-neighbour no more than
        // (1+eps) worse on both axes.
        for e in &exact {
            let ok = thinned
                .iter()
                .any(|t| t.delay <= e.delay * 1.05 + 1e-12 && t.cost <= e.cost * 1.05 + 1e-12);
            assert!(ok, "point ({}, {}) uncovered", e.delay, e.cost);
        }
    }

    #[test]
    fn epsilon_zero_is_exact() {
        let cands = vec![c(1.0, 3.0), c(2.0, 2.0), c(3.0, 1.0)];
        assert_eq!(prune_epsilon(cands.clone(), 0.0), prune(cands));
    }

    #[test]
    #[should_panic(expected = "epsilon must be non-negative")]
    fn negative_epsilon_panics() {
        let _ = prune_epsilon(vec![c(1.0, 1.0)], -0.1);
    }

    #[test]
    fn nan_candidates_are_dominated_out_not_a_crash() {
        // Raw literals bypass Candidate::new's finiteness assert — the
        // route a poisoned fault-injection surface takes.
        let nan_delay = Candidate {
            knobs: KnobPoint::nominal(),
            delay: f64::NAN,
            cost: 0.5,
        };
        let nan_cost = Candidate {
            knobs: KnobPoint::nominal(),
            delay: 0.5,
            cost: f64::NAN,
        };
        let front = prune(vec![c(2.0, 1.0), nan_delay, c(1.0, 2.0), nan_cost]);
        assert_eq!(front.len(), 2);
        assert!(front
            .iter()
            .all(|p| p.delay.is_finite() && p.cost.is_finite()));
    }

    #[test]
    fn all_nan_input_prunes_to_empty() {
        let nan = Candidate {
            knobs: KnobPoint::nominal(),
            delay: f64::NAN,
            cost: f64::NAN,
        };
        assert!(prune(vec![nan, nan]).is_empty());
    }

    #[test]
    fn no_front_point_dominates_another() {
        let front = prune(
            (0..100)
                .map(|i| {
                    let x = i as f64;
                    c((x * 7.3) % 13.0, (x * 3.1) % 11.0)
                })
                .collect(),
        );
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    assert!(!dominates(a, b), "{i} dominates {j}");
                }
            }
        }
    }
}
