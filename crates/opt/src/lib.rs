//! # nm-opt — discrete `Vth`/`Tox` assignment optimisation
//!
//! The paper (Section 4) formulates leakage minimisation under a delay
//! constraint as a nonlinear program over per-component (`Vth`, `Tox`)
//! pairs, solved over "discrete values with small step size". This crate
//! provides exact solvers for that discrete problem, exploiting the
//! paper's own structural assumption — component delays and leakages are
//! independent and **additive**:
//!
//! * a [`Candidate`] is one knob pair's `(delay, cost)` for a *group* of
//!   components sharing that pair;
//! * [`pareto::prune`] discards dominated candidates;
//! * [`merge::system_front`] combines groups into the exact Pareto front
//!   of the whole system by pruned pairwise summation — every point of the
//!   front carries the knob choice that achieves it;
//! * [`constraint::best_under_deadline`] reads the optimum off the front
//!   for any delay constraint;
//! * [`mod@objective`] names the [`Objective`](objective::Objective) /
//!   [`Constraint`](objective::Constraint) trait pair every solver
//!   consumes — studies describe *what* they optimise, never *how*;
//! * [`mod@tuple`] enumerates the (`nTox`, `nVth`) value-count restrictions of
//!   the paper's Figure 2;
//! * [`anneal`] is an independent stochastic cross-check of the exact
//!   solvers;
//! * [`budget`] is a delay-budget dynamic program — a second independent
//!   solver, exact up to its budget quantisation.
//!
//! The three assignment schemes of Section 4 map onto groups directly:
//! Scheme I gives each component its own group; Scheme II groups the cell
//! array apart from the periphery; Scheme III puts everything in one
//! group.
//!
//! ```
//! use nm_opt::{Candidate, Group};
//! use nm_opt::merge::system_front;
//! use nm_opt::constraint::best_under_deadline;
//! use nm_device::KnobPoint;
//!
//! // Two trivial groups with a fast/expensive and slow/cheap candidate.
//! let mk = |d: f64, c: f64| Candidate::new(KnobPoint::nominal(), d, c);
//! let g = Group::new("g", vec![mk(1.0, 10.0), mk(2.0, 1.0)]);
//! let front = system_front(&[g.clone(), g]);
//! let best = best_under_deadline(&front, 3.0).unwrap();
//! assert_eq!(best.cost, 11.0); // one fast + one slow
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod budget;
pub mod constraint;
pub mod merge;
pub mod objective;
pub mod pareto;
pub mod tuple;

use nm_device::KnobPoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One knob pair's evaluation for a component group: the group's summed
/// delay contribution and summed cost (leakage power or energy — the
/// solver is unit-agnostic, costs only need to be additive and
/// non-negative).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The knob pair that produced this evaluation.
    pub knobs: KnobPoint,
    /// Delay contribution in seconds (pre-weighted by the caller where
    /// the system objective weights it, e.g. L2 delay by the L1 miss
    /// rate in an AMAT study).
    pub delay: f64,
    /// Additive cost (e.g. leakage watts, or energy joules).
    pub cost: f64,
}

impl Candidate {
    /// Creates a candidate.
    ///
    /// # Panics
    ///
    /// Panics when delay or cost is negative or non-finite — candidates
    /// come from physical models and must be well-formed.
    pub fn new(knobs: KnobPoint, delay: f64, cost: f64) -> Self {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "candidate delay must be finite and non-negative, got {delay}"
        );
        assert!(
            cost.is_finite() && cost >= 0.0,
            "candidate cost must be finite and non-negative, got {cost}"
        );
        Candidate { knobs, delay, cost }
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} delay={:.3e}s cost={:.3e}",
            self.knobs, self.delay, self.cost
        )
    }
}

/// A named set of candidates for one knob-sharing component group, one
/// candidate per surviving grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Group {
    name: String,
    candidates: Vec<Candidate>,
}

impl Group {
    /// Creates a group from raw candidates.
    ///
    /// # Panics
    ///
    /// Panics when `candidates` is empty — an empty group would make the
    /// whole system infeasible and always indicates a caller bug.
    pub fn new(name: impl Into<String>, candidates: Vec<Candidate>) -> Self {
        assert!(
            !candidates.is_empty(),
            "a group needs at least one candidate"
        );
        Group {
            name: name.into(),
            candidates,
        }
    }

    /// Group name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The candidate list.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Returns this group reduced to its Pareto-optimal candidates.
    #[must_use]
    pub fn pruned(&self) -> Group {
        Group {
            name: self.name.clone(),
            candidates: pareto::prune(self.candidates.clone()),
        }
    }

    /// Returns this group restricted to candidates whose knob values are
    /// drawn from the given `Vth` and `Tox` value sets (used by the
    /// tuple-count experiments). Returns `None` if nothing survives.
    #[must_use]
    pub fn restricted(&self, vths: &[f64], toxes: &[f64]) -> Option<Group> {
        const EPS: f64 = 1e-9;
        let candidates: Vec<Candidate> = self
            .candidates
            .iter()
            .filter(|c| {
                vths.iter().any(|&v| (c.knobs.vth().0 - v).abs() < EPS)
                    && toxes.iter().any(|&t| (c.knobs.tox().0 - t).abs() < EPS)
            })
            .copied()
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(Group {
                name: self.name.clone(),
                candidates,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::units::{Angstroms, Volts};

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_delay_rejected() {
        let _ = Candidate::new(KnobPoint::nominal(), -1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_group_rejected() {
        let _ = Group::new("x", vec![]);
    }

    #[test]
    fn restriction_filters_by_value_sets() {
        let g = Group::new(
            "g",
            vec![
                Candidate::new(k(0.2, 10.0), 1.0, 1.0),
                Candidate::new(k(0.3, 10.0), 2.0, 2.0),
                Candidate::new(k(0.2, 14.0), 3.0, 3.0),
            ],
        );
        let r = g.restricted(&[0.2], &[10.0, 14.0]).unwrap();
        assert_eq!(r.candidates().len(), 2);
        assert!(g.restricted(&[0.4], &[10.0]).is_none());
    }

    #[test]
    fn pruned_removes_dominated() {
        let g = Group::new(
            "g",
            vec![
                Candidate::new(k(0.2, 10.0), 1.0, 1.0),
                Candidate::new(k(0.3, 10.0), 2.0, 2.0), // dominated
                Candidate::new(k(0.4, 10.0), 0.5, 2.0),
            ],
        );
        assert_eq!(g.pruned().candidates().len(), 2);
        assert_eq!(g.pruned().name(), "g");
    }

    #[test]
    fn display_shows_numbers() {
        let c = Candidate::new(k(0.2, 10.0), 1e-9, 2e-3);
        let s = c.to_string();
        assert!(s.contains("delay") && s.contains("cost"), "{s}");
    }
}
