//! Exact system-front construction by pruned pairwise summation.
//!
//! For groups with additive delay and cost, the Pareto front of the whole
//! system is the pruned Minkowski sum of the group fronts. Pruning after
//! every pairwise merge keeps the intermediate fronts small, so the
//! overall cost is far below the naive product of group sizes while the
//! result stays exact: every non-dominated (delay, cost) combination
//! survives, each carrying the knob choice that achieves it.
//!
//! ## Merge mechanics
//!
//! Each pairwise merge streams the sum matrix through a min-heap instead
//! of materializing it. A pruned front is strictly ascending in delay and
//! strictly descending in cost, so for a fixed front point the sums over
//! the next group's candidates are already delay-sorted; a `(delay, cost,
//! row, column)`-keyed heap therefore pops the exact global sort order
//! (ties included) that sorting the full cross product would produce,
//! in O(F·G·log F) time and O(F) live memory.
//!
//! Survivors carry only a predecessor index into the previous merged
//! layer; per-point knob `choice` vectors are resolved once at the end by
//! walking the predecessor links ([`MergeBase::front`]), not cloned on
//! every keep.
//!
//! ## Incremental re-merge
//!
//! [`MergeBase`] retains every intermediate layer (cheaply, behind `Arc`).
//! When a system is re-merged and only a suffix of its groups changed —
//! the restricted solves of the deadline studies mutate one group at a
//! time — [`system_front_with_base`] reuses the longest unchanged prefix
//! of layers verbatim. Because each layer is a pure left-fold over the
//! pruned group fronts, a reused prefix is bit-identical to recomputing
//! it (float addition is reassociated nowhere).

use crate::pareto;
use crate::{Candidate, Group};
use nm_device::KnobPoint;
use serde::{Deserialize, Serialize};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

/// One point of a system Pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontPoint {
    /// Total system delay (sum of group delays), seconds.
    pub delay: f64,
    /// Total system cost (sum of group costs).
    pub cost: f64,
    /// The knob pair chosen for each group, in input order.
    pub choice: Vec<KnobPoint>,
}

/// A system had no groups to merge — the typed form of the
/// [`system_front`] panic, for callers that must degrade gracefully
/// (e.g. a zero-level hierarchy spec reaching the evaluation engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptySystemError;

impl fmt::Display for EmptySystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "system has no groups to merge")
    }
}

impl std::error::Error for EmptySystemError {}

/// The system front after folding in groups `0..=k`, index-based: point
/// `p` chose `knobs[p]` for group `k` and continues at `prev[p]` in the
/// previous layer.
#[derive(Debug, Clone, PartialEq)]
struct Layer {
    prev: Vec<u32>,
    knobs: Vec<KnobPoint>,
    delay: Vec<f64>,
    cost: Vec<f64>,
}

impl Layer {
    fn from_candidates(cands: &[Candidate]) -> Self {
        Layer {
            prev: vec![0; cands.len()],
            knobs: cands.iter().map(|c| c.knobs).collect(),
            delay: cands.iter().map(|c| c.delay).collect(),
            cost: cands.iter().map(|c| c.cost).collect(),
        }
    }

    fn len(&self) -> usize {
        self.delay.len()
    }
}

/// Heap key reproducing the seed merge's sort: `(delay, cost)` with ties
/// broken by the row-major enumeration order of the sum matrix.
struct HeapEntry {
    delay: f64,
    cost: f64,
    row: u32,
    col: u32,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.delay
            .total_cmp(&other.delay)
            .then(self.cost.total_cmp(&other.cost))
            .then(self.row.cmp(&other.row))
            .then(self.col.cmp(&other.col))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

/// Merges the next group's pruned candidates into a layer: an F×G-way
/// ordered stream of sums, kept when strictly cheaper than the last
/// survivor (exactly the seed's sort-then-scan on the materialized cross
/// product, without materializing it).
fn merge_step(prev: &Layer, cands: &[Candidate]) -> Layer {
    let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::with_capacity(prev.len());
    if cands.is_empty() {
        // A group whose candidates all pruned away (e.g. every one NaN)
        // contributes nothing combinable: the merged front is empty.
        return Layer {
            prev: Vec::new(),
            knobs: Vec::new(),
            delay: Vec::new(),
            cost: Vec::new(),
        };
    }
    for row in 0..prev.len() {
        heap.push(Reverse(HeapEntry {
            delay: prev.delay[row] + cands[0].delay,
            cost: prev.cost[row] + cands[0].cost,
            row: row as u32,
            col: 0,
        }));
    }
    let mut next = Layer {
        prev: Vec::new(),
        knobs: Vec::new(),
        delay: Vec::new(),
        cost: Vec::new(),
    };
    while let Some(Reverse(e)) = heap.pop() {
        let keep = match next.cost.last() {
            Some(&last) => e.cost < last,
            None => true,
        };
        if keep {
            next.prev.push(e.row);
            next.knobs.push(cands[e.col as usize].knobs);
            next.delay.push(e.delay);
            next.cost.push(e.cost);
        }
        let col = e.col as usize + 1;
        if col < cands.len() {
            let row = e.row as usize;
            heap.push(Reverse(HeapEntry {
                delay: prev.delay[row] + cands[col].delay,
                cost: prev.cost[row] + cands[col].cost,
                row: e.row,
                col: col as u32,
            }));
        }
    }
    next
}

/// A completed system merge retaining its intermediate layers, so a
/// subsequent merge over the same group prefix can resume mid-fold
/// instead of starting over.
#[derive(Debug, Clone)]
pub struct MergeBase {
    pruned: Vec<Vec<Candidate>>,
    layers: Vec<Arc<Layer>>,
}

impl MergeBase {
    /// Merges `groups` from scratch.
    pub fn try_new(groups: &[Group]) -> Result<Self, EmptySystemError> {
        Self::try_new_with_bases(groups, []).map(|(base, _)| base)
    }

    /// Merges `groups`, resuming from `base` where its group prefix is
    /// unchanged. Returns the new base and the number of reused layers.
    pub fn try_with_base(
        groups: &[Group],
        base: &MergeBase,
    ) -> Result<(Self, usize), EmptySystemError> {
        Self::try_new_with_bases(groups, [base])
    }

    /// Merges `groups`, resuming from whichever of `bases` shares the
    /// longest unchanged pruned-group prefix. Returns the new base and
    /// the number of layers reused from it (0 when merged from scratch).
    ///
    /// Reuse is decided on the **pruned** fronts, so a mutation that does
    /// not change a group's Pareto front still counts as unchanged.
    pub fn try_new_with_bases<'a, I>(
        groups: &[Group],
        bases: I,
    ) -> Result<(Self, usize), EmptySystemError>
    where
        I: IntoIterator<Item = &'a MergeBase>,
    {
        if groups.is_empty() {
            return Err(EmptySystemError);
        }
        let pruned: Vec<Vec<Candidate>> = groups
            .iter()
            .map(|g| g.pruned().candidates().to_vec())
            .collect();
        let mut best: Option<(&MergeBase, usize)> = None;
        for base in bases {
            let matched = base
                .pruned
                .iter()
                .zip(&pruned)
                .take_while(|(have, want)| have == want)
                .count();
            if matched > best.map_or(0, |(_, m)| m) {
                best = Some((base, matched));
            }
        }
        let mut layers: Vec<Arc<Layer>> = Vec::with_capacity(pruned.len());
        if let Some((base, matched)) = best {
            layers.extend(base.layers[..matched].iter().cloned());
        }
        let reused = layers.len();
        for k in reused..pruned.len() {
            let layer = if k == 0 {
                Layer::from_candidates(&pruned[0])
            } else {
                merge_step(&layers[k - 1], &pruned[k])
            };
            layers.push(Arc::new(layer));
        }
        Ok((MergeBase { pruned, layers }, reused))
    }

    /// Number of groups merged into this base.
    pub fn group_count(&self) -> usize {
        self.pruned.len()
    }

    /// Resolves the final layer into owned [`FrontPoint`]s by walking the
    /// predecessor links — the only place `choice` vectors are built.
    pub fn front(&self) -> Vec<FrontPoint> {
        let n_groups = self.layers.len();
        // A base always holds at least one layer (constructors reject
        // empty systems); an empty one yields an empty front.
        let Some(last) = self.layers.last() else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(last.len());
        for p in 0..last.len() {
            let mut choice = vec![KnobPoint::nominal(); n_groups];
            let mut idx = p;
            for k in (0..n_groups).rev() {
                let layer = &self.layers[k];
                choice[k] = layer.knobs[idx];
                idx = layer.prev[idx] as usize;
            }
            out.push(FrontPoint {
                delay: last.delay[p],
                cost: last.cost[p],
                choice,
            });
        }
        out
    }
}

/// Computes the exact Pareto front of a system of additive groups.
///
/// The returned points are sorted by ascending delay with strictly
/// descending cost. Each point's `choice[i]` is the knob pair selected for
/// `groups[i]`.
///
/// # Panics
///
/// Panics when `groups` is empty — a system needs at least one group.
/// Callers that must not abort use [`try_system_front`].
#[allow(clippy::expect_used)] // fingerprinted in analyze.allow: documented panicking wrapper
pub fn system_front(groups: &[Group]) -> Vec<FrontPoint> {
    assert!(!groups.is_empty(), "system_front needs at least one group");
    try_system_front(groups).expect("group emptiness was just checked")
}

/// [`system_front`] with the empty-system case routed through a typed
/// error instead of a panic.
pub fn try_system_front(groups: &[Group]) -> Result<Vec<FrontPoint>, EmptySystemError> {
    MergeBase::try_new(groups).map(|base| base.front())
}

/// [`system_front`] resuming from a previous merge: layers covering the
/// unchanged pruned-group prefix of `base` are reused verbatim (they are
/// bit-identical by construction). Returns the front and the number of
/// reused layers.
///
/// # Panics
///
/// Panics when `groups` is empty.
#[allow(clippy::expect_used)] // fingerprinted in analyze.allow: documented panicking wrapper
pub fn system_front_with_base(groups: &[Group], base: &MergeBase) -> (Vec<FrontPoint>, usize) {
    assert!(!groups.is_empty(), "system_front needs at least one group");
    let (merged, reused) =
        MergeBase::try_with_base(groups, base).expect("group emptiness was just checked");
    (merged.front(), reused)
}

/// Computes the front when every group is forced to share **one** knob
/// pair (the paper's Scheme III, or any fully tied study).
///
/// Candidates are matched across groups by knob equality, so all groups
/// must be built over the same grid.
///
/// # Panics
///
/// Panics when `groups` is empty.
pub fn tied_front(groups: &[Group]) -> Vec<FrontPoint> {
    assert!(!groups.is_empty(), "tied_front needs at least one group");
    let mut sums: Vec<Candidate> = groups[0].candidates().to_vec();
    for group in &groups[1..] {
        assert_eq!(
            group.candidates().len(),
            sums.len(),
            "tied groups must share one grid"
        );
        for (acc, c) in sums.iter_mut().zip(group.candidates()) {
            assert_eq!(acc.knobs, c.knobs, "tied groups must share one grid");
            acc.delay += c.delay;
            acc.cost += c.cost;
        }
    }
    pareto::prune(sums)
        .into_iter()
        .map(|c| FrontPoint {
            delay: c.delay,
            cost: c.cost,
            choice: vec![c.knobs; groups.len()],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::units::{Angstroms, Volts};

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    fn group(name: &str, points: &[(f64, f64, f64, f64)]) -> Group {
        Group::new(
            name,
            points
                .iter()
                .map(|&(vth, tox, d, c)| Candidate::new(k(vth, tox), d, c))
                .collect(),
        )
    }

    #[test]
    fn single_group_front_is_its_pruned_candidates() {
        let g = group(
            "a",
            &[
                (0.2, 10.0, 1.0, 5.0),
                (0.3, 10.0, 2.0, 1.0),
                (0.4, 10.0, 3.0, 2.0),
            ],
        );
        let f = system_front(&[g]);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].choice.len(), 1);
    }

    #[test]
    fn two_group_merge_is_exhaustively_correct() {
        // Compare against brute force over all pairs.
        let ga = group(
            "a",
            &[
                (0.2, 10.0, 1.0, 9.0),
                (0.3, 10.0, 2.0, 4.0),
                (0.4, 10.0, 4.0, 1.0),
            ],
        );
        let gb = group(
            "b",
            &[
                (0.2, 12.0, 1.5, 7.0),
                (0.3, 12.0, 3.0, 2.0),
                (0.5, 12.0, 5.0, 0.5),
            ],
        );
        let front = system_front(&[ga.clone(), gb.clone()]);

        // Brute force: every combination, then check front optimality for
        // every deadline.
        let mut combos = vec![];
        for a in ga.candidates() {
            for b in gb.candidates() {
                combos.push((a.delay + b.delay, a.cost + b.cost));
            }
        }
        for &(d, _) in &combos {
            let best_brute = combos
                .iter()
                .filter(|&&(dd, _)| dd <= d + 1e-12)
                .map(|&(_, cc)| cc)
                .fold(f64::INFINITY, f64::min);
            let best_front = front
                .iter()
                .filter(|p| p.delay <= d + 1e-12)
                .map(|p| p.cost)
                .fold(f64::INFINITY, f64::min);
            assert!(
                (best_brute - best_front).abs() < 1e-12,
                "deadline {d}: brute {best_brute} vs front {best_front}"
            );
        }
    }

    #[test]
    fn front_points_carry_consistent_choices() {
        let ga = group("a", &[(0.2, 10.0, 1.0, 9.0), (0.4, 10.0, 4.0, 1.0)]);
        let gb = group("b", &[(0.2, 12.0, 1.5, 7.0), (0.5, 12.0, 5.0, 0.5)]);
        let front = system_front(&[ga.clone(), gb.clone()]);
        for p in &front {
            assert_eq!(p.choice.len(), 2);
            // Recompute delay/cost from the chosen candidates.
            let a = ga
                .candidates()
                .iter()
                .find(|c| c.knobs == p.choice[0])
                .unwrap();
            let b = gb
                .candidates()
                .iter()
                .find(|c| c.knobs == p.choice[1])
                .unwrap();
            assert!((a.delay + b.delay - p.delay).abs() < 1e-12);
            assert!((a.cost + b.cost - p.cost).abs() < 1e-12);
        }
    }

    #[test]
    fn tied_front_shares_one_knob() {
        let ga = group("a", &[(0.2, 10.0, 1.0, 9.0), (0.4, 10.0, 4.0, 1.0)]);
        let gb = group("b", &[(0.2, 10.0, 1.5, 7.0), (0.4, 10.0, 5.0, 0.5)]);
        let front = tied_front(&[ga, gb]);
        for p in &front {
            assert_eq!(p.choice[0], p.choice[1]);
        }
        // (0.2): delay 2.5 cost 16; (0.4): delay 9 cost 1.5 — both survive.
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn untied_front_never_worse_than_tied() {
        let ga = group("a", &[(0.2, 10.0, 1.0, 9.0), (0.4, 10.0, 4.0, 1.0)]);
        let gb = group("b", &[(0.2, 10.0, 1.5, 7.0), (0.4, 10.0, 5.0, 0.5)]);
        let tied = tied_front(&[ga.clone(), gb.clone()]);
        let free = system_front(&[ga, gb]);
        for t in &tied {
            let best_free = free
                .iter()
                .filter(|p| p.delay <= t.delay + 1e-12)
                .map(|p| p.cost)
                .fold(f64::INFINITY, f64::min);
            assert!(best_free <= t.cost + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn empty_system_panics() {
        let _ = system_front(&[]);
    }

    #[test]
    fn try_system_front_types_the_empty_case() {
        assert_eq!(try_system_front(&[]), Err(EmptySystemError));
        assert_eq!(
            EmptySystemError.to_string(),
            "system has no groups to merge"
        );
    }

    #[test]
    fn nan_candidate_is_dominated_out_not_a_crash() {
        // A NaN that slips past surface validation (raw struct literal,
        // the fault-injection route) must not panic the merge sort.
        let poisoned = Group::new(
            "poisoned",
            vec![
                Candidate::new(k(0.2, 10.0), 1.0, 9.0),
                Candidate {
                    knobs: k(0.3, 10.0),
                    delay: f64::NAN,
                    cost: 0.0,
                },
                Candidate::new(k(0.4, 10.0), 4.0, 1.0),
            ],
        );
        let clean = group("b", &[(0.2, 12.0, 1.5, 7.0), (0.5, 12.0, 5.0, 0.5)]);
        let front = system_front(&[poisoned, clean]);
        assert!(!front.is_empty());
        for p in &front {
            assert!(p.delay.is_finite() && p.cost.is_finite());
            assert_ne!(p.choice[0], k(0.3, 10.0), "NaN candidate was chosen");
        }
    }

    #[test]
    fn incremental_merge_equals_full_merge() {
        let ga = group(
            "a",
            &[
                (0.2, 10.0, 1.0, 9.0),
                (0.3, 10.0, 2.0, 4.0),
                (0.4, 10.0, 4.0, 1.0),
            ],
        );
        let gb = group("b", &[(0.2, 12.0, 1.5, 7.0), (0.5, 12.0, 5.0, 0.5)]);
        let gc = group("c", &[(0.2, 14.0, 0.5, 3.0), (0.4, 14.0, 2.5, 0.25)]);
        let (base, _) =
            MergeBase::try_new_with_bases(&[ga.clone(), gb.clone(), gc.clone()], []).unwrap();

        // Mutate only the last group: the first two layers are reusable.
        let gc2 = group("c", &[(0.3, 14.0, 1.0, 2.0), (0.5, 14.0, 3.0, 0.1)]);
        let system = [ga.clone(), gb.clone(), gc2.clone()];
        let (incremental, reused) = system_front_with_base(&system, &base);
        assert_eq!(reused, 2);
        assert_eq!(incremental, system_front(&system));

        // Mutate the first group: nothing is reusable, result still equal.
        let ga2 = group("a", &[(0.25, 10.0, 1.2, 8.0), (0.45, 10.0, 4.5, 0.9)]);
        let system = [ga2, gb, gc];
        let (incremental, reused) = system_front_with_base(&system, &base);
        assert_eq!(reused, 0);
        assert_eq!(incremental, system_front(&system));
    }

    #[test]
    fn unchanged_system_reuses_every_layer() {
        let system = [
            group("a", &[(0.2, 10.0, 1.0, 9.0), (0.4, 10.0, 4.0, 1.0)]),
            group("b", &[(0.2, 12.0, 1.5, 7.0), (0.5, 12.0, 5.0, 0.5)]),
        ];
        let base = MergeBase::try_new(&system).unwrap();
        let (refreshed, reused) = MergeBase::try_with_base(&system, &base).unwrap();
        assert_eq!(reused, 2);
        assert_eq!(refreshed.group_count(), 2);
        assert_eq!(refreshed.front(), base.front());
    }

    #[test]
    fn best_base_among_several_is_chosen() {
        let ga = group("a", &[(0.2, 10.0, 1.0, 9.0), (0.4, 10.0, 4.0, 1.0)]);
        let gb = group("b", &[(0.2, 12.0, 1.5, 7.0), (0.5, 12.0, 5.0, 0.5)]);
        let gc = group("c", &[(0.2, 14.0, 0.5, 3.0), (0.4, 14.0, 2.5, 0.25)]);
        let other = group("x", &[(0.3, 11.0, 2.0, 2.0)]);
        let shallow = MergeBase::try_new(&[ga.clone(), other]).unwrap();
        let deep = MergeBase::try_new(&[ga.clone(), gb.clone(), gc.clone()]).unwrap();
        let system = [ga, gb, gc];
        let (merged, reused) = MergeBase::try_new_with_bases(&system, [&shallow, &deep]).unwrap();
        assert_eq!(reused, 3);
        assert_eq!(merged.front(), system_front(&system));
    }
}
