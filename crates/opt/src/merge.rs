//! Exact system-front construction by pruned pairwise summation.
//!
//! For groups with additive delay and cost, the Pareto front of the whole
//! system is the pruned Minkowski sum of the group fronts. Pruning after
//! every pairwise merge keeps the intermediate fronts small, so the
//! overall cost is far below the naive product of group sizes while the
//! result stays exact: every non-dominated (delay, cost) combination
//! survives, each carrying the knob choice that achieves it.

use crate::pareto;
use crate::{Candidate, Group};
use nm_device::KnobPoint;
use serde::{Deserialize, Serialize};

/// One point of a system Pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontPoint {
    /// Total system delay (sum of group delays), seconds.
    pub delay: f64,
    /// Total system cost (sum of group costs).
    pub cost: f64,
    /// The knob pair chosen for each group, in input order.
    pub choice: Vec<KnobPoint>,
}

/// Computes the exact Pareto front of a system of additive groups.
///
/// The returned points are sorted by ascending delay with strictly
/// descending cost. Each point's `choice[i]` is the knob pair selected for
/// `groups[i]`.
///
/// # Panics
///
/// Panics when `groups` is empty — a system needs at least one group.
pub fn system_front(groups: &[Group]) -> Vec<FrontPoint> {
    assert!(!groups.is_empty(), "system_front needs at least one group");

    // Start from the first group's pruned front.
    let first = groups[0].pruned();
    let mut front: Vec<FrontPoint> = first
        .candidates()
        .iter()
        .map(|c| FrontPoint {
            delay: c.delay,
            cost: c.cost,
            choice: vec![c.knobs],
        })
        .collect();

    for group in &groups[1..] {
        let pruned = group.pruned();
        let mut combined: Vec<(Candidate, usize)> =
            Vec::with_capacity(front.len() * pruned.candidates().len());
        for (i, fp) in front.iter().enumerate() {
            for c in pruned.candidates() {
                combined.push((
                    Candidate::new(c.knobs, fp.delay + c.delay, fp.cost + c.cost),
                    i,
                ));
            }
        }
        // Prune the combined set on (delay, cost) dominance, tracking the
        // predecessor front point and appended knob for survivors.
        combined.sort_by(|a, b| {
            a.0.delay
                .partial_cmp(&b.0.delay)
                .expect("finite delays")
                .then(a.0.cost.partial_cmp(&b.0.cost).expect("finite costs"))
        });
        let mut next: Vec<FrontPoint> = Vec::new();
        for (c, i) in combined {
            let keep = match next.last() {
                Some(last) => c.cost < last.cost,
                None => true,
            };
            if keep {
                let mut choice = front[i].choice.clone();
                choice.push(c.knobs);
                next.push(FrontPoint {
                    delay: c.delay,
                    cost: c.cost,
                    choice,
                });
            }
        }
        front = next;
    }
    front
}

/// Computes the front when every group is forced to share **one** knob
/// pair (the paper's Scheme III, or any fully tied study).
///
/// Candidates are matched across groups by knob equality, so all groups
/// must be built over the same grid.
///
/// # Panics
///
/// Panics when `groups` is empty.
pub fn tied_front(groups: &[Group]) -> Vec<FrontPoint> {
    assert!(!groups.is_empty(), "tied_front needs at least one group");
    let mut sums: Vec<Candidate> = groups[0].candidates().to_vec();
    for group in &groups[1..] {
        assert_eq!(
            group.candidates().len(),
            sums.len(),
            "tied groups must share one grid"
        );
        for (acc, c) in sums.iter_mut().zip(group.candidates()) {
            assert_eq!(acc.knobs, c.knobs, "tied groups must share one grid");
            acc.delay += c.delay;
            acc.cost += c.cost;
        }
    }
    pareto::prune(sums)
        .into_iter()
        .map(|c| FrontPoint {
            delay: c.delay,
            cost: c.cost,
            choice: vec![c.knobs; groups.len()],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::units::{Angstroms, Volts};

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    fn group(name: &str, points: &[(f64, f64, f64, f64)]) -> Group {
        Group::new(
            name,
            points
                .iter()
                .map(|&(vth, tox, d, c)| Candidate::new(k(vth, tox), d, c))
                .collect(),
        )
    }

    #[test]
    fn single_group_front_is_its_pruned_candidates() {
        let g = group(
            "a",
            &[
                (0.2, 10.0, 1.0, 5.0),
                (0.3, 10.0, 2.0, 1.0),
                (0.4, 10.0, 3.0, 2.0),
            ],
        );
        let f = system_front(&[g]);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].choice.len(), 1);
    }

    #[test]
    fn two_group_merge_is_exhaustively_correct() {
        // Compare against brute force over all pairs.
        let ga = group(
            "a",
            &[
                (0.2, 10.0, 1.0, 9.0),
                (0.3, 10.0, 2.0, 4.0),
                (0.4, 10.0, 4.0, 1.0),
            ],
        );
        let gb = group(
            "b",
            &[
                (0.2, 12.0, 1.5, 7.0),
                (0.3, 12.0, 3.0, 2.0),
                (0.5, 12.0, 5.0, 0.5),
            ],
        );
        let front = system_front(&[ga.clone(), gb.clone()]);

        // Brute force: every combination, then check front optimality for
        // every deadline.
        let mut combos = vec![];
        for a in ga.candidates() {
            for b in gb.candidates() {
                combos.push((a.delay + b.delay, a.cost + b.cost));
            }
        }
        for &(d, _) in &combos {
            let best_brute = combos
                .iter()
                .filter(|&&(dd, _)| dd <= d + 1e-12)
                .map(|&(_, cc)| cc)
                .fold(f64::INFINITY, f64::min);
            let best_front = front
                .iter()
                .filter(|p| p.delay <= d + 1e-12)
                .map(|p| p.cost)
                .fold(f64::INFINITY, f64::min);
            assert!(
                (best_brute - best_front).abs() < 1e-12,
                "deadline {d}: brute {best_brute} vs front {best_front}"
            );
        }
    }

    #[test]
    fn front_points_carry_consistent_choices() {
        let ga = group("a", &[(0.2, 10.0, 1.0, 9.0), (0.4, 10.0, 4.0, 1.0)]);
        let gb = group("b", &[(0.2, 12.0, 1.5, 7.0), (0.5, 12.0, 5.0, 0.5)]);
        let front = system_front(&[ga.clone(), gb.clone()]);
        for p in &front {
            assert_eq!(p.choice.len(), 2);
            // Recompute delay/cost from the chosen candidates.
            let a = ga
                .candidates()
                .iter()
                .find(|c| c.knobs == p.choice[0])
                .unwrap();
            let b = gb
                .candidates()
                .iter()
                .find(|c| c.knobs == p.choice[1])
                .unwrap();
            assert!((a.delay + b.delay - p.delay).abs() < 1e-12);
            assert!((a.cost + b.cost - p.cost).abs() < 1e-12);
        }
    }

    #[test]
    fn tied_front_shares_one_knob() {
        let ga = group("a", &[(0.2, 10.0, 1.0, 9.0), (0.4, 10.0, 4.0, 1.0)]);
        let gb = group("b", &[(0.2, 10.0, 1.5, 7.0), (0.4, 10.0, 5.0, 0.5)]);
        let front = tied_front(&[ga, gb]);
        for p in &front {
            assert_eq!(p.choice[0], p.choice[1]);
        }
        // (0.2): delay 2.5 cost 16; (0.4): delay 9 cost 1.5 — both survive.
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn untied_front_never_worse_than_tied() {
        let ga = group("a", &[(0.2, 10.0, 1.0, 9.0), (0.4, 10.0, 4.0, 1.0)]);
        let gb = group("b", &[(0.2, 10.0, 1.5, 7.0), (0.4, 10.0, 5.0, 0.5)]);
        let tied = tied_front(&[ga.clone(), gb.clone()]);
        let free = system_front(&[ga, gb]);
        for t in &tied {
            let best_free = free
                .iter()
                .filter(|p| p.delay <= t.delay + 1e-12)
                .map(|p| p.cost)
                .fold(f64::INFINITY, f64::min);
            assert!(best_free <= t.cost + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn empty_system_panics() {
        let _ = system_front(&[]);
    }
}
