//! Property tests for the optimisation kernels.

use nm_device::units::{Angstroms, Volts};
use nm_device::KnobPoint;
use nm_opt::anneal::{anneal, AnnealConfig};
use nm_opt::budget::solve_budget_dp;
use nm_opt::constraint::{best_under_deadline, deadline_sweep, fastest_under_budget};
use nm_opt::merge::{system_front, system_front_with_base, MergeBase};
use nm_opt::tuple::{combinations, optimize_with_tuple_counts};
use nm_opt::{Candidate, Group};
use proptest::prelude::*;

fn knob(i: usize, j: usize) -> KnobPoint {
    KnobPoint::new(
        Volts(0.2 + 0.3 * (i as f64) / 6.0),
        Angstroms(10.0 + (j as f64)),
    )
    .expect("in range")
}

/// Strategy over a group built on a 7x5 virtual grid with random
/// delay/cost per point.
fn arb_group(name: &'static str) -> impl Strategy<Value = Group> {
    prop::collection::vec((0.1f64..10.0, 0.1f64..10.0), 35).prop_map(move |values| {
        let mut cands = Vec::with_capacity(35);
        for i in 0..7 {
            for j in 0..5 {
                let (d, c) = values[i * 5 + j];
                cands.push(Candidate::new(knob(i, j), d, c));
            }
        }
        Group::new(name, cands)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// System fronts are sorted by delay with strictly decreasing cost.
    #[test]
    fn fronts_are_sorted_and_strict(g1 in arb_group("a"), g2 in arb_group("b")) {
        let front = system_front(&[g1, g2]);
        prop_assert!(!front.is_empty());
        for w in front.windows(2) {
            prop_assert!(w[0].delay < w[1].delay);
            prop_assert!(w[0].cost > w[1].cost);
        }
    }

    /// Deadline and budget queries are consistent duals on any front.
    #[test]
    fn deadline_budget_duality(g in arb_group("a"), frac in 0.0f64..1.0) {
        let front = system_front(&[g]);
        let sweep = deadline_sweep(&front, 10);
        let idx = ((frac * 9.0) as usize).min(sweep.len() - 1);
        let deadline = sweep[idx];
        if let Some(p) = best_under_deadline(&front, deadline) {
            // The fastest point at that cost budget must meet the deadline.
            let q = fastest_under_budget(&front, p.cost).expect("p itself qualifies");
            prop_assert!(q.delay <= deadline + 1e-12);
            prop_assert!(q.cost <= p.cost);
        }
    }

    /// Relaxing the deadline never increases the optimal cost.
    #[test]
    fn cost_monotone_in_deadline(g1 in arb_group("a"), g2 in arb_group("b")) {
        let front = system_front(&[g1, g2]);
        let sweep = deadline_sweep(&front, 8);
        let mut prev = f64::INFINITY;
        for d in sweep {
            if let Some(p) = best_under_deadline(&front, d) {
                prop_assert!(p.cost <= prev + 1e-12);
                prev = p.cost;
            }
        }
    }

    /// Annealing never beats the exact solver and stays feasible when it
    /// reports feasibility.
    #[test]
    fn annealing_bounded_by_exact(g1 in arb_group("a"), g2 in arb_group("b"), frac in 0.2f64..1.0) {
        let groups = vec![g1, g2];
        let front = system_front(&groups);
        let lo = front.first().unwrap().delay;
        let hi = front.last().unwrap().delay;
        let deadline = lo + (hi - lo) * frac;
        let exact = best_under_deadline(&front, deadline).expect("within range");
        let cfg = AnnealConfig {
            steps: 4000,
            ..AnnealConfig::default()
        };
        let sol = anneal(&groups, deadline, cfg, 17);
        if sol.feasible {
            prop_assert!(sol.delay <= deadline + 1e-12);
            prop_assert!(sol.cost >= exact.cost - 1e-9, "annealer beat exact");
        }
    }

    /// Tuple-restricted optima respect their value-count budgets and are
    /// monotone in the budget.
    #[test]
    fn tuple_counts_respected_and_monotone(g1 in arb_group("a"), g2 in arb_group("b")) {
        let groups = vec![g1, g2];
        let vth_axis: Vec<f64> = (0..7).map(|i| 0.2 + 0.3 * (i as f64) / 6.0).collect();
        let tox_axis: Vec<f64> = (0..5).map(|j| 10.0 + j as f64).collect();
        // A deadline no single-knob restriction can violate: the sum of
        // the slowest candidate of each group.
        let deadline: f64 = groups
            .iter()
            .map(|g| {
                g.candidates()
                    .iter()
                    .map(|c| c.delay)
                    .fold(0.0f64, f64::max)
            })
            .sum();
        let one = optimize_with_tuple_counts(&groups, &vth_axis, &tox_axis, 1, 1, &[deadline]);
        let two = optimize_with_tuple_counts(&groups, &vth_axis, &tox_axis, 2, 2, &[deadline]);
        let s1 = one[0].as_ref().expect("relaxed deadline is feasible");
        let s2 = two[0].as_ref().expect("relaxed deadline is feasible");
        prop_assert!(s1.vths.len() == 1 && s1.toxes.len() == 1);
        prop_assert!(s2.vths.len() == 2 && s2.toxes.len() == 2);
        prop_assert!(s2.point.cost <= s1.point.cost + 1e-12);
        for p in &s1.point.choice {
            prop_assert!(s1.vths.iter().any(|&v| (p.vth().0 - v).abs() < 1e-9));
            prop_assert!(s1.toxes.iter().any(|&t| (p.tox().0 - t).abs() < 1e-9));
        }
    }

    /// The budget DP agrees with the exact merge solver within its
    /// quantisation error, on random groups and deadlines.
    #[test]
    fn dp_agrees_with_merge(g1 in arb_group("a"), g2 in arb_group("b"), frac in 0.05f64..1.0) {
        let groups = vec![g1, g2];
        let front = system_front(&groups);
        let lo = front.first().unwrap().delay;
        let hi = front.last().unwrap().delay;
        let deadline = lo + (hi - lo) * frac;
        let exact = best_under_deadline(&front, deadline);
        let dp = solve_budget_dp(&groups, deadline, 4000);
        match (exact, dp) {
            (Some(e), Some(d)) => {
                prop_assert!(d.delay <= deadline + 1e-12);
                prop_assert!(d.cost >= e.cost - 1e-9, "DP beat exact");
                prop_assert!(d.cost <= e.cost * 1.05 + 1e-9, "dp {} vs exact {}", d.cost, e.cost);
            }
            (None, Some(d)) => prop_assert!(false, "DP found {d:?} where exact found none"),
            // Quantisation may make a barely-feasible deadline infeasible
            // for the DP; that direction is acceptable.
            (Some(_), None) | (None, None) => {}
        }
    }

    /// Incremental re-merge from a cached base equals a from-scratch
    /// merge whichever group is mutated, and reuses exactly the layers of
    /// the unchanged prefix.
    #[test]
    fn incremental_merge_equals_full_merge(
        g1 in arb_group("a"),
        g2 in arb_group("b"),
        g3 in arb_group("c"),
        which in 0usize..3,
    ) {
        let groups = vec![g1, g2, g3];
        let base = MergeBase::try_new(&groups).expect("non-empty system");
        let mut mutated = groups.clone();
        // Re-cost one group: every pruned front from it onward changes,
        // everything before it is untouched.
        let recosted: Vec<Candidate> = mutated[which]
            .candidates()
            .iter()
            .map(|c| Candidate::new(c.knobs, c.delay, c.cost * 1.5 + 0.01))
            .collect();
        mutated[which] = Group::new("mutated", recosted);
        let (incremental, reused) = system_front_with_base(&mutated, &base);
        prop_assert_eq!(reused, which);
        prop_assert_eq!(incremental, system_front(&mutated));
    }

    /// `combinations(n, k)` has binomial-coefficient cardinality and only
    /// strictly increasing members.
    #[test]
    fn combinations_cardinality(n in 1usize..9, k in 0usize..6) {
        let items: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let combos = combinations(&items, k);
        let binom = |n: usize, k: usize| -> usize {
            if k > n {
                return 0;
            }
            let mut r = 1usize;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        };
        prop_assert_eq!(combos.len(), binom(n, k));
        for c in &combos {
            for w in c.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
