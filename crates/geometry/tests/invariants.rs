//! Property tests for the cache circuit model's structural invariants.

use nm_device::units::{Angstroms, Volts};
use nm_device::{KnobPoint, TechnologyNode};
use nm_geometry::explore::{best, Objective};
use nm_geometry::{CacheCircuit, CacheConfig, ComponentId, ComponentKnobs, COMPONENT_IDS};
use proptest::prelude::*;

/// Strategy over legal (size, block, associativity) triples.
fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (10u32..24, 5u32..8, 0u32..4).prop_filter_map(
        "config must be internally consistent",
        |(size_log2, block_log2, ways_log2)| {
            CacheConfig::new(1 << size_log2, 1 << block_log2, 1 << ways_log2).ok()
        },
    )
}

fn arb_knobs() -> impl Strategy<Value = KnobPoint> {
    (0.2f64..=0.5, 10.0f64..=14.0)
        .prop_map(|(v, t)| KnobPoint::new(Volts(v), Angstroms(t)).expect("in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The subarray layout conserves every data cell for any legal
    /// configuration.
    #[test]
    fn organization_conserves_cells(config in arb_config()) {
        let org = config.organization();
        prop_assert_eq!(org.rows * org.cols * org.subarrays, config.size_bytes() * 8);
        prop_assert!(org.rows >= 1 && org.cols >= 1 && org.subarrays >= 1);
        prop_assert!(org.sense_amps >= 1);
        prop_assert!(org.tag_cells > 0);
    }

    /// Every component metric is finite and positive at every knob point,
    /// for any configuration.
    #[test]
    fn component_metrics_well_formed(config in arb_config(), knobs in arb_knobs()) {
        let tech = TechnologyNode::bptm65();
        let circuit = CacheCircuit::new(config, &tech);
        for id in COMPONENT_IDS {
            let m = circuit.analyze_component(id, knobs);
            prop_assert!(m.delay.0.is_finite() && m.delay.0 > 0.0, "{id} delay");
            prop_assert!(m.leakage.total().0.is_finite() && m.leakage.total().0 > 0.0, "{id} leak");
            prop_assert!(m.read_energy.0.is_finite() && m.read_energy.0 > 0.0, "{id} energy");
            prop_assert!(m.area.0 > 0.0, "{id} area");
            prop_assert!(m.transistors > 0, "{id} transistors");
        }
    }

    /// Component independence: perturbing one component's knobs never
    /// changes another component's metrics (the paper's additive model).
    #[test]
    fn component_independence(
        config in arb_config(),
        base in arb_knobs(),
        tweak in arb_knobs(),
    ) {
        let tech = TechnologyNode::bptm65();
        let circuit = CacheCircuit::new(config, &tech);
        let a = ComponentKnobs::uniform(base);
        let b = a.with(ComponentId::AddressBus, tweak);
        let ma = circuit.analyze(&a);
        let mb = circuit.analyze(&b);
        for id in [ComponentId::MemoryArray, ComponentId::Decoder, ComponentId::DataBus] {
            prop_assert_eq!(ma.component(id), mb.component(id), "{} changed", id);
        }
    }

    /// Doubling the cache size (same block/ways) increases leakage,
    /// transistors and area at any knob point.
    #[test]
    fn bigger_cache_costs_more(
        size_log2 in 12u32..22,
        knobs in arb_knobs(),
    ) {
        let tech = TechnologyNode::bptm65();
        let small = CacheCircuit::new(
            CacheConfig::new(1 << size_log2, 64, 4).unwrap(),
            &tech,
        );
        let big = CacheCircuit::new(
            CacheConfig::new(1 << (size_log2 + 1), 64, 4).unwrap(),
            &tech,
        );
        let u = ComponentKnobs::uniform(knobs);
        let ms = small.analyze(&u);
        let mb = big.analyze(&u);
        prop_assert!(mb.leakage().total().0 > ms.leakage().total().0);
        prop_assert!(mb.transistors() > ms.transistors());
        prop_assert!(mb.area().0 > ms.area().0);
    }

    /// The leakage of the array component scales essentially linearly
    /// with capacity (between 1.5x and 2.5x per doubling — subarray
    /// quantisation allows slack).
    #[test]
    fn array_leakage_tracks_capacity(size_log2 in 13u32..21, knobs in arb_knobs()) {
        let tech = TechnologyNode::bptm65();
        let leak = |bytes: u64| {
            let c = CacheCircuit::new(CacheConfig::new(bytes, 64, 4).unwrap(), &tech);
            c.analyze_component(ComponentId::MemoryArray, knobs).leakage.total().0
        };
        let ratio = leak(1 << (size_log2 + 1)) / leak(1 << size_log2);
        prop_assert!((1.5..2.5).contains(&ratio), "ratio = {ratio}");
    }

    /// Access time is the exact sum of the four component delays.
    #[test]
    fn access_time_is_component_sum(config in arb_config(), knobs in arb_knobs()) {
        let tech = TechnologyNode::bptm65();
        let circuit = CacheCircuit::new(config, &tech);
        let m = circuit.analyze(&ComponentKnobs::uniform(knobs));
        let sum: f64 = COMPONENT_IDS.iter().map(|&id| m.component(id).delay.0).sum();
        prop_assert!((m.access_time().0 - sum).abs() < 1e-18);
    }

    /// The organisation explorer never does worse than the default
    /// heuristic folding on its own objective.
    #[test]
    fn explorer_beats_or_matches_heuristic(size_log2 in 13u32..21) {
        let tech = TechnologyNode::bptm65();
        let config = CacheConfig::new(1u64 << size_log2, 64, 4).unwrap();
        let heuristic = CacheCircuit::new(config, &tech)
            .analyze(&ComponentKnobs::uniform(KnobPoint::nominal()));
        let found = best(config, &tech, Objective::AccessTime).expect("foldings exist");
        prop_assert!(
            found.metrics.access_time().0 <= heuristic.access_time().0 + 1e-15
        );
    }

    /// Tag bits shrink as sets grow: tags + index + offset always equals
    /// the address width.
    #[test]
    fn tag_index_offset_partition_address(config in arb_config()) {
        let index_bits = config.sets().trailing_zeros();
        let offset_bits = config.block_bytes().trailing_zeros();
        prop_assert_eq!(
            config.tag_bits() + index_bits + offset_bits,
            nm_geometry::config::ADDRESS_BITS
        );
    }
}
