//! Property tests: the structure-of-arrays surface layout is bit-identical
//! to the seed's per-point analysis path.

use nm_device::units::{Angstroms, Volts};
use nm_device::{KnobPoint, PrimsTable, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig, COMPONENT_IDS};
use proptest::prelude::*;

/// Strategy over legal (size, block, associativity) triples.
fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (10u32..24, 5u32..8, 0u32..4).prop_filter_map(
        "config must be internally consistent",
        |(size_log2, block_log2, ways_log2)| {
            CacheConfig::new(1 << size_log2, 1 << block_log2, 1 << ways_log2).ok()
        },
    )
}

/// Strategy over arbitrary in-range point sets — deliberately not grid
/// shaped, so the surface's hash-map index path is exercised too.
fn arb_points() -> impl Strategy<Value = Vec<KnobPoint>> {
    prop::collection::vec(
        (0.2f64..=0.5, 10.0f64..=14.0)
            .prop_map(|(v, t)| KnobPoint::new(Volts(v), Angstroms(t)).expect("in range")),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every metric buffer of a SoA surface carries the exact bits the
    /// seed's per-point `analyze_component` computes, for random circuits
    /// over random point sets.
    #[test]
    fn soa_surface_is_bitwise_identical_to_pointwise_analysis(
        config in arb_config(),
        points in arb_points(),
    ) {
        let tech = TechnologyNode::bptm65();
        let c = CacheCircuit::new(config, &tech);
        for id in COMPONENT_IDS {
            let surface = c.component_surface(id, &points);
            prop_assert_eq!(surface.len(), points.len());
            for (i, &p) in points.iter().enumerate() {
                let direct = c.analyze_component(id, p);
                prop_assert_eq!(surface.delays()[i].to_bits(), direct.delay.0.to_bits());
                prop_assert_eq!(
                    surface.subthreshold_leakages()[i].to_bits(),
                    direct.leakage.subthreshold.0.to_bits()
                );
                prop_assert_eq!(
                    surface.gate_leakages()[i].to_bits(),
                    direct.leakage.gate.0.to_bits()
                );
                prop_assert_eq!(
                    surface.junction_leakages()[i].to_bits(),
                    direct.leakage.junction.0.to_bits()
                );
                prop_assert_eq!(
                    surface.read_energies()[i].to_bits(),
                    direct.read_energy.0.to_bits()
                );
                prop_assert_eq!(
                    surface.write_energies()[i].to_bits(),
                    direct.write_energy.0.to_bits()
                );
                prop_assert_eq!(surface.areas()[i].to_bits(), direct.area.0.to_bits());
                prop_assert_eq!(surface.transistor_counts()[i], direct.transistors);
                prop_assert_eq!(surface.metric_at(i), direct);
            }
        }
    }

    /// One prims table shared across all four components of a circuit
    /// produces the same surfaces as the scalar per-call path.
    #[test]
    fn shared_prims_table_matches_scalar_path(
        config in arb_config(),
        points in arb_points(),
    ) {
        let tech = TechnologyNode::bptm65();
        let c = CacheCircuit::new(config, &tech);
        let table = PrimsTable::new(&tech, &points);
        for id in COMPONENT_IDS {
            let via_table = c.component_surface_with(id, &points, &table);
            let via_scalar = c.component_surface(id, &points);
            prop_assert_eq!(via_table, via_scalar);
        }
    }
}
