//! Subarray-organisation exploration (the Ndwl/Ndbl search of
//! CACTI-class tools).
//!
//! The default folding in [`crate::config::Organization`] is a fixed
//! heuristic; this module enumerates every legal folding and ranks them
//! under a chosen objective at the nominal process corner, so a designer
//! can trade access time against access energy before the knob
//! optimisation even starts.

use crate::cache::{CacheCircuit, CacheMetrics};
use crate::config::{CacheConfig, Organization};
use nm_device::{KnobPoint, TechnologyNode};
use nm_sweep::ParallelSweep;
use serde::{Deserialize, Serialize};

/// Ranking objective for the organisation search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimise access time.
    AccessTime,
    /// Minimise dynamic read energy.
    ReadEnergy,
    /// Minimise the energy–delay product.
    EnergyDelay,
}

impl Objective {
    fn score(self, m: &CacheMetrics) -> f64 {
        match self {
            Objective::AccessTime => m.access_time().0,
            Objective::ReadEnergy => m.read_energy().0,
            Objective::EnergyDelay => m.access_time().0 * m.read_energy().0,
        }
    }
}

/// One explored folding with its nominal-corner metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploredOrganization {
    /// The folding.
    pub org: Organization,
    /// Metrics at the nominal corner under a uniform assignment.
    pub metrics: CacheMetrics,
    /// The objective value it was ranked by.
    pub score: f64,
}

/// Evaluates every legal folding of `config` at the nominal corner and
/// returns them sorted ascending by `objective`.
///
/// ```
/// use nm_device::TechnologyNode;
/// use nm_geometry::explore::{explore, Objective};
/// use nm_geometry::CacheConfig;
///
/// let tech = TechnologyNode::bptm65();
/// let ranked = explore(CacheConfig::new(32 * 1024, 64, 4)?, &tech, Objective::AccessTime);
/// assert!(ranked.len() > 1);
/// assert!(ranked[0].score <= ranked[1].score);
/// # Ok::<(), nm_geometry::GeometryError>(())
/// ```
pub fn explore(
    config: CacheConfig,
    tech: &TechnologyNode,
    objective: Objective,
) -> Vec<ExploredOrganization> {
    let knobs = crate::assignment::ComponentKnobs::uniform(KnobPoint::nominal());
    let candidates = Organization::candidates(config);
    let mut out: Vec<ExploredOrganization> =
        ParallelSweep::new()
            .labeled("fold-explore")
            .map(&candidates, |&org| {
                let circuit = CacheCircuit::with_organization(config, tech, org);
                let metrics = circuit.analyze(&knobs);
                let score = objective.score(&metrics);
                ExploredOrganization {
                    org,
                    metrics,
                    score,
                }
            });
    out.sort_by(|a, b| a.score.total_cmp(&b.score));
    out
}

/// The best folding under an objective (`None` only for configurations
/// with no legal folding, which [`CacheConfig`] validation precludes).
pub fn best(
    config: CacheConfig,
    tech: &TechnologyNode,
    objective: Objective,
) -> Option<ExploredOrganization> {
    explore(config, tech, objective).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CacheConfig {
        CacheConfig::new(64 * 1024, 64, 4).unwrap()
    }

    #[test]
    fn exploration_finds_multiple_foldings() {
        let tech = TechnologyNode::bptm65();
        let all = explore(config(), &tech, Objective::AccessTime);
        assert!(all.len() >= 4, "only {} foldings", all.len());
        // Sorted ascending.
        for w in all.windows(2) {
            assert!(w[0].score <= w[1].score);
        }
        // Every folding conserves cells.
        for e in &all {
            assert_eq!(
                e.org.rows * e.org.cols * e.org.subarrays,
                config().size_bytes() * 8
            );
        }
    }

    #[test]
    fn best_by_delay_beats_or_matches_the_default_heuristic() {
        let tech = TechnologyNode::bptm65();
        let default_metrics = CacheCircuit::new(config(), &tech).analyze(
            &crate::assignment::ComponentKnobs::uniform(KnobPoint::nominal()),
        );
        let best = best(config(), &tech, Objective::AccessTime).unwrap();
        assert!(
            best.metrics.access_time().0 <= default_metrics.access_time().0 + 1e-15,
            "explorer {} ps worse than heuristic {} ps",
            best.metrics.access_time().picos(),
            default_metrics.access_time().picos()
        );
    }

    #[test]
    fn objectives_rank_differently() {
        let tech = TechnologyNode::bptm65();
        let by_time = best(config(), &tech, Objective::AccessTime).unwrap();
        let by_energy = best(config(), &tech, Objective::ReadEnergy).unwrap();
        // The energy-optimal folding must not beat the time-optimal one on
        // time (and vice versa) — sanity of the ranking.
        assert!(by_time.metrics.access_time().0 <= by_energy.metrics.access_time().0 + 1e-15);
        assert!(by_energy.metrics.read_energy().0 <= by_time.metrics.read_energy().0 + 1e-15);
    }

    #[test]
    fn edp_is_between_the_extremes() {
        let tech = TechnologyNode::bptm65();
        let t = best(config(), &tech, Objective::AccessTime).unwrap();
        let e = best(config(), &tech, Objective::ReadEnergy).unwrap();
        let edp = best(config(), &tech, Objective::EnergyDelay).unwrap();
        let score = |m: &CacheMetrics| m.access_time().0 * m.read_energy().0;
        assert!(edp.score <= score(&t.metrics) + 1e-30);
        assert!(edp.score <= score(&e.metrics) + 1e-30);
    }

    #[test]
    fn custom_circuit_reports_its_organization() {
        let tech = TechnologyNode::bptm65();
        let org = Organization::custom(config(), 128, 64).unwrap();
        let circuit = CacheCircuit::with_organization(config(), &tech, org);
        assert_eq!(circuit.organization(), org);
    }

    #[test]
    #[should_panic(expected = "does not tile")]
    fn mismatched_organization_panics() {
        let tech = TechnologyNode::bptm65();
        let other = CacheConfig::new(32 * 1024, 64, 4).unwrap();
        let org = Organization::custom(other, 128, 64).unwrap();
        let _ = CacheCircuit::with_organization(config(), &tech, org);
    }
}
