//! Per-component knob assignments — the decision variables of the paper.

use nm_device::KnobPoint;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// The paper's four cache components (Section 3): "internally, the cache
/// consists of four components: memory cell array and sense amplifier,
/// decoder, address bus drivers, and data bus drivers."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentId {
    /// Memory cell array plus sense amplifiers.
    MemoryArray,
    /// Row decoder (predecode + wordline drive).
    Decoder,
    /// Address bus drivers into the cache.
    AddressBus,
    /// Data bus drivers out of the cache.
    DataBus,
}

/// All four components in canonical order.
pub const COMPONENT_IDS: [ComponentId; 4] = [
    ComponentId::MemoryArray,
    ComponentId::Decoder,
    ComponentId::AddressBus,
    ComponentId::DataBus,
];

impl ComponentId {
    /// Canonical index of this component in [`COMPONENT_IDS`].
    pub fn index(self) -> usize {
        match self {
            ComponentId::MemoryArray => 0,
            ComponentId::Decoder => 1,
            ComponentId::AddressBus => 2,
            ComponentId::DataBus => 3,
        }
    }

    /// `true` for the components the paper groups as "peripheral
    /// circuitry" (everything but the cell array).
    pub fn is_peripheral(self) -> bool {
        !matches!(self, ComponentId::MemoryArray)
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ComponentId::MemoryArray => "memory-array",
            ComponentId::Decoder => "decoder",
            ComponentId::AddressBus => "address-bus",
            ComponentId::DataBus => "data-bus",
        };
        f.write_str(name)
    }
}

/// A complete (`Vth`, `Tox`) assignment: one [`KnobPoint`] per component.
///
/// The three assignment schemes of Section 4 are expressed through the
/// constructors:
///
/// * Scheme I — [`ComponentKnobs::per_component`] (independent pairs),
/// * Scheme II — [`ComponentKnobs::split`] (cell array vs. periphery),
/// * Scheme III — [`ComponentKnobs::uniform`] (one pair for everything).
///
/// ```
/// use nm_device::KnobPoint;
/// use nm_geometry::{ComponentKnobs, ComponentId};
///
/// let split = ComponentKnobs::split(KnobPoint::lowest_leakage(), KnobPoint::fastest());
/// assert_eq!(split[ComponentId::MemoryArray], KnobPoint::lowest_leakage());
/// assert_eq!(split[ComponentId::Decoder], KnobPoint::fastest());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentKnobs {
    knobs: [KnobPoint; 4],
}

impl ComponentKnobs {
    /// Scheme III: the same pair everywhere.
    pub fn uniform(p: KnobPoint) -> Self {
        ComponentKnobs { knobs: [p; 4] }
    }

    /// Scheme II: one pair for the memory cell array, another for the
    /// three peripheral components.
    pub fn split(cells: KnobPoint, periphery: KnobPoint) -> Self {
        ComponentKnobs {
            knobs: [cells, periphery, periphery, periphery],
        }
    }

    /// Scheme I: an independent pair per component, in
    /// [`COMPONENT_IDS`] order.
    pub fn per_component(
        array: KnobPoint,
        decoder: KnobPoint,
        address_bus: KnobPoint,
        data_bus: KnobPoint,
    ) -> Self {
        ComponentKnobs {
            knobs: [array, decoder, address_bus, data_bus],
        }
    }

    /// Knob pair assigned to a component.
    pub fn get(&self, id: ComponentId) -> KnobPoint {
        self.knobs[id.index()]
    }

    /// Replaces the pair of one component, returning the new assignment.
    #[must_use]
    pub fn with(&self, id: ComponentId, p: KnobPoint) -> Self {
        let mut knobs = self.knobs;
        knobs[id.index()] = p;
        ComponentKnobs { knobs }
    }

    /// Iterates `(component, knobs)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (ComponentId, KnobPoint)> + '_ {
        COMPONENT_IDS
            .iter()
            .map(move |&id| (id, self.knobs[id.index()]))
    }

    /// The distinct `Vth` values used, sorted ascending.
    pub fn distinct_vths(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.knobs.iter().map(|p| p.vth().0).collect();
        v.sort_by(f64::total_cmp);
        v.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        v
    }

    /// The distinct `Tox` values used, sorted ascending.
    pub fn distinct_toxes(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.knobs.iter().map(|p| p.tox().0).collect();
        v.sort_by(f64::total_cmp);
        v.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        v
    }
}

impl Default for ComponentKnobs {
    fn default() -> Self {
        Self::uniform(KnobPoint::nominal())
    }
}

impl Index<ComponentId> for ComponentKnobs {
    type Output = KnobPoint;
    fn index(&self, id: ComponentId) -> &KnobPoint {
        &self.knobs[id.index()]
    }
}

impl IndexMut<ComponentId> for ComponentKnobs {
    fn index_mut(&mut self, id: ComponentId) -> &mut KnobPoint {
        &mut self.knobs[id.index()]
    }
}

impl fmt::Display for ComponentKnobs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (id, p) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{id}={p}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::units::{Angstroms, Volts};

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    #[test]
    fn uniform_assigns_everywhere() {
        let u = ComponentKnobs::uniform(k(0.3, 11.0));
        for id in COMPONENT_IDS {
            assert_eq!(u[id], k(0.3, 11.0));
        }
    }

    #[test]
    fn split_separates_array_from_periphery() {
        let s = ComponentKnobs::split(k(0.5, 14.0), k(0.2, 10.0));
        assert_eq!(s[ComponentId::MemoryArray], k(0.5, 14.0));
        for id in COMPONENT_IDS.into_iter().filter(|i| i.is_peripheral()) {
            assert_eq!(s[id], k(0.2, 10.0));
        }
    }

    #[test]
    fn with_replaces_one_component() {
        let u = ComponentKnobs::uniform(k(0.3, 11.0));
        let m = u.with(ComponentId::DataBus, k(0.2, 10.0));
        assert_eq!(m[ComponentId::DataBus], k(0.2, 10.0));
        assert_eq!(m[ComponentId::Decoder], k(0.3, 11.0));
        // Original untouched.
        assert_eq!(u[ComponentId::DataBus], k(0.3, 11.0));
    }

    #[test]
    fn distinct_value_counting() {
        let s =
            ComponentKnobs::per_component(k(0.5, 14.0), k(0.2, 10.0), k(0.2, 10.0), k(0.3, 10.0));
        assert_eq!(s.distinct_vths(), vec![0.2, 0.3, 0.5]);
        assert_eq!(s.distinct_toxes(), vec![10.0, 14.0]);
    }

    #[test]
    fn index_mut_works() {
        let mut u = ComponentKnobs::default();
        u[ComponentId::MemoryArray] = k(0.5, 14.0);
        assert_eq!(u[ComponentId::MemoryArray], k(0.5, 14.0));
    }

    #[test]
    fn peripheral_classification_matches_paper() {
        assert!(!ComponentId::MemoryArray.is_peripheral());
        assert!(ComponentId::Decoder.is_peripheral());
        assert!(ComponentId::AddressBus.is_peripheral());
        assert!(ComponentId::DataBus.is_peripheral());
    }

    #[test]
    fn display_lists_all_components() {
        let s = ComponentKnobs::default().to_string();
        for id in COMPONENT_IDS {
            assert!(s.contains(&id.to_string()), "{s}");
        }
    }
}
