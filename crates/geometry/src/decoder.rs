//! The row-decoder component: a logical-effort buffer/predecode tree plus
//! per-wordline drivers.

use crate::cache::ComponentMetrics;
use crate::config::Organization;
use crate::logic::Gate;
use crate::sram::SramCell;
use nm_device::units::{Farads, Joules, Microns, Seconds, SquareMicrons};
use nm_device::{KnobPoint, PointPrims, ScalarPrims, TechnologyNode};

/// Per-stage electrical effort the decode tree is buffered to.
const STAGE_EFFORT: f64 = 4.0;

/// NMOS width of the decode-tree gates.
const TREE_WN: Microns = Microns(0.5);

/// NMOS width of the final wordline driver.
const DRIVER_WN: Microns = Microns(2.0);

/// Fixed wordline load the driver is sized against at the decoder/array
/// boundary (nominal 512-column wordline; keeps the components
/// independent).
const BOUNDARY_WORDLINE_FF: f64 = 60.0;

/// Area per decoder transistor, µm² (layout density of random logic).
const AREA_PER_TRANSISTOR: f64 = 0.4;

/// Number of logical-effort stages needed to span a total effort `f` at
/// [`STAGE_EFFORT`] per stage (at least 2: predecode + row gate).
fn stage_count(total_effort: f64) -> u32 {
    let n = (total_effort.max(1.0).ln() / STAGE_EFFORT.ln()).ceil() as u32;
    n.max(2)
}

/// Analyses the decoder under its knob pair.
pub fn analyze(
    tech: &TechnologyNode,
    org: &Organization,
    cell: &SramCell,
    knobs: KnobPoint,
) -> ComponentMetrics {
    analyze_with(tech, org, cell, &ScalarPrims::new(knobs))
}

/// [`analyze`] through a primitive provider (the grid-bulk path).
pub fn analyze_with<P: PointPrims>(
    tech: &TechnologyNode,
    org: &Organization,
    _cell: &SramCell,
    prims: &P,
) -> ComponentMetrics {
    let knobs = prims.point();
    let wordlines = org.rows * org.subarrays;
    let tree_gate = Gate::nand2(TREE_WN, knobs);
    let driver = Gate::inverter(DRIVER_WN, knobs);

    // --- Delay -------------------------------------------------------------
    // Total electrical effort: one address input fans out to all row
    // gates of the selected mat group; branching ≈ wordlines.
    let total_effort = wordlines as f64;
    let stages = stage_count(total_effort);
    let fo_load = Farads(tree_gate.input_capacitance_with(tech, prims).0 * STAGE_EFFORT);
    let t_tree = Seconds(tree_gate.delay_with(tech, prims, fo_load).0 * f64::from(stages));
    let t_driver = driver.delay_with(tech, prims, Farads(BOUNDARY_WORDLINE_FF * 1e-15));
    let delay = t_tree + t_driver;

    // --- Leakage -------------------------------------------------------------
    // One row gate + one driver per wordline, plus a predecode stage about
    // an eighth the size of the row-gate rank.
    let row_gates = wordlines as f64;
    let predecode_gates = (row_gates / 8.0).max(4.0);
    let leakage = tree_gate.leakage_with(tech, prims) * (row_gates + predecode_gates)
        + driver.leakage_with(tech, prims) * row_gates;

    // --- Dynamic energy ------------------------------------------------------
    // Per access: the address buffers and two predecode ranks switch, one
    // row gate and one driver fire per active subarray.
    let switched_tree = f64::from(org.decoder_bits) * 2.0 + predecode_gates * 0.25 + 2.0;
    let e_tree = Joules(tree_gate.switching_energy_with(tech, prims, fo_load).0 * switched_tree);
    let e_driver = Joules(
        driver
            .switching_energy_with(tech, prims, Farads(BOUNDARY_WORDLINE_FF * 1e-15))
            .0
            * 2.0,
    );
    let read_energy = e_tree + e_driver;

    // --- Census ----------------------------------------------------------------
    let transistors = (wordlines + predecode_gates as u64) * 4 + wordlines * 2;
    let area = SquareMicrons(transistors as f64 * AREA_PER_TRANSISTOR);

    ComponentMetrics {
        delay,
        leakage,
        read_energy,
        // Address decode and bus switching cost the same either way.
        write_energy: read_energy,
        transistors,
        area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use nm_device::units::{Angstroms, Volts};

    fn org(size: u64) -> Organization {
        CacheConfig::new(size, 64, 4).unwrap().organization()
    }

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    #[test]
    fn stage_count_grows_logarithmically() {
        assert_eq!(stage_count(1.0), 2);
        assert!(stage_count(1e6) > stage_count(1e3));
        assert!(stage_count(1e6) <= 12);
    }

    #[test]
    fn bigger_cache_has_slower_bigger_decoder() {
        let tech = TechnologyNode::bptm65();
        let cell = SramCell::default_65nm();
        let small = analyze(&tech, &org(16 * 1024), &cell, KnobPoint::nominal());
        let big = analyze(&tech, &org(4 * 1024 * 1024), &cell, KnobPoint::nominal());
        assert!(big.delay.0 > small.delay.0);
        assert!(big.leakage.total().0 > small.leakage.total().0);
        assert!(big.transistors > small.transistors);
    }

    #[test]
    fn decoder_delay_tens_to_hundreds_of_ps() {
        let tech = TechnologyNode::bptm65();
        let m = analyze(
            &tech,
            &org(16 * 1024),
            &SramCell::default_65nm(),
            KnobPoint::nominal(),
        );
        assert!(
            (10.0..500.0).contains(&m.delay.picos()),
            "{} ps",
            m.delay.picos()
        );
    }

    #[test]
    fn low_vth_decoder_is_fast_and_leaky() {
        let tech = TechnologyNode::bptm65();
        let cell = SramCell::default_65nm();
        let fast = analyze(&tech, &org(64 * 1024), &cell, k(0.2, 10.0));
        let slow = analyze(&tech, &org(64 * 1024), &cell, k(0.5, 14.0));
        assert!(fast.delay.0 < slow.delay.0);
        assert!(fast.leakage.total().0 > slow.leakage.total().0);
    }

    #[test]
    fn energy_positive_and_modest() {
        let tech = TechnologyNode::bptm65();
        let m = analyze(
            &tech,
            &org(16 * 1024),
            &SramCell::default_65nm(),
            KnobPoint::nominal(),
        );
        assert!(m.read_energy.picos() > 0.0);
        assert!(m.read_energy.picos() < 20.0);
    }
}
