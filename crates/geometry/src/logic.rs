//! Circuit primitives shared by the cache components: static CMOS gates,
//! RC wires with Elmore delay, and repeater insertion.

use nm_device::leakage::{self, ConductionState, LeakageBreakdown};
use nm_device::transistor::MosfetKind;
use nm_device::units::{Farads, Joules, Meters, Microns, Ohms, Seconds};
use nm_device::{drive, KnobPoint, PointPrims, ScalarPrims, TechnologyNode};
use serde::{Deserialize, Serialize};

/// Ratio of PMOS to NMOS width in a balanced static gate.
pub const PN_RATIO: f64 = 2.0;

/// Elmore switching coefficient (0-to-50 % step response of an RC stage).
pub const ELMORE: f64 = 0.69;

/// A balanced static CMOS inverter (the generic gate of the periphery
/// models; NANDs and NORs are expressed as inverters with series-stack
/// resistance factors).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    /// NMOS width; PMOS is [`PN_RATIO`] times wider.
    pub wn: Microns,
    /// Knob assignment of the component this gate belongs to.
    pub knobs: KnobPoint,
    /// Series-stack factor ≥ 1 (2 for a NAND2 pulldown, etc.).
    pub stack: f64,
}

impl Gate {
    /// Creates a balanced inverter with unit stack factor.
    pub fn inverter(wn: Microns, knobs: KnobPoint) -> Self {
        Gate {
            wn,
            knobs,
            stack: 1.0,
        }
    }

    /// Creates a 2-input NAND-equivalent gate (stacked pulldown).
    pub fn nand2(wn: Microns, knobs: KnobPoint) -> Self {
        Gate {
            wn,
            knobs,
            stack: 2.0,
        }
    }

    /// PMOS width of the balanced gate.
    pub fn wp(self) -> Microns {
        self.wn * PN_RATIO
    }

    /// Drawn channel length mandated by this gate's `Tox`.
    pub fn length(self, tech: &TechnologyNode) -> Meters {
        tech.drawn_length(self.knobs.tox())
    }

    /// Worst-case switching resistance (pull-down path including the
    /// stack factor).
    pub fn resistance(self, tech: &TechnologyNode) -> Ohms {
        self.resistance_with(tech, &ScalarPrims::new(self.knobs))
    }

    /// [`resistance`](Self::resistance) evaluated through a primitive
    /// provider (the grid-bulk path).
    pub fn resistance_with<P: PointPrims>(self, tech: &TechnologyNode, prims: &P) -> Ohms {
        debug_assert_eq!(self.knobs, prims.point(), "prims must match gate knobs");
        let r = prims.effective_resistance(tech, self.wn, MosfetKind::Nmos);
        Ohms(r.0 * self.stack)
    }

    /// Input capacitance presented to the previous stage (both gates).
    pub fn input_capacitance(self, tech: &TechnologyNode) -> Farads {
        self.input_capacitance_with(tech, &ScalarPrims::new(self.knobs))
    }

    /// [`input_capacitance`](Self::input_capacitance) through a primitive
    /// provider.
    pub fn input_capacitance_with<P: PointPrims>(self, tech: &TechnologyNode, prims: &P) -> Farads {
        debug_assert_eq!(self.knobs, prims.point(), "prims must match gate knobs");
        let cn = prims.gate_capacitance(tech, self.wn);
        let cp = prims.gate_capacitance(tech, self.wp());
        cn + cp
    }

    /// Parasitic self-capacitance at the output (drain junctions).
    pub fn self_capacitance(self, tech: &TechnologyNode) -> Farads {
        drive::drain_capacitance(tech, self.wn) + drive::drain_capacitance(tech, self.wp())
    }

    /// Propagation delay driving an external load.
    pub fn delay(self, tech: &TechnologyNode, load: Farads) -> Seconds {
        self.delay_with(tech, &ScalarPrims::new(self.knobs), load)
    }

    /// [`delay`](Self::delay) through a primitive provider.
    pub fn delay_with<P: PointPrims>(
        self,
        tech: &TechnologyNode,
        prims: &P,
        load: Farads,
    ) -> Seconds {
        let c = self.self_capacitance(tech) + load;
        Seconds(ELMORE * self.resistance_with(tech, prims).0 * c.0)
    }

    /// Standby leakage of the gate, averaged over input states: at any
    /// time one transistor of the pair is off (subthreshold + edge gate
    /// tunnelling) and the other is on (full gate tunnelling).
    pub fn leakage(self, tech: &TechnologyNode) -> LeakageBreakdown {
        self.leakage_with(tech, &ScalarPrims::new(self.knobs))
    }

    /// [`leakage`](Self::leakage) through a primitive provider.
    pub fn leakage_with<P: PointPrims>(self, tech: &TechnologyNode, prims: &P) -> LeakageBreakdown {
        debug_assert_eq!(self.knobs, prims.point(), "prims must match gate knobs");
        let vdd = tech.vdd();
        let half = |w: Microns| {
            let sub = prims.subthreshold_current(tech, w);
            let g_off = prims.gate_current(tech, w, ConductionState::Off);
            let g_on = prims.gate_current(tech, w, ConductionState::On);
            let j = leakage::junction_current(tech, w);
            // 50 % duty in each state.
            LeakageBreakdown::from_currents(vdd, sub * 0.5, (g_off + g_on) * 0.5, j)
        };
        // Stacked pulldowns leak less when off (stack effect ≈ /stack).
        let mut n = half(self.wn);
        n.subthreshold = n.subthreshold / self.stack;
        let p = half(self.wp());
        n + p
    }

    /// Energy dissipated by one output transition driving `load`.
    pub fn switching_energy(self, tech: &TechnologyNode, load: Farads) -> Joules {
        self.switching_energy_with(tech, &ScalarPrims::new(self.knobs), load)
    }

    /// [`switching_energy`](Self::switching_energy) through a primitive
    /// provider.
    pub fn switching_energy_with<P: PointPrims>(
        self,
        tech: &TechnologyNode,
        prims: &P,
        load: Farads,
    ) -> Joules {
        let c = self.self_capacitance(tech) + self.input_capacitance_with(tech, prims) + load;
        // One full charge/discharge cycle dissipates C·V²; a single
        // transition dissipates half.
        Joules(0.5 * c.0 * tech.vdd().0 * tech.vdd().0)
    }
}

/// A distributed RC wire segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wire {
    /// Total series resistance.
    pub resistance: Ohms,
    /// Total distributed capacitance.
    pub capacitance: Farads,
}

impl Wire {
    /// Builds a wire of the given length from the node's per-length
    /// parasitics.
    pub fn new(tech: &TechnologyNode, length: Meters) -> Self {
        Wire {
            resistance: Ohms(tech.wire_res_per_length() * length.0),
            capacitance: Farads(tech.wire_cap_per_length() * length.0),
        }
    }

    /// Elmore delay through this wire from a driver with resistance
    /// `r_driver` into a lumped `load`.
    pub fn elmore_delay(self, r_driver: Ohms, load: Farads) -> Seconds {
        let t = ELMORE * (r_driver.0 * (self.capacitance.0 + load.0))
            + ELMORE * self.resistance.0 * (0.5 * self.capacitance.0 + load.0);
        Seconds(t)
    }
}

/// Delay and driver cost of a repeated (buffer-inserted) wire of length
/// `length` driven by identical gates of width `wn`.
///
/// Returns `(delay, repeater_count)` with one repeater per
/// a fixed repeater pitch (0.5 mm; at least one driver).
pub fn repeated_wire(
    tech: &TechnologyNode,
    knobs: KnobPoint,
    wn: Microns,
    length: Meters,
) -> (Seconds, u64) {
    repeated_wire_with(tech, &ScalarPrims::new(knobs), wn, length)
}

/// [`repeated_wire`] through a primitive provider.
pub fn repeated_wire_with<P: PointPrims>(
    tech: &TechnologyNode,
    prims: &P,
    wn: Microns,
    length: Meters,
) -> (Seconds, u64) {
    /// Repeater pitch in metres (0.5 mm of intermediate metal).
    const REPEATER_PITCH: f64 = 0.5e-3;
    let stages = (length.0 / REPEATER_PITCH).ceil().max(1.0) as u64;
    let seg = Meters(length.0 / stages as f64);
    let driver = Gate::inverter(wn, prims.point());
    let wire = Wire::new(tech, seg);
    let per_stage = wire.elmore_delay(
        driver.resistance_with(tech, prims),
        driver.input_capacitance_with(tech, prims),
    ) + driver.delay_with(tech, prims, Farads(0.0));
    (Seconds(per_stage.0 * stages as f64), stages)
}

/// Searches driver widths and stage counts for the fastest repeated-wire
/// configuration, returning `(delay, width, stages)`.
///
/// A small discrete search (rather than the classic closed form) so it
/// remains exact under this model's near-threshold resistance term; used
/// to sanity-check the fixed-pitch default in [`repeated_wire`].
#[allow(clippy::expect_used)] // fingerprinted in analyze.allow: fixed search space is non-empty
pub fn optimal_repeaters(
    tech: &TechnologyNode,
    knobs: KnobPoint,
    length: Meters,
) -> (Seconds, Microns, u64) {
    let mut best: Option<(Seconds, Microns, u64)> = None;
    for width_um in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let wn = Microns(width_um);
        let driver = Gate::inverter(wn, knobs);
        for stages in 1..=64u64 {
            let seg = Meters(length.0 / stages as f64);
            let wire = Wire::new(tech, seg);
            let per_stage = wire
                .elmore_delay(driver.resistance(tech), driver.input_capacitance(tech))
                + driver.delay(tech, Farads(0.0));
            let total = Seconds(per_stage.0 * stages as f64);
            if best.as_ref().is_none_or(|(t, _, _)| total.0 < t.0) {
                best = Some((total, wn, stages));
            }
        }
    }
    best.expect("search space is non-empty")
}

/// Delay of a logical-effort chain of `stages` identical gates each
/// driving `fanout` copies of the next.
pub fn chain_delay(
    tech: &TechnologyNode,
    knobs: KnobPoint,
    wn: Microns,
    stages: u32,
    fanout: f64,
) -> Seconds {
    let g = Gate::inverter(wn, knobs);
    let load = Farads(g.input_capacitance(tech).0 * fanout);
    Seconds(g.delay(tech, load).0 * f64::from(stages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::units::{Angstroms, Volts};

    fn tech() -> TechnologyNode {
        TechnologyNode::bptm65()
    }

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    #[test]
    fn inverter_delay_is_picoseconds() {
        let t = tech();
        let g = Gate::inverter(Microns(1.0), KnobPoint::nominal());
        let d = g.delay(&t, g.input_capacitance(&t) * 4.0);
        assert!((1.0..100.0).contains(&d.picos()), "d = {} ps", d.picos());
    }

    #[test]
    fn higher_vth_is_slower_and_less_leaky() {
        let t = tech();
        let fast = Gate::inverter(Microns(1.0), k(0.2, 12.0));
        let slow = Gate::inverter(Microns(1.0), k(0.5, 12.0));
        let load = fast.input_capacitance(&t);
        assert!(slow.delay(&t, load).0 > fast.delay(&t, load).0);
        assert!(slow.leakage(&t).total().0 < fast.leakage(&t).total().0);
    }

    #[test]
    fn nand_stack_slower_but_leaks_less_subthreshold() {
        let t = tech();
        let inv = Gate::inverter(Microns(1.0), KnobPoint::nominal());
        let nand = Gate::nand2(Microns(1.0), KnobPoint::nominal());
        let load = inv.input_capacitance(&t);
        assert!(nand.delay(&t, load).0 > inv.delay(&t, load).0);
        assert!(nand.leakage(&t).subthreshold.0 < inv.leakage(&t).subthreshold.0);
    }

    #[test]
    fn wire_delay_grows_quadratically_unrepeated() {
        let t = tech();
        let short = Wire::new(&t, Meters(0.5e-3));
        let long = Wire::new(&t, Meters(1.0e-3));
        let r = Ohms(1000.0);
        let d1 = short.elmore_delay(r, Farads(0.0)).0;
        let d2 = long.elmore_delay(r, Farads(0.0)).0;
        // Doubling an RC-dominated wire should more than double its delay.
        assert!(d2 > 2.0 * d1 * 0.99, "d1 = {d1}, d2 = {d2}");
    }

    #[test]
    fn repeaters_help_long_wires() {
        let t = tech();
        let knobs = KnobPoint::nominal();
        let wn = Microns(4.0);
        let len = Meters(4e-3);
        let (rep, stages) = repeated_wire(&t, knobs, wn, len);
        let g = Gate::inverter(wn, knobs);
        let raw = Wire::new(&t, len).elmore_delay(g.resistance(&t), Farads(0.0));
        assert!(stages >= 4);
        assert!(
            rep.0 < raw.0,
            "repeated {} ps ≥ raw {} ps",
            rep.picos(),
            raw.picos()
        );
    }

    #[test]
    fn optimal_repeaters_beat_the_fixed_pitch_default() {
        let t = tech();
        let knobs = KnobPoint::nominal();
        for len_mm in [1.0, 4.0] {
            let length = Meters(len_mm * 1e-3);
            let (fixed, _) = repeated_wire(&t, knobs, Microns(4.0), length);
            let (opt, w, stages) = optimal_repeaters(&t, knobs, length);
            assert!(
                opt.0 <= fixed.0 + 1e-18,
                "{len_mm} mm: optimal {} ps > fixed {} ps",
                opt.picos(),
                fixed.picos()
            );
            assert!(w.0 >= 1.0 && stages >= 1);
        }
    }

    #[test]
    fn optimal_repeaters_use_more_stages_on_longer_wires() {
        let t = tech();
        let knobs = KnobPoint::nominal();
        let (_, _, short) = optimal_repeaters(&t, knobs, Meters(0.5e-3));
        let (_, _, long) = optimal_repeaters(&t, knobs, Meters(8e-3));
        assert!(long > short, "short {short}, long {long}");
    }

    #[test]
    fn chain_delay_scales_with_stages() {
        let t = tech();
        let d2 = chain_delay(&t, KnobPoint::nominal(), Microns(0.5), 2, 4.0);
        let d6 = chain_delay(&t, KnobPoint::nominal(), Microns(0.5), 6, 4.0);
        assert!((d6.0 / d2.0 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn switching_energy_positive_and_grows_with_load() {
        let t = tech();
        let g = Gate::inverter(Microns(1.0), KnobPoint::nominal());
        let e0 = g.switching_energy(&t, Farads(0.0));
        let e1 = g.switching_energy(&t, Farads::from_femtos(100.0));
        assert!(e0.0 > 0.0);
        assert!(e1.0 > e0.0);
    }

    #[test]
    fn gate_leakage_sensitive_to_tox() {
        let t = tech();
        let thin = Gate::inverter(Microns(1.0), k(0.3, 10.0)).leakage(&t);
        let thick = Gate::inverter(Microns(1.0), k(0.3, 14.0)).leakage(&t);
        assert!(thin.gate.0 / thick.gate.0 > 10.0);
    }
}
