//! The memory cell array + sense amplifier component.
//!
//! Delay path: wordline propagation across the subarray, bitline
//! differential development against the cell read current, then sense
//! amplification and column muxing. Leakage is dominated by the cell
//! population; the sense amplifiers (grouped with the array by the paper)
//! add a peripheral term under the *array's* knob pair.

use crate::cache::ComponentMetrics;
use crate::config::Organization;
use crate::logic::{Gate, Wire, ELMORE};
use crate::sram::SramCell;
use nm_device::units::{Farads, Joules, Meters, Microns, Ohms, Seconds, SquareMicrons};
use nm_device::{KnobPoint, PointPrims, ScalarPrims, TechnologyNode};

/// Bitline differential swing required by the sense amps, as a fraction of
/// the supply.
pub const SENSE_SWING: f64 = 0.12;

/// Fixed wordline-driver resistance assumed at the decoder/array boundary
/// (independence of the two components; see [`crate::cache`]).
pub const BOUNDARY_DRIVER_OHMS: f64 = 8.0e2;

/// Equivalent fan-out-of-4 gate stages in the latch-type sense amp,
/// column mux, tag comparison and way-select path (all grouped with the
/// array component and running on its knob pair).
pub const SENSE_STAGES: u32 = 10;

/// Subarrays activated per access (one data mat plus the tag mat).
pub const ACTIVE_SUBARRAYS: f64 = 2.0;

/// Layout overhead of the array (precharge, mux, well taps) over raw cell
/// area.
pub const AREA_OVERHEAD: f64 = 1.15;

/// Inverter-equivalents of leakage per sense amplifier.
const SENSE_AMP_INVERTER_EQ: f64 = 3.0;

/// NMOS width of the sense-amp equivalent gates.
const SENSE_AMP_WN: Microns = Microns(0.5);

/// Transistors per sense amplifier (latch + precharge + mux).
const SENSE_AMP_TRANSISTORS: u64 = 10;

/// Analyses the array component under its knob pair.
pub fn analyze(
    tech: &TechnologyNode,
    org: &Organization,
    cell: &SramCell,
    knobs: KnobPoint,
) -> ComponentMetrics {
    analyze_with(tech, org, cell, &ScalarPrims::new(knobs))
}

/// [`analyze`] through a primitive provider (the grid-bulk path).
pub fn analyze_with<P: PointPrims>(
    tech: &TechnologyNode,
    org: &Organization,
    cell: &SramCell,
    prims: &P,
) -> ComponentMetrics {
    let vdd = tech.vdd();
    let knobs = prims.point();

    // --- Wordline propagation ------------------------------------------
    let wl_length = Meters(cell.scaled_pitch_x_with(tech, prims).meters().0 * org.cols as f64);
    let wl_wire = Wire::new(tech, wl_length);
    let wl_gate_load = Farads(cell.wordline_load_with(tech, prims).0 * org.cols as f64);
    let t_wordline = wl_wire.elmore_delay(Ohms(BOUNDARY_DRIVER_OHMS), wl_gate_load);

    // --- Bitline development --------------------------------------------
    let bl_wire_len = Meters(cell.scaled_pitch_y_with(tech, prims).meters().0 * org.rows as f64);
    let bl_wire = Wire::new(tech, bl_wire_len);
    let c_bitline =
        Farads(cell.bitline_load_with(tech, prims).0 * org.rows as f64 + bl_wire.capacitance.0);
    let i_read = cell.read_current_with(tech, prims);
    let swing = vdd.0 * SENSE_SWING;
    let t_bitline = Seconds(c_bitline.0 * swing / i_read.0)
        + Seconds(ELMORE * bl_wire.resistance.0 * 0.5 * c_bitline.0);

    // --- Sense amplification ---------------------------------------------
    let sense_gate = Gate::inverter(SENSE_AMP_WN, knobs);
    let fo4_load = sense_gate.input_capacitance_with(tech, prims) * 4.0;
    let t_sense = Seconds(sense_gate.delay_with(tech, prims, fo4_load).0 * f64::from(SENSE_STAGES));

    let delay = t_wordline + t_bitline + t_sense;

    // --- Leakage -----------------------------------------------------------
    let cells = org.total_cells() as f64;
    let cell_leak = cell.leakage_with(tech, prims) * cells;
    let sa_leak =
        sense_gate.leakage_with(tech, prims) * (SENSE_AMP_INVERTER_EQ * org.sense_amps as f64);
    let leakage = cell_leak + sa_leak;

    // --- Dynamic read energy -----------------------------------------------
    // Active wordlines charge fully; active bitline pairs swing by the
    // sense margin; sense amps burn a latch transition each.
    let e_wordline =
        Joules((wl_wire.capacitance.0 + wl_gate_load.0) * vdd.0 * vdd.0) * ACTIVE_SUBARRAYS;
    let e_bitline = Joules(c_bitline.0 * vdd.0 * swing * org.cols as f64) * ACTIVE_SUBARRAYS;
    let active_sense = org.cols as f64 * ACTIVE_SUBARRAYS / Organization::COLUMN_MUX as f64;
    let e_sense = Joules(sense_gate.switching_energy_with(tech, prims, fo4_load).0 * active_sense);
    let read_energy = e_wordline + e_bitline + e_sense;
    // Writes drive the selected bitline pairs full rail (no sensing).
    let e_bitline_write = Joules(c_bitline.0 * vdd.0 * vdd.0 * org.cols as f64) * ACTIVE_SUBARRAYS;
    let write_energy = e_wordline + e_bitline_write;

    // --- Census --------------------------------------------------------------
    let transistors = org.total_cells() * 6 + org.sense_amps * SENSE_AMP_TRANSISTORS;
    let area = SquareMicrons(cell.area_with(tech, prims).0 * cells * AREA_OVERHEAD);

    ComponentMetrics {
        delay,
        leakage,
        read_energy,
        write_energy,
        transistors,
        area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use nm_device::units::{Angstroms, Volts};

    fn org(size: u64) -> Organization {
        CacheConfig::new(size, 64, 4).unwrap().organization()
    }

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    #[test]
    fn delay_in_plausible_band() {
        let tech = TechnologyNode::bptm65();
        let m = analyze(
            &tech,
            &org(16 * 1024),
            &SramCell::default_65nm(),
            KnobPoint::nominal(),
        );
        let ps = m.delay.picos();
        assert!((50.0..2000.0).contains(&ps), "array delay = {ps} ps");
    }

    #[test]
    fn leakage_scales_with_cells() {
        let tech = TechnologyNode::bptm65();
        let cell = SramCell::default_65nm();
        let small = analyze(&tech, &org(16 * 1024), &cell, KnobPoint::nominal());
        let big = analyze(&tech, &org(256 * 1024), &cell, KnobPoint::nominal());
        let ratio = big.leakage.total().0 / small.leakage.total().0;
        assert!((10.0..22.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn vth_slows_bitline_development() {
        let tech = TechnologyNode::bptm65();
        let cell = SramCell::default_65nm();
        let fast = analyze(&tech, &org(16 * 1024), &cell, k(0.2, 12.0));
        let slow = analyze(&tech, &org(16 * 1024), &cell, k(0.5, 12.0));
        assert!(slow.delay.0 > fast.delay.0 * 1.3);
    }

    #[test]
    fn tox_grows_area_and_slows_moderately() {
        let tech = TechnologyNode::bptm65();
        let cell = SramCell::default_65nm();
        let thin = analyze(&tech, &org(16 * 1024), &cell, k(0.3, 10.0));
        let thick = analyze(&tech, &org(16 * 1024), &cell, k(0.3, 14.0));
        assert!(thick.area.0 > thin.area.0 * 1.3);
        assert!(thick.delay.0 > thin.delay.0);
        // Tox's relative delay impact stays below Vth's (Figure 1 asymmetry).
        let vth_span = analyze(&tech, &org(16 * 1024), &cell, k(0.5, 12.0)).delay.0
            / analyze(&tech, &org(16 * 1024), &cell, k(0.2, 12.0)).delay.0;
        let tox_span = thick.delay.0 / thin.delay.0;
        assert!(
            vth_span > tox_span,
            "vth {vth_span:.2} vs tox {tox_span:.2}"
        );
    }

    #[test]
    fn transistor_census_counts_cells() {
        let o = org(16 * 1024);
        let tech = TechnologyNode::bptm65();
        let m = analyze(&tech, &o, &SramCell::default_65nm(), KnobPoint::nominal());
        assert!(m.transistors >= o.total_cells() * 6);
    }

    #[test]
    fn read_energy_is_picojoules() {
        let tech = TechnologyNode::bptm65();
        let m = analyze(
            &tech,
            &org(16 * 1024),
            &SramCell::default_65nm(),
            KnobPoint::nominal(),
        );
        let pj = m.read_energy.picos();
        assert!((0.5..100.0).contains(&pj), "E = {pj} pJ");
    }
}
