//! Address- and data-bus driver components.
//!
//! Bus wires span the cache macro; their length comes from a **fixed
//! floorplan** sized at the nominal process corner so that bus delay
//! depends only on the bus component's own knobs (the paper's
//! independence assumption — routing is not re-planned per candidate
//! assignment).

use crate::cache::ComponentMetrics;
use crate::config::Organization;
use crate::logic::{repeated_wire_with, Gate, Wire};
use crate::sram::SramCell;
use nm_device::units::{Joules, Meters, Microns, SquareMicrons};
use nm_device::{KnobPoint, PointPrims, ScalarPrims, TechnologyNode};

/// NMOS width of bus repeater drivers.
const REPEATER_WN: Microns = Microns(4.0);

/// Routing detour factor over the floorplan side length.
const ROUTING_FACTOR: f64 = 1.9;

/// Additional route per H-tree level (the bus must fan out to every
/// subarray; each doubling of the mat count adds a level).
const HTREE_PER_LEVEL: f64 = 0.1;

/// Data bus runs this much longer than the address bus (to/from the
/// datapath on the far side).
const DATA_LENGTH_FACTOR: f64 = 1.4;

/// Switching activity of bus wires per access.
const ACTIVITY: f64 = 0.5;

/// Area per repeater transistor, µm².
const AREA_PER_TRANSISTOR: f64 = 0.6;

/// Floorplan-derived bus length for this organisation (nominal corner).
pub fn bus_length(tech: &TechnologyNode, org: &Organization, cell: &SramCell) -> Meters {
    let nominal = KnobPoint::nominal();
    let macro_area_um2 = cell.area(tech, nominal).0 * org.total_cells() as f64;
    let side_um = macro_area_um2.sqrt();
    let htree_levels = (org.subarrays.max(1) as f64).log2();
    Meters(side_um * 1e-6 * (ROUTING_FACTOR + HTREE_PER_LEVEL * htree_levels))
}

fn analyze_bus<P: PointPrims>(
    tech: &TechnologyNode,
    org: &Organization,
    cell: &SramCell,
    prims: &P,
    bits: u64,
    length_factor: f64,
) -> ComponentMetrics {
    let length = Meters(bus_length(tech, org, cell).0 * length_factor);
    let (delay, stages) = repeated_wire_with(tech, prims, REPEATER_WN, length);

    let driver = Gate::inverter(REPEATER_WN, prims.point());
    let drivers = stages * bits;
    let leakage = driver.leakage_with(tech, prims) * drivers as f64;

    let wire = Wire::new(tech, length);
    let vdd = tech.vdd().0;
    let e_per_bit = 0.5
        * (wire.capacitance.0 + stages as f64 * driver.input_capacitance_with(tech, prims).0)
        * vdd
        * vdd;
    let read_energy = Joules(e_per_bit * bits as f64 * ACTIVITY);

    let transistors = drivers * 2;
    let area = SquareMicrons(transistors as f64 * AREA_PER_TRANSISTOR);

    ComponentMetrics {
        delay,
        leakage,
        read_energy,
        // Address decode and bus switching cost the same either way.
        write_energy: read_energy,
        transistors,
        area,
    }
}

/// Analyses the address-bus driver component (one wire per address bit).
pub fn analyze_address(
    tech: &TechnologyNode,
    org: &Organization,
    cell: &SramCell,
    knobs: KnobPoint,
) -> ComponentMetrics {
    analyze_address_with(tech, org, cell, &ScalarPrims::new(knobs))
}

/// [`analyze_address`] through a primitive provider.
pub fn analyze_address_with<P: PointPrims>(
    tech: &TechnologyNode,
    org: &Organization,
    cell: &SramCell,
    prims: &P,
) -> ComponentMetrics {
    analyze_bus(
        tech,
        org,
        cell,
        prims,
        u64::from(crate::config::ADDRESS_BITS),
        1.0,
    )
}

/// Analyses the data-bus driver component (one wire per delivered data
/// bit, over the longer datapath route).
pub fn analyze_data(
    tech: &TechnologyNode,
    org: &Organization,
    cell: &SramCell,
    knobs: KnobPoint,
) -> ComponentMetrics {
    analyze_data_with(tech, org, cell, &ScalarPrims::new(knobs))
}

/// [`analyze_data`] through a primitive provider.
pub fn analyze_data_with<P: PointPrims>(
    tech: &TechnologyNode,
    org: &Organization,
    cell: &SramCell,
    prims: &P,
) -> ComponentMetrics {
    analyze_bus(
        tech,
        org,
        cell,
        prims,
        org.data_out_bits,
        DATA_LENGTH_FACTOR,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use nm_device::units::{Angstroms, Volts};

    fn org(size: u64) -> Organization {
        CacheConfig::new(size, 64, 4).unwrap().organization()
    }

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    #[test]
    fn bus_length_grows_with_cache_size() {
        let tech = TechnologyNode::bptm65();
        let cell = SramCell::default_65nm();
        let small = bus_length(&tech, &org(16 * 1024), &cell).0;
        let big = bus_length(&tech, &org(4 * 1024 * 1024), &cell).0;
        // 256x the cells → 16x the side length, plus extra H-tree levels.
        let ratio = big / small;
        assert!((16.0..24.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn data_bus_slower_than_address_bus() {
        let tech = TechnologyNode::bptm65();
        let cell = SramCell::default_65nm();
        let o = org(1024 * 1024);
        let a = analyze_address(&tech, &o, &cell, KnobPoint::nominal());
        let d = analyze_data(&tech, &o, &cell, KnobPoint::nominal());
        assert!(d.delay.0 > a.delay.0);
    }

    #[test]
    fn bus_delay_knob_dependence() {
        let tech = TechnologyNode::bptm65();
        let cell = SramCell::default_65nm();
        let o = org(1024 * 1024);
        let fast = analyze_address(&tech, &o, &cell, k(0.2, 10.0));
        let slow = analyze_address(&tech, &o, &cell, k(0.5, 14.0));
        assert!(slow.delay.0 > fast.delay.0);
        assert!(fast.leakage.total().0 > slow.leakage.total().0);
    }

    #[test]
    fn bus_delay_independent_of_other_components() {
        // The floorplan is fixed at the nominal corner: bus metrics depend
        // only on the bus knobs, never on array knobs.
        let tech = TechnologyNode::bptm65();
        let cell = SramCell::default_65nm();
        let o = org(64 * 1024);
        let a = analyze_address(&tech, &o, &cell, KnobPoint::nominal());
        let b = analyze_address(&tech, &o, &cell, KnobPoint::nominal());
        assert_eq!(a, b);
    }

    #[test]
    fn l2_size_bus_delay_is_hundreds_of_ps() {
        let tech = TechnologyNode::bptm65();
        let cell = SramCell::default_65nm();
        let m = analyze_data(&tech, &org(2 * 1024 * 1024), &cell, KnobPoint::nominal());
        assert!(
            (50.0..3000.0).contains(&m.delay.picos()),
            "delay = {} ps",
            m.delay.picos()
        );
    }

    #[test]
    fn energy_scales_with_bits() {
        let tech = TechnologyNode::bptm65();
        let cell = SramCell::default_65nm();
        let o = org(64 * 1024);
        let a = analyze_address(&tech, &o, &cell, KnobPoint::nominal());
        let d = analyze_data(&tech, &o, &cell, KnobPoint::nominal());
        // Data bus carries more bits over a longer route → more energy.
        assert!(d.read_energy.0 > a.read_energy.0);
    }
}
