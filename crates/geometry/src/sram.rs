//! The 6T SRAM cell: geometry, leakage and read current.
//!
//! Cell transistor widths (and the drawn channel length) scale with `Tox`
//! per the paper's stability rule — the cell grows in both dimensions, so
//! its area grows quadratically with the `Tox`-driven scale factor.

use nm_device::leakage::{self, ConductionState, LeakageBreakdown};
use nm_device::scaling::scaled_area;
use nm_device::transistor::MosfetKind;
use nm_device::units::{Amperes, Farads, Microns, SquareMicrons};
use nm_device::{drive, KnobPoint, PointPrims, ScalarPrims, TechnologyNode};
use serde::{Deserialize, Serialize};

/// A 6T SRAM cell design (widths quoted at the minimum-`Tox` process
/// corner; all dimensions scale with [`TechnologyNode::cell_scale`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramCell {
    /// Access (pass-gate) NMOS width at scale 1.
    pub w_access: Microns,
    /// Pull-down NMOS width at scale 1.
    pub w_pulldown: Microns,
    /// Pull-up PMOS width at scale 1.
    pub w_pullup: Microns,
    /// Cell footprint width (bitline pitch) at scale 1.
    pub pitch_x: Microns,
    /// Cell footprint height (wordline pitch) at scale 1.
    pub pitch_y: Microns,
}

impl SramCell {
    /// The default 65 nm cell (≈ 0.5 µm² footprint at minimum `Tox`).
    pub fn default_65nm() -> Self {
        SramCell {
            w_access: Microns(0.15),
            w_pulldown: Microns(0.20),
            w_pullup: Microns(0.10),
            pitch_x: Microns(1.00),
            pitch_y: Microns(0.50),
        }
    }

    /// Cell area under a given `Tox` assignment (grows quadratically with
    /// the scale factor).
    pub fn area(&self, tech: &TechnologyNode, knobs: KnobPoint) -> SquareMicrons {
        let base = SquareMicrons(self.pitch_x.0 * self.pitch_y.0);
        scaled_area(tech, base, knobs.tox())
    }

    /// [`area`](Self::area) through a primitive provider.
    pub fn area_with<P: PointPrims>(&self, tech: &TechnologyNode, prims: &P) -> SquareMicrons {
        let base = SquareMicrons(self.pitch_x.0 * self.pitch_y.0);
        let s = prims.cell_scale(tech);
        SquareMicrons(base.0 * s * s)
    }

    /// Cell width (bitline pitch) under a `Tox` assignment.
    pub fn scaled_pitch_x(&self, tech: &TechnologyNode, knobs: KnobPoint) -> Microns {
        self.pitch_x * tech.cell_scale(knobs.tox())
    }

    /// [`scaled_pitch_x`](Self::scaled_pitch_x) through a primitive provider.
    pub fn scaled_pitch_x_with<P: PointPrims>(&self, tech: &TechnologyNode, prims: &P) -> Microns {
        self.pitch_x * prims.cell_scale(tech)
    }

    /// Cell height (wordline pitch) under a `Tox` assignment.
    pub fn scaled_pitch_y(&self, tech: &TechnologyNode, knobs: KnobPoint) -> Microns {
        self.pitch_y * tech.cell_scale(knobs.tox())
    }

    /// [`scaled_pitch_y`](Self::scaled_pitch_y) through a primitive provider.
    pub fn scaled_pitch_y_with<P: PointPrims>(&self, tech: &TechnologyNode, prims: &P) -> Microns {
        self.pitch_y * prims.cell_scale(tech)
    }

    /// Standby leakage of one cell holding a value with both bitlines
    /// precharged high.
    ///
    /// State accounting over the six transistors (storing node `L` low,
    /// `R` high, without loss of generality):
    ///
    /// * pull-down `R` and pull-up `L` are **off with full `Vds`** —
    ///   subthreshold + edge gate tunnelling;
    /// * access `L` is off with the bitline high — subthreshold + edge;
    /// * access `R` is off with **zero `Vds`** — edge tunnelling only;
    /// * pull-down `L` and pull-up `R` are **on** — full gate tunnelling,
    ///   no subthreshold.
    ///
    /// Junction leakage accrues once per transistor.
    pub fn leakage(&self, tech: &TechnologyNode, knobs: KnobPoint) -> LeakageBreakdown {
        self.leakage_with(tech, &ScalarPrims::new(knobs))
    }

    /// [`leakage`](Self::leakage) through a primitive provider.
    pub fn leakage_with<P: PointPrims>(
        &self,
        tech: &TechnologyNode,
        prims: &P,
    ) -> LeakageBreakdown {
        let scale = prims.cell_scale(tech);
        let vdd = tech.vdd();
        let wa = self.w_access * scale;
        let wd = self.w_pulldown * scale;
        let wu = self.w_pullup * scale;

        let sub = |w: Microns| prims.subthreshold_current(tech, w);
        let gate = |w: Microns, s: ConductionState| prims.gate_current(tech, w, s);
        let junc = |w: Microns| leakage::junction_current(tech, w);

        // Subthreshold: PD-R, PU-L, access-L (PMOS pull-up leaks about
        // half the equivalent NMOS; fold that in with a 0.5 factor).
        let i_sub = sub(wd) + sub(wu) * 0.5 + sub(wa);
        // Gate: two on devices at full tunnelling, four off at edge rate.
        let i_gate = gate(wd, ConductionState::On)
            + gate(wu, ConductionState::On)
            + gate(wd, ConductionState::Off)
            + gate(wu, ConductionState::Off)
            + gate(wa, ConductionState::Off) * 2.0;
        // Junction: every diffusion once.
        let i_junc = junc(wd) * 2.0 + junc(wu) * 2.0 + junc(wa) * 2.0;

        LeakageBreakdown::from_currents(vdd, i_sub, i_gate, i_junc)
    }

    /// Read current discharging the bitline: the series access/pull-down
    /// path, dominated by the weaker access device (20 % series
    /// degradation).
    pub fn read_current(&self, tech: &TechnologyNode, knobs: KnobPoint) -> Amperes {
        self.read_current_with(tech, &ScalarPrims::new(knobs))
    }

    /// [`read_current`](Self::read_current) through a primitive provider.
    pub fn read_current_with<P: PointPrims>(&self, tech: &TechnologyNode, prims: &P) -> Amperes {
        let scale = prims.cell_scale(tech);
        let i = prims.on_current(tech, self.w_access * scale, MosfetKind::Nmos);
        i * 0.8
    }

    /// Capacitance one cell adds to its bitline (access drain junction).
    pub fn bitline_load(&self, tech: &TechnologyNode, knobs: KnobPoint) -> Farads {
        self.bitline_load_with(tech, &ScalarPrims::new(knobs))
    }

    /// [`bitline_load`](Self::bitline_load) through a primitive provider.
    pub fn bitline_load_with<P: PointPrims>(&self, tech: &TechnologyNode, prims: &P) -> Farads {
        let scale = prims.cell_scale(tech);
        drive::drain_capacitance(tech, self.w_access * scale)
    }

    /// Capacitance one cell adds to its wordline (two access gates).
    pub fn wordline_load(&self, tech: &TechnologyNode, knobs: KnobPoint) -> Farads {
        self.wordline_load_with(tech, &ScalarPrims::new(knobs))
    }

    /// [`wordline_load`](Self::wordline_load) through a primitive provider.
    pub fn wordline_load_with<P: PointPrims>(&self, tech: &TechnologyNode, prims: &P) -> Farads {
        let scale = prims.cell_scale(tech);
        prims.gate_capacitance(tech, self.w_access * scale) * 2.0
    }
}

impl Default for SramCell {
    fn default() -> Self {
        Self::default_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::units::{Angstroms, Volts};

    fn tech() -> TechnologyNode {
        TechnologyNode::bptm65()
    }

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    #[test]
    fn default_cell_is_half_square_micron() {
        let c = SramCell::default_65nm();
        let a = c.area(&tech(), k(0.3, 10.0));
        assert!((a.0 - 0.5).abs() < 1e-9, "area = {a}");
    }

    #[test]
    fn area_grows_with_tox() {
        let c = SramCell::default_65nm();
        let t = tech();
        let a10 = c.area(&t, k(0.3, 10.0)).0;
        let a14 = c.area(&t, k(0.3, 14.0)).0;
        assert!(
            a14 > a10 * 1.2 && a14 < a10 * 2.0,
            "a10 = {a10}, a14 = {a14}"
        );
    }

    #[test]
    fn leaky_corner_is_hundreds_of_nanowatts() {
        // At (0.2 V, 10 Å) a cell should leak ~0.1–1 µW so a 16 KB array
        // lands in the paper's tens-of-mW band.
        let c = SramCell::default_65nm();
        let w = c.leakage(&tech(), k(0.2, 10.0)).total();
        assert!(
            (0.05..1.5).contains(&w.micro()),
            "cell leakage = {} µW",
            w.micro()
        );
    }

    #[test]
    fn quiet_corner_is_orders_quieter() {
        let c = SramCell::default_65nm();
        let t = tech();
        let loud = c.leakage(&t, k(0.2, 10.0)).total().0;
        let quiet = c.leakage(&t, k(0.5, 14.0)).total().0;
        assert!(loud / quiet > 50.0, "ratio = {}", loud / quiet);
    }

    #[test]
    fn vth_controls_subthreshold_tox_controls_gate() {
        let c = SramCell::default_65nm();
        let t = tech();
        let base = c.leakage(&t, k(0.3, 12.0));
        let hi_vth = c.leakage(&t, k(0.45, 12.0));
        let hi_tox = c.leakage(&t, k(0.3, 14.0));
        assert!(hi_vth.subthreshold.0 < base.subthreshold.0 / 10.0);
        assert!(hi_tox.gate.0 < base.gate.0 / 5.0);
        // And the knobs mostly do not cross over.
        assert!(hi_vth.gate.0 >= base.gate.0 * 0.9);
    }

    #[test]
    fn gate_dominates_at_thin_oxide() {
        let c = SramCell::default_65nm();
        let b = c.leakage(&tech(), k(0.4, 10.0));
        assert!(
            b.gate_fraction() > 0.5,
            "gate fraction = {}",
            b.gate_fraction()
        );
    }

    #[test]
    fn read_current_is_tens_of_microamps() {
        let c = SramCell::default_65nm();
        let i = c.read_current(&tech(), KnobPoint::nominal());
        assert!((20.0..200.0).contains(&i.micro()), "I = {} µA", i.micro());
    }

    #[test]
    fn loads_scale_with_tox() {
        let c = SramCell::default_65nm();
        let t = tech();
        assert!(c.bitline_load(&t, k(0.3, 14.0)).0 > c.bitline_load(&t, k(0.3, 10.0)).0);
        assert!(c.wordline_load(&t, k(0.3, 10.0)).0 > 0.0);
    }

    #[test]
    fn higher_vth_weakens_read_current() {
        let c = SramCell::default_65nm();
        let t = tech();
        assert!(c.read_current(&t, k(0.5, 12.0)).0 < c.read_current(&t, k(0.2, 12.0)).0);
    }
}
