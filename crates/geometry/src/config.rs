//! Cache organisation: the architectural parameters and their physical
//! layout as subarrays of SRAM cells.

use crate::error::GeometryError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Smallest cache the circuit model supports (1 KiB).
pub const MIN_SIZE_BYTES: u64 = 1024;

/// Physical address width assumed for tag sizing (paper-era 32-bit).
pub const ADDRESS_BITS: u32 = 32;

/// Maximum rows per subarray before the layout splits vertically.
const MAX_ROWS: u64 = 256;

/// Maximum bitline columns per subarray before the layout splits
/// horizontally (short wordlines keep the knob-independent wire RC small).
const MAX_COLS: u64 = 256;

/// Architectural parameters of one cache level.
///
/// All three parameters must be powers of two; construction validates the
/// usual containment relations so any `CacheConfig` is realisable.
///
/// ```
/// use nm_geometry::CacheConfig;
///
/// let l1 = CacheConfig::new(16 * 1024, 64, 4)?;
/// assert_eq!(l1.sets(), 64);
/// assert!(CacheConfig::new(1000, 64, 4).is_err()); // not a power of two
/// # Ok::<(), nm_geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    size_bytes: u64,
    block_bytes: u64,
    associativity: u64,
}

impl CacheConfig {
    /// Creates and validates a cache configuration.
    ///
    /// # Errors
    ///
    /// * [`GeometryError::NotPowerOfTwo`] if any parameter is not a power
    ///   of two,
    /// * [`GeometryError::TooSmall`] below [`MIN_SIZE_BYTES`],
    /// * [`GeometryError::BlockLargerThanCache`] /
    ///   [`GeometryError::AssociativityTooHigh`] for impossible shapes.
    pub fn new(
        size_bytes: u64,
        block_bytes: u64,
        associativity: u64,
    ) -> Result<Self, GeometryError> {
        for (which, value) in [
            ("size", size_bytes),
            ("block", block_bytes),
            ("associativity", associativity),
        ] {
            if value == 0 || !value.is_power_of_two() {
                return Err(GeometryError::NotPowerOfTwo { which, value });
            }
        }
        if size_bytes < MIN_SIZE_BYTES {
            return Err(GeometryError::TooSmall {
                size: size_bytes,
                min: MIN_SIZE_BYTES,
            });
        }
        if block_bytes > size_bytes {
            return Err(GeometryError::BlockLargerThanCache {
                size: size_bytes,
                block: block_bytes,
            });
        }
        let blocks = size_bytes / block_bytes;
        if associativity > blocks {
            return Err(GeometryError::AssociativityTooHigh {
                assoc: associativity,
                blocks,
            });
        }
        Ok(CacheConfig {
            size_bytes,
            block_bytes,
            associativity,
        })
    }

    /// Total capacity in bytes.
    pub fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Line (block) size in bytes.
    pub fn block_bytes(self) -> u64 {
        self.block_bytes
    }

    /// Set associativity (ways).
    pub fn associativity(self) -> u64 {
        self.associativity
    }

    /// Number of sets.
    pub fn sets(self) -> u64 {
        self.size_bytes / (self.block_bytes * self.associativity)
    }

    /// Tag width in bits (status bits excluded).
    pub fn tag_bits(self) -> u32 {
        let index_bits = self.sets().trailing_zeros();
        let offset_bits = self.block_bytes.trailing_zeros();
        ADDRESS_BITS - index_bits - offset_bits
    }

    /// Physical layout of this configuration.
    pub fn organization(self) -> Organization {
        Organization::for_config(self)
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let size = self.size_bytes;
        if size >= 1024 * 1024 && size.is_multiple_of(1024 * 1024) {
            write!(f, "{}MB", size / (1024 * 1024))?;
        } else {
            write!(f, "{}KB", size / 1024)?;
        }
        write!(f, "/{}B/{}-way", self.block_bytes, self.associativity)
    }
}

/// Physical subarray layout derived from a [`CacheConfig`].
///
/// The data (and tag) bits are tiled into identical subarrays of at most
/// `MAX_ROWS` × `MAX_COLS` cells, mirroring the Ndwl/Ndbl partitioning
/// of CACTI-class models: wordline and bitline RC grow with the subarray
/// dimensions, while subarray count multiplies leakage and area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Organization {
    /// Rows per subarray (wordlines).
    pub rows: u64,
    /// Columns (bitline pairs) per subarray.
    pub cols: u64,
    /// Number of data subarrays.
    pub subarrays: u64,
    /// Total data cells (bits) in the cache.
    pub data_cells: u64,
    /// Total tag cells, including two status bits per frame.
    pub tag_cells: u64,
    /// Row-decoder input width in bits.
    pub decoder_bits: u32,
    /// Sense amplifiers in the whole cache (one per 4-to-1 column mux).
    pub sense_amps: u64,
    /// Bits delivered on the data bus per access (one 64-bit word plus the
    /// way-select overhead).
    pub data_out_bits: u64,
}

impl Organization {
    /// Degree of bitline column multiplexing in front of each sense amp.
    pub const COLUMN_MUX: u64 = 4;

    fn for_config(config: CacheConfig) -> Organization {
        let data_cells = config.size_bytes * 8;
        let sets = config.sets();
        let bits_per_set = config.block_bytes * 8 * config.associativity;

        // Start with one logical row per set, then fold until the subarray
        // fits the aspect limits.
        let mut rows = sets;
        let mut cols = bits_per_set;
        let mut subarrays = 1u64;
        while cols > MAX_COLS {
            cols /= 2;
            subarrays *= 2;
        }
        // A row must hold at least one mux group worth of bits.
        while rows > MAX_ROWS && cols * 2 <= MAX_COLS {
            // Fold two sets into one physical row first (keeps arrays square).
            rows /= 2;
            cols *= 2;
        }
        while rows > MAX_ROWS {
            rows /= 2;
            subarrays *= 2;
        }
        // Very small caches: widen rows to avoid degenerate 1-column arrays.
        while rows < 8 && cols >= 16 {
            rows *= 2;
            cols /= 2;
        }
        debug_assert_eq!(rows * cols * subarrays, data_cells);

        let tag_cells = sets * config.associativity * (u64::from(config.tag_bits()) + 2);
        let decoder_bits = sets.trailing_zeros().max(1);
        let sense_amps = (cols * subarrays / Self::COLUMN_MUX).max(1);
        let data_out_bits = 64 + config.associativity;

        Organization {
            rows,
            cols,
            subarrays,
            data_cells,
            tag_cells,
            decoder_bits,
            sense_amps,
            data_out_bits,
        }
    }

    /// Total cells (data + tag).
    pub fn total_cells(self) -> u64 {
        self.data_cells + self.tag_cells
    }

    /// Builds a custom subarray folding for a configuration, for the
    /// organisation explorer. Returns `None` when `rows · cols` does not
    /// divide the data-cell count or a dimension is degenerate.
    pub fn custom(config: CacheConfig, rows: u64, cols: u64) -> Option<Organization> {
        let data_cells = config.size_bytes() * 8;
        if rows < 8
            || cols < 16
            || !rows.is_power_of_two()
            || !cols.is_power_of_two()
            || !data_cells.is_multiple_of(rows * cols)
        {
            return None;
        }
        let subarrays = data_cells / (rows * cols);
        let sets = config.sets();
        let tag_cells = sets * config.associativity() * (u64::from(config.tag_bits()) + 2);
        Some(Organization {
            rows,
            cols,
            subarrays,
            data_cells,
            tag_cells,
            decoder_bits: sets.trailing_zeros().max(1),
            sense_amps: (cols * subarrays / Self::COLUMN_MUX).max(1),
            data_out_bits: 64 + config.associativity(),
        })
    }

    /// Enumerates every legal folding with rows in `8..=512` and cols in
    /// `16..=512` (powers of two), for exploration.
    pub fn candidates(config: CacheConfig) -> Vec<Organization> {
        let mut out = Vec::new();
        let mut rows = 8;
        while rows <= 512 {
            let mut cols = 16;
            while cols <= 512 {
                if let Some(org) = Self::custom(config, rows, cols) {
                    out.push(org);
                }
                cols *= 2;
            }
            rows *= 2;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            CacheConfig::new(3000, 64, 4),
            Err(GeometryError::NotPowerOfTwo { which: "size", .. })
        ));
        assert!(matches!(
            CacheConfig::new(16384, 48, 4),
            Err(GeometryError::NotPowerOfTwo { which: "block", .. })
        ));
        assert!(matches!(
            CacheConfig::new(16384, 64, 3),
            Err(GeometryError::NotPowerOfTwo {
                which: "associativity",
                ..
            })
        ));
    }

    #[test]
    fn rejects_impossible_shapes() {
        assert!(matches!(
            CacheConfig::new(1024, 2048, 1),
            Err(GeometryError::BlockLargerThanCache { .. })
        ));
        assert!(matches!(
            CacheConfig::new(1024, 64, 32),
            Err(GeometryError::AssociativityTooHigh { .. })
        ));
        assert!(matches!(
            CacheConfig::new(512, 64, 2),
            Err(GeometryError::TooSmall { .. })
        ));
    }

    #[test]
    fn sets_and_tags_for_16k_4way() {
        let c = CacheConfig::new(16 * 1024, 64, 4).unwrap();
        assert_eq!(c.sets(), 64);
        // 32 - log2(64 sets) - log2(64B) = 32 - 6 - 6 = 20 tag bits.
        assert_eq!(c.tag_bits(), 20);
    }

    #[test]
    fn organization_conserves_cells() {
        for (size, block, assoc) in [
            (4 * 1024, 32, 1),
            (16 * 1024, 64, 4),
            (64 * 1024, 64, 2),
            (1024 * 1024, 64, 8),
            (8 * 1024 * 1024, 128, 16),
        ] {
            let c = CacheConfig::new(size, block, assoc).unwrap();
            let o = c.organization();
            assert_eq!(
                o.rows * o.cols * o.subarrays,
                size * 8,
                "cells lost for {c}"
            );
            assert!(o.rows <= MAX_ROWS, "{c}: rows {}", o.rows);
            assert!(o.cols <= MAX_COLS, "{c}: cols {}", o.cols);
        }
    }

    #[test]
    fn bigger_cache_means_more_subarrays_not_bigger_arrays() {
        let small = CacheConfig::new(16 * 1024, 64, 4).unwrap().organization();
        let large = CacheConfig::new(4 * 1024 * 1024, 64, 8)
            .unwrap()
            .organization();
        assert!(large.subarrays > small.subarrays);
        assert!(large.rows <= MAX_ROWS && large.cols <= MAX_COLS);
    }

    #[test]
    fn display_formats_sizes() {
        assert_eq!(
            CacheConfig::new(16 * 1024, 64, 4).unwrap().to_string(),
            "16KB/64B/4-way"
        );
        assert_eq!(
            CacheConfig::new(2 * 1024 * 1024, 128, 8)
                .unwrap()
                .to_string(),
            "2MB/128B/8-way"
        );
    }

    #[test]
    fn tag_cells_track_associativity() {
        let a1 = CacheConfig::new(64 * 1024, 64, 1).unwrap().organization();
        let a8 = CacheConfig::new(64 * 1024, 64, 8).unwrap().organization();
        // Higher associativity → fewer sets but more tags per set; tag bits
        // grow with associativity at constant size.
        assert!(a8.tag_cells > a1.tag_cells);
    }

    #[test]
    fn sense_amps_positive_and_column_muxed() {
        let o = CacheConfig::new(16 * 1024, 64, 4).unwrap().organization();
        assert!(o.sense_amps >= 1);
        assert_eq!(
            o.sense_amps,
            o.cols * o.subarrays / Organization::COLUMN_MUX
        );
    }
}
