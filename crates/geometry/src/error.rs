use std::error::Error;
use std::fmt;

/// Errors produced when validating a cache organisation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeometryError {
    /// A size parameter was not a power of two.
    NotPowerOfTwo {
        /// Which parameter ("size", "block", "associativity").
        which: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The block size exceeded the cache size.
    BlockLargerThanCache {
        /// Cache size in bytes.
        size: u64,
        /// Block size in bytes.
        block: u64,
    },
    /// Associativity exceeded the number of blocks in the cache.
    AssociativityTooHigh {
        /// Requested associativity.
        assoc: u64,
        /// Number of blocks available.
        blocks: u64,
    },
    /// The cache was smaller than the model supports.
    TooSmall {
        /// Requested size in bytes.
        size: u64,
        /// Minimum supported size in bytes.
        min: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotPowerOfTwo { which, value } => {
                write!(f, "cache {which} must be a power of two, got {value}")
            }
            GeometryError::BlockLargerThanCache { size, block } => {
                write!(f, "block size {block} B exceeds cache size {size} B")
            }
            GeometryError::AssociativityTooHigh { assoc, blocks } => {
                write!(f, "associativity {assoc} exceeds block count {blocks}")
            }
            GeometryError::TooSmall { size, min } => {
                write!(f, "cache size {size} B below the supported minimum {min} B")
            }
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = GeometryError::NotPowerOfTwo {
            which: "size",
            value: 3000,
        };
        assert!(e.to_string().contains("3000"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeometryError>();
    }
}
