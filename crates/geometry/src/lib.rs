//! # nm-geometry — CACTI-style cache circuit model
//!
//! This crate turns a cache *organisation* (size, block, associativity)
//! plus a per-component (`Vth`, `Tox`) assignment into circuit-level
//! metrics: access time, total leakage (subthreshold + gate + junction),
//! dynamic energy per access, area and transistor counts.
//!
//! It plays the role of the re-designed 65 nm cache netlists of the paper
//! (Section 3), which decompose a cache into **four components** whose
//! delays and leakages are modelled independently and summed:
//!
//! 1. memory cell array + sense amplifiers (the [`mod@array`] module),
//! 2. row decoder ([`decoder`]),
//! 3. address bus drivers ([`bus`]),
//! 4. data bus drivers ([`bus`]).
//!
//! [`CacheCircuit`] composes them; [`ComponentKnobs`] carries the
//! per-component knob assignment that the optimisers in `nm-opt` search
//! over.
//!
//! ```
//! use nm_device::TechnologyNode;
//! use nm_geometry::{CacheCircuit, CacheConfig, ComponentKnobs};
//! use nm_device::KnobPoint;
//!
//! let tech = TechnologyNode::bptm65();
//! let config = CacheConfig::new(16 * 1024, 64, 4)?;
//! let circuit = CacheCircuit::new(config, &tech);
//! let metrics = circuit.analyze(&ComponentKnobs::uniform(KnobPoint::nominal()));
//!
//! assert!(metrics.access_time().picos() > 0.0);
//! assert!(metrics.leakage().total().0 > 0.0);
//! # Ok::<(), nm_geometry::GeometryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod assignment;
pub mod bus;
pub mod cache;
pub mod config;
pub mod decoder;
pub mod explore;
pub mod logic;
pub mod sram;

mod error;

pub use assignment::{ComponentId, ComponentKnobs, COMPONENT_IDS};
pub use cache::{CacheCircuit, CacheMetrics, ComponentMetrics, ComponentSurface};
pub use config::{CacheConfig, Organization};
pub use error::GeometryError;
pub use sram::SramCell;
