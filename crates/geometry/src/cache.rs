//! Whole-cache composition: per-component metrics and their sums.
//!
//! Following the paper's Section 3, "we can approximate both the total
//! leakage and the delay of a cache system by summing up the leakage and
//! delay of each cache component", with each component's delay and leakage
//! depending **only on its own knob pair**. The component boundaries are
//! drawn so this independence holds exactly in the model:
//!
//! * the decoder's wordline driver sees a *fixed nominal* wordline load,
//! * the array's wordline propagation assumes a *fixed nominal* driver
//!   resistance,
//! * bus wire lengths come from a *fixed floorplan* sized at the nominal
//!   process corner (routing is planned once; cell-area growth with `Tox`
//!   is charged to the area metric, not re-routed per candidate).

use crate::array;
use crate::assignment::{ComponentId, ComponentKnobs, COMPONENT_IDS};
use crate::bus;
use crate::config::CacheConfig;
use crate::decoder;
use crate::sram::SramCell;
use nm_device::leakage::LeakageBreakdown;
use nm_device::units::{Joules, Seconds, SquareMicrons};
use nm_device::{KnobPoint, TechnologyNode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Metrics of one cache component under one knob pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentMetrics {
    /// Contribution to the access-path delay.
    pub delay: Seconds,
    /// Standby leakage power.
    pub leakage: LeakageBreakdown,
    /// Dynamic energy this component dissipates per read access.
    pub read_energy: Joules,
    /// Dynamic energy per write access (full-rail bitline swing in the
    /// array; identical to a read elsewhere).
    pub write_energy: Joules,
    /// Transistor count.
    pub transistors: u64,
    /// Silicon area.
    pub area: SquareMicrons,
}

impl ComponentMetrics {
    /// A zero-valued metrics record.
    pub const ZERO: Self = ComponentMetrics {
        delay: Seconds(0.0),
        leakage: LeakageBreakdown::ZERO,
        read_energy: Joules(0.0),
        write_energy: Joules(0.0),
        transistors: 0,
        area: SquareMicrons(0.0),
    };
}

/// Full analysis of a cache under a component-knob assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheMetrics {
    per_component: [ComponentMetrics; 4],
}

impl CacheMetrics {
    /// Assembles whole-cache metrics from per-component records (indexed
    /// by [`ComponentId::index`]) — the composition path used by callers
    /// that already hold memoized component metrics.
    pub fn from_components(per_component: [ComponentMetrics; 4]) -> Self {
        CacheMetrics { per_component }
    }

    /// Metrics of one component.
    pub fn component(&self, id: ComponentId) -> &ComponentMetrics {
        &self.per_component[id.index()]
    }

    /// Access time: the sum of the four component delays (the paper's
    /// additive delay model).
    pub fn access_time(&self) -> Seconds {
        self.per_component.iter().map(|m| m.delay).sum()
    }

    /// Total standby leakage across components.
    pub fn leakage(&self) -> LeakageBreakdown {
        self.per_component.iter().map(|m| m.leakage).sum()
    }

    /// Dynamic energy per read access.
    pub fn read_energy(&self) -> Joules {
        self.per_component.iter().map(|m| m.read_energy).sum()
    }

    /// Dynamic energy per write access.
    pub fn write_energy(&self) -> Joules {
        self.per_component.iter().map(|m| m.write_energy).sum()
    }

    /// Total transistor count.
    pub fn transistors(&self) -> u64 {
        self.per_component.iter().map(|m| m.transistors).sum()
    }

    /// Total silicon area.
    pub fn area(&self) -> SquareMicrons {
        self.per_component.iter().map(|m| m.area).sum()
    }
}

impl fmt::Display for CacheMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access {:.0} ps, leakage {:.3} mW, read {:.2} pJ, {:.3} mm²",
            self.access_time().picos(),
            self.leakage().total().milli(),
            self.read_energy().picos(),
            self.area().0 / 1e6
        )
    }
}

/// A cache organisation bound to a technology node, ready to be analysed
/// under any number of knob assignments.
///
/// Construction precomputes the physical organisation; [`analyze`] and the
/// per-component [`analyze_component`] are pure functions of the knob
/// assignment, which is what the optimisers exploit (the separable
/// delay-budget search evaluates single components thousands of times).
///
/// [`analyze`]: CacheCircuit::analyze
/// [`analyze_component`]: CacheCircuit::analyze_component
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheCircuit {
    config: CacheConfig,
    tech: TechnologyNode,
    cell: SramCell,
    org: crate::config::Organization,
}

impl CacheCircuit {
    /// Binds a configuration to a technology node with the default 65 nm
    /// cell and the default subarray folding.
    pub fn new(config: CacheConfig, tech: &TechnologyNode) -> Self {
        CacheCircuit {
            config,
            tech: tech.clone(),
            cell: SramCell::default_65nm(),
            org: config.organization(),
        }
    }

    /// Binds a configuration with a custom cell design.
    pub fn with_cell(config: CacheConfig, tech: &TechnologyNode, cell: SramCell) -> Self {
        CacheCircuit {
            config,
            tech: tech.clone(),
            cell,
            org: config.organization(),
        }
    }

    /// Binds a configuration with an explicit subarray folding (see
    /// [`crate::explore`] for choosing one).
    ///
    /// # Panics
    ///
    /// Panics when the organisation does not tile this configuration's
    /// cells exactly — pass foldings produced by
    /// [`Organization::custom`](crate::config::Organization::custom).
    pub fn with_organization(
        config: CacheConfig,
        tech: &TechnologyNode,
        org: crate::config::Organization,
    ) -> Self {
        assert_eq!(
            org.rows * org.cols * org.subarrays,
            config.size_bytes() * 8,
            "organisation does not tile the configured capacity"
        );
        CacheCircuit {
            config,
            tech: tech.clone(),
            cell: SramCell::default_65nm(),
            org,
        }
    }

    /// The subarray folding in use.
    pub fn organization(&self) -> crate::config::Organization {
        self.org
    }

    /// The architectural configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The bound technology node.
    pub fn tech(&self) -> &TechnologyNode {
        &self.tech
    }

    /// The cell design.
    pub fn cell(&self) -> &SramCell {
        &self.cell
    }

    /// Analyses a single component under a knob pair. Component metrics
    /// depend only on `(id, knobs)` — the independence the optimisers
    /// rely on.
    pub fn analyze_component(&self, id: ComponentId, knobs: KnobPoint) -> ComponentMetrics {
        let org = self.org;
        match id {
            ComponentId::MemoryArray => array::analyze(&self.tech, &org, &self.cell, knobs),
            ComponentId::Decoder => decoder::analyze(&self.tech, &org, &self.cell, knobs),
            ComponentId::AddressBus => bus::analyze_address(&self.tech, &org, &self.cell, knobs),
            ComponentId::DataBus => bus::analyze_data(&self.tech, &org, &self.cell, knobs),
        }
    }

    /// Analyses the whole cache under a component-knob assignment.
    pub fn analyze(&self, knobs: &ComponentKnobs) -> CacheMetrics {
        let mut per_component = [ComponentMetrics::ZERO; 4];
        for id in COMPONENT_IDS {
            per_component[id.index()] = self.analyze_component(id, knobs.get(id));
        }
        CacheMetrics { per_component }
    }

    /// Analyses one component across a whole set of knob points in one
    /// call, returning a dense [`ComponentSurface`] aligned with the
    /// input order.
    ///
    /// This is the cache-friendly bulk entry point the evaluation engine
    /// memoizes: one contiguous pass per `(component, point set)` instead
    /// of scattered [`analyze_component`](Self::analyze_component) calls,
    /// and the resulting surface supports O(1) point lookup.
    pub fn component_surface(&self, id: ComponentId, points: &[KnobPoint]) -> ComponentSurface {
        ComponentSurface::new(
            points.to_vec(),
            points
                .iter()
                .map(|&p| self.analyze_component(id, p))
                .collect(),
        )
    }

    /// The fastest achievable access time (every component at the
    /// fastest legal corner) — the tightest meaningful delay constraint.
    pub fn fastest_access_time(&self) -> Seconds {
        self.analyze(&ComponentKnobs::uniform(KnobPoint::fastest()))
            .access_time()
    }

    /// The slowest access time on the legal knob range (every component
    /// at the lowest-leakage corner) — beyond this a delay constraint is
    /// not binding.
    pub fn slowest_access_time(&self) -> Seconds {
        self.analyze(&ComponentKnobs::uniform(KnobPoint::lowest_leakage()))
            .access_time()
    }
}

/// One component's metrics evaluated over a fixed set of knob points —
/// the dense, memoizable form of repeated
/// [`CacheCircuit::analyze_component`] calls.
///
/// Metrics are stored contiguously in input-point order; a bit-exact
/// point index supports O(1) [`lookup`](Self::lookup) by knob pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSurface {
    points: Vec<KnobPoint>,
    metrics: Vec<ComponentMetrics>,
    index: std::collections::HashMap<(u64, u64), usize>,
}

fn point_key(p: KnobPoint) -> (u64, u64) {
    (p.vth().0.to_bits(), p.tox().0.to_bits())
}

impl ComponentSurface {
    fn new(points: Vec<KnobPoint>, metrics: Vec<ComponentMetrics>) -> Self {
        let index = points
            .iter()
            .enumerate()
            .map(|(i, &p)| (point_key(p), i))
            .collect();
        ComponentSurface {
            points,
            metrics,
            index,
        }
    }

    /// Assembles a surface from aligned point and metric vectors.
    ///
    /// Exists so validation layers and fault-injection harnesses can
    /// construct (possibly deliberately malformed) surfaces without
    /// re-running the circuit model; normal callers obtain surfaces from
    /// [`CacheCircuit::component_surface`].
    ///
    /// # Panics
    ///
    /// Panics when `points` and `metrics` differ in length.
    pub fn from_parts(points: Vec<KnobPoint>, metrics: Vec<ComponentMetrics>) -> Self {
        assert_eq!(
            points.len(),
            metrics.len(),
            "surface points and metrics must be aligned"
        );
        Self::new(points, metrics)
    }

    /// The knob points the surface was evaluated at, in input order.
    pub fn points(&self) -> &[KnobPoint] {
        &self.points
    }

    /// The metrics aligned with [`points`](Self::points).
    pub fn metrics(&self) -> &[ComponentMetrics] {
        &self.metrics
    }

    /// Number of evaluated points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the surface holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The metrics at a knob pair, matched bit-exactly, or `None` when
    /// the pair is not on the surface.
    pub fn lookup(&self, p: KnobPoint) -> Option<&ComponentMetrics> {
        self.index.get(&point_key(p)).map(|&i| &self.metrics[i])
    }

    /// Iterates `(point, metrics)` pairs in input order.
    pub fn iter(&self) -> impl Iterator<Item = (KnobPoint, &ComponentMetrics)> + '_ {
        self.points.iter().copied().zip(self.metrics.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::units::{Angstroms, Volts};

    fn circuit(size: u64) -> CacheCircuit {
        let tech = TechnologyNode::bptm65();
        CacheCircuit::new(CacheConfig::new(size, 64, 4).unwrap(), &tech)
    }

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    #[test]
    fn sums_equal_component_sums() {
        let c = circuit(16 * 1024);
        let m = c.analyze(&ComponentKnobs::default());
        let manual: Seconds = COMPONENT_IDS.iter().map(|&id| m.component(id).delay).sum();
        assert!((m.access_time().0 - manual.0).abs() < 1e-18);
    }

    #[test]
    fn fastest_corner_is_fastest_and_leakiest() {
        let c = circuit(16 * 1024);
        let fast = c.analyze(&ComponentKnobs::uniform(KnobPoint::fastest()));
        let slow = c.analyze(&ComponentKnobs::uniform(KnobPoint::lowest_leakage()));
        assert!(fast.access_time().0 < slow.access_time().0);
        assert!(fast.leakage().total().0 > slow.leakage().total().0);
        assert!((c.fastest_access_time().0 - fast.access_time().0).abs() < 1e-18);
        assert!((c.slowest_access_time().0 - slow.access_time().0).abs() < 1e-18);
    }

    #[test]
    fn sixteen_kb_lands_in_paper_bands() {
        // Figure 1 plots a 16 KB cache between ~800–2200 ps and 0–60 mW.
        let c = circuit(16 * 1024);
        let fast = c.analyze(&ComponentKnobs::uniform(KnobPoint::fastest()));
        let slow = c.analyze(&ComponentKnobs::uniform(KnobPoint::lowest_leakage()));
        let t_lo = fast.access_time().picos();
        let t_hi = slow.access_time().picos();
        assert!((400.0..1600.0).contains(&t_lo), "fastest = {t_lo} ps");
        assert!(t_hi / t_lo > 1.5, "knobs span only {:.2}x", t_hi / t_lo);
        let p_hi = fast.leakage().total().milli();
        assert!((10.0..120.0).contains(&p_hi), "max leakage = {p_hi} mW");
        let p_lo = slow.leakage().total().milli();
        assert!(p_hi / p_lo > 20.0, "leakage span only {:.1}x", p_hi / p_lo);
    }

    #[test]
    fn bigger_cache_is_slower_bigger_leakier() {
        let small = circuit(16 * 1024).analyze(&ComponentKnobs::default());
        let big = circuit(1024 * 1024).analyze(&ComponentKnobs::default());
        assert!(big.access_time().0 > small.access_time().0);
        assert!(big.leakage().total().0 > small.leakage().total().0);
        assert!(big.area().0 > small.area().0);
        assert!(big.transistors() > small.transistors());
        assert!(big.read_energy().0 > small.read_energy().0);
    }

    #[test]
    fn array_dominates_leakage() {
        // The cell array is by far the leakiest component (the premise of
        // the paper's Scheme II).
        let c = circuit(64 * 1024);
        let m = c.analyze(&ComponentKnobs::default());
        let array = m.component(ComponentId::MemoryArray).leakage.total().0;
        let periph: f64 = COMPONENT_IDS
            .iter()
            .filter(|id| id.is_peripheral())
            .map(|&id| m.component(id).leakage.total().0)
            .sum();
        assert!(array > 2.0 * periph, "array {array} vs periphery {periph}");
    }

    #[test]
    fn component_independence() {
        // Changing one component's knobs must not change another's metrics.
        let c = circuit(16 * 1024);
        let base = ComponentKnobs::uniform(k(0.3, 12.0));
        let tweaked = base.with(ComponentId::Decoder, k(0.5, 14.0));
        let m0 = c.analyze(&base);
        let m1 = c.analyze(&tweaked);
        for id in [
            ComponentId::MemoryArray,
            ComponentId::AddressBus,
            ComponentId::DataBus,
        ] {
            assert_eq!(m0.component(id), m1.component(id), "{id} changed");
        }
        assert_ne!(
            m0.component(ComponentId::Decoder),
            m1.component(ComponentId::Decoder)
        );
    }

    #[test]
    fn analyze_component_matches_full_analysis() {
        let c = circuit(32 * 1024);
        let knobs = ComponentKnobs::split(k(0.45, 13.0), k(0.25, 10.5));
        let full = c.analyze(&knobs);
        for id in COMPONENT_IDS {
            let single = c.analyze_component(id, knobs.get(id));
            assert_eq!(&single, full.component(id));
        }
    }

    #[test]
    fn component_surface_matches_pointwise_analysis() {
        let c = circuit(16 * 1024);
        let points = [k(0.2, 10.0), k(0.35, 12.0), k(0.5, 14.0)];
        let surface = c.component_surface(ComponentId::Decoder, &points);
        assert_eq!(surface.len(), 3);
        assert!(!surface.is_empty());
        for (i, (p, m)) in surface.iter().enumerate() {
            assert_eq!(p, points[i]);
            assert_eq!(m, &c.analyze_component(ComponentId::Decoder, p));
            assert_eq!(surface.lookup(p), Some(m));
        }
        assert_eq!(surface.points(), &points);
        assert_eq!(surface.metrics().len(), 3);
        assert!(surface.lookup(k(0.3, 11.0)).is_none());
    }

    #[test]
    fn from_components_roundtrips_analysis() {
        let c = circuit(16 * 1024);
        let full = c.analyze(&ComponentKnobs::default());
        let mut per = [ComponentMetrics::ZERO; 4];
        for id in COMPONENT_IDS {
            per[id.index()] = *full.component(id);
        }
        assert_eq!(CacheMetrics::from_components(per), full);
    }

    #[test]
    fn display_shows_headline_numbers() {
        let c = circuit(16 * 1024);
        let s = c.analyze(&ComponentKnobs::default()).to_string();
        assert!(
            s.contains("ps") && s.contains("mW") && s.contains("pJ"),
            "{s}"
        );
    }
}
