//! Whole-cache composition: per-component metrics and their sums.
//!
//! Following the paper's Section 3, "we can approximate both the total
//! leakage and the delay of a cache system by summing up the leakage and
//! delay of each cache component", with each component's delay and leakage
//! depending **only on its own knob pair**. The component boundaries are
//! drawn so this independence holds exactly in the model:
//!
//! * the decoder's wordline driver sees a *fixed nominal* wordline load,
//! * the array's wordline propagation assumes a *fixed nominal* driver
//!   resistance,
//! * bus wire lengths come from a *fixed floorplan* sized at the nominal
//!   process corner (routing is planned once; cell-area growth with `Tox`
//!   is charged to the area metric, not re-routed per candidate).

use crate::array;
use crate::assignment::{ComponentId, ComponentKnobs, COMPONENT_IDS};
use crate::bus;
use crate::config::CacheConfig;
use crate::decoder;
use crate::sram::SramCell;
use nm_device::leakage::LeakageBreakdown;
use nm_device::units::{Joules, Seconds, SquareMicrons, Watts};
use nm_device::{KnobPoint, PointPrims, PrimsTable, TechProfile, TechnologyNode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Metrics of one cache component under one knob pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentMetrics {
    /// Contribution to the access-path delay.
    pub delay: Seconds,
    /// Standby leakage power.
    pub leakage: LeakageBreakdown,
    /// Dynamic energy this component dissipates per read access.
    pub read_energy: Joules,
    /// Dynamic energy per write access (full-rail bitline swing in the
    /// array; identical to a read elsewhere).
    pub write_energy: Joules,
    /// Transistor count.
    pub transistors: u64,
    /// Silicon area.
    pub area: SquareMicrons,
}

impl ComponentMetrics {
    /// A zero-valued metrics record.
    pub const ZERO: Self = ComponentMetrics {
        delay: Seconds(0.0),
        leakage: LeakageBreakdown::ZERO,
        read_energy: Joules(0.0),
        write_energy: Joules(0.0),
        transistors: 0,
        area: SquareMicrons(0.0),
    };
}

/// Full analysis of a cache under a component-knob assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheMetrics {
    per_component: [ComponentMetrics; 4],
}

impl CacheMetrics {
    /// Assembles whole-cache metrics from per-component records (indexed
    /// by [`ComponentId::index`]) — the composition path used by callers
    /// that already hold memoized component metrics.
    pub fn from_components(per_component: [ComponentMetrics; 4]) -> Self {
        CacheMetrics { per_component }
    }

    /// Metrics of one component.
    pub fn component(&self, id: ComponentId) -> &ComponentMetrics {
        &self.per_component[id.index()]
    }

    /// Access time: the sum of the four component delays (the paper's
    /// additive delay model).
    pub fn access_time(&self) -> Seconds {
        self.per_component.iter().map(|m| m.delay).sum()
    }

    /// Total standby leakage across components.
    pub fn leakage(&self) -> LeakageBreakdown {
        self.per_component.iter().map(|m| m.leakage).sum()
    }

    /// Dynamic energy per read access.
    pub fn read_energy(&self) -> Joules {
        self.per_component.iter().map(|m| m.read_energy).sum()
    }

    /// Dynamic energy per write access.
    pub fn write_energy(&self) -> Joules {
        self.per_component.iter().map(|m| m.write_energy).sum()
    }

    /// Total transistor count.
    pub fn transistors(&self) -> u64 {
        self.per_component.iter().map(|m| m.transistors).sum()
    }

    /// Total silicon area.
    pub fn area(&self) -> SquareMicrons {
        self.per_component.iter().map(|m| m.area).sum()
    }
}

impl fmt::Display for CacheMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access {:.0} ps, leakage {:.3} mW, read {:.2} pJ, {:.3} mm²",
            self.access_time().picos(),
            self.leakage().total().milli(),
            self.read_energy().picos(),
            self.area().0 / 1e6
        )
    }
}

/// A cache organisation bound to a technology node, ready to be analysed
/// under any number of knob assignments.
///
/// Construction precomputes the physical organisation; [`analyze`] and the
/// per-component [`analyze_component`] are pure functions of the knob
/// assignment, which is what the optimisers exploit (the separable
/// delay-budget search evaluates single components thousands of times).
///
/// [`analyze`]: CacheCircuit::analyze
/// [`analyze_component`]: CacheCircuit::analyze_component
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheCircuit {
    config: CacheConfig,
    tech: TechnologyNode,
    cell: SramCell,
    org: crate::config::Organization,
    profile: TechProfile,
}

impl CacheCircuit {
    /// Binds a configuration to a technology node with the default 65 nm
    /// cell and the default subarray folding.
    pub fn new(config: CacheConfig, tech: &TechnologyNode) -> Self {
        CacheCircuit {
            config,
            tech: tech.clone(),
            cell: SramCell::default_65nm(),
            org: config.organization(),
            profile: TechProfile::sram(),
        }
    }

    /// Binds a configuration with a custom cell design.
    pub fn with_cell(config: CacheConfig, tech: &TechnologyNode, cell: SramCell) -> Self {
        CacheCircuit {
            config,
            tech: tech.clone(),
            cell,
            org: config.organization(),
            profile: TechProfile::sram(),
        }
    }

    /// Binds a configuration to a technology node under a non-SRAM cell
    /// technology: the periphery (decoder, buses) stays CMOS at `tech`,
    /// while the memory array's metrics are transformed by `profile`
    /// (energy/leakage/delay/area scaling plus refresh power). The SRAM
    /// identity profile reproduces [`new`](Self::new) exactly.
    pub fn with_technology(
        config: CacheConfig,
        tech: &TechnologyNode,
        profile: TechProfile,
    ) -> Self {
        CacheCircuit {
            config,
            tech: tech.clone(),
            cell: SramCell::default_65nm(),
            org: config.organization(),
            profile,
        }
    }

    /// Binds a configuration with an explicit subarray folding (see
    /// [`crate::explore`] for choosing one).
    ///
    /// # Panics
    ///
    /// Panics when the organisation does not tile this configuration's
    /// cells exactly — pass foldings produced by
    /// [`Organization::custom`](crate::config::Organization::custom).
    pub fn with_organization(
        config: CacheConfig,
        tech: &TechnologyNode,
        org: crate::config::Organization,
    ) -> Self {
        assert_eq!(
            org.rows * org.cols * org.subarrays,
            config.size_bytes() * 8,
            "organisation does not tile the configured capacity"
        );
        CacheCircuit {
            config,
            tech: tech.clone(),
            cell: SramCell::default_65nm(),
            org,
            profile: TechProfile::sram(),
        }
    }

    /// The subarray folding in use.
    pub fn organization(&self) -> crate::config::Organization {
        self.org
    }

    /// The architectural configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The bound technology node.
    pub fn tech(&self) -> &TechnologyNode {
        &self.tech
    }

    /// The cell design.
    pub fn cell(&self) -> &SramCell {
        &self.cell
    }

    /// The cell-technology profile the memory array is transformed by.
    pub fn technology(&self) -> &TechProfile {
        &self.profile
    }

    /// Maps an SRAM-model metrics record onto this circuit's cell
    /// technology. Applies to the memory array only — the periphery is
    /// CMOS regardless of what the cells are made of. The identity
    /// profile returns `m` untouched (bit-for-bit), which is what keeps
    /// every all-SRAM study byte-identical to the pre-technology engine.
    fn apply_profile(&self, id: ComponentId, m: ComponentMetrics) -> ComponentMetrics {
        if id != ComponentId::MemoryArray || self.profile.is_identity() {
            return m;
        }
        let p = &self.profile;
        // Refresh is knob-independent static power charged per stored bit;
        // it lands in the subthreshold bucket (the "cell standby" channel).
        let refresh = p.refresh_power_per_bit * (self.config.size_bytes() * 8) as f64;
        ComponentMetrics {
            delay: m.delay * p.delay_scale,
            leakage: LeakageBreakdown {
                subthreshold: m.leakage.subthreshold * p.leakage_scale + refresh,
                gate: m.leakage.gate * p.leakage_scale,
                junction: m.leakage.junction * p.leakage_scale,
            },
            read_energy: m.read_energy * p.read_energy_scale,
            write_energy: m.write_energy * p.write_energy_scale,
            transistors: m.transistors,
            area: m.area * p.area_scale,
        }
    }

    /// Analyses a single component under a knob pair. Component metrics
    /// depend only on `(id, knobs)` — the independence the optimisers
    /// rely on.
    pub fn analyze_component(&self, id: ComponentId, knobs: KnobPoint) -> ComponentMetrics {
        let org = self.org;
        let m = match id {
            ComponentId::MemoryArray => array::analyze(&self.tech, &org, &self.cell, knobs),
            ComponentId::Decoder => decoder::analyze(&self.tech, &org, &self.cell, knobs),
            ComponentId::AddressBus => bus::analyze_address(&self.tech, &org, &self.cell, knobs),
            ComponentId::DataBus => bus::analyze_data(&self.tech, &org, &self.cell, knobs),
        };
        self.apply_profile(id, m)
    }

    /// [`analyze_component`](Self::analyze_component) through a primitive
    /// provider — the bulk path used by [`component_surface_with`]
    /// (hoisted per-point device primitives shared across components).
    ///
    /// [`component_surface_with`]: Self::component_surface_with
    pub fn analyze_component_with<P: PointPrims>(
        &self,
        id: ComponentId,
        prims: &P,
    ) -> ComponentMetrics {
        let org = self.org;
        let m = match id {
            ComponentId::MemoryArray => array::analyze_with(&self.tech, &org, &self.cell, prims),
            ComponentId::Decoder => decoder::analyze_with(&self.tech, &org, &self.cell, prims),
            ComponentId::AddressBus => {
                bus::analyze_address_with(&self.tech, &org, &self.cell, prims)
            }
            ComponentId::DataBus => bus::analyze_data_with(&self.tech, &org, &self.cell, prims),
        };
        self.apply_profile(id, m)
    }

    /// Analyses the whole cache under a component-knob assignment.
    pub fn analyze(&self, knobs: &ComponentKnobs) -> CacheMetrics {
        let mut per_component = [ComponentMetrics::ZERO; 4];
        for id in COMPONENT_IDS {
            per_component[id.index()] = self.analyze_component(id, knobs.get(id));
        }
        CacheMetrics { per_component }
    }

    /// Analyses one component across a whole set of knob points in one
    /// call, returning a dense [`ComponentSurface`] aligned with the
    /// input order.
    ///
    /// This is the cache-friendly bulk entry point the evaluation engine
    /// memoizes: one contiguous pass per `(component, point set)` instead
    /// of scattered [`analyze_component`](Self::analyze_component) calls,
    /// and the resulting surface supports O(1) point lookup.
    pub fn component_surface(&self, id: ComponentId, points: &[KnobPoint]) -> ComponentSurface {
        let prims = PrimsTable::new(&self.tech, points);
        self.component_surface_with(id, points, &prims)
    }

    /// [`component_surface`](Self::component_surface) over a prebuilt
    /// [`PrimsTable`], so callers sweeping several components of the same
    /// circuit over the same point set pay the per-point device-primitive
    /// hoisting once instead of once per component.
    ///
    /// # Panics
    ///
    /// Panics when `prims` was not built over exactly `points`.
    pub fn component_surface_with(
        &self,
        id: ComponentId,
        points: &[KnobPoint],
        prims: &PrimsTable,
    ) -> ComponentSurface {
        assert_eq!(
            points.len(),
            prims.len(),
            "prims table must be built over the surface's point set"
        );
        ComponentSurface::new(
            points.to_vec(),
            prims
                .items()
                .iter()
                .map(|h| self.analyze_component_with(id, h))
                .collect(),
        )
    }

    /// The fastest achievable access time (every component at the
    /// fastest legal corner) — the tightest meaningful delay constraint.
    pub fn fastest_access_time(&self) -> Seconds {
        self.analyze(&ComponentKnobs::uniform(KnobPoint::fastest()))
            .access_time()
    }

    /// The slowest access time on the legal knob range (every component
    /// at the lowest-leakage corner) — beyond this a delay constraint is
    /// not binding.
    pub fn slowest_access_time(&self) -> Seconds {
        self.analyze(&ComponentKnobs::uniform(KnobPoint::lowest_leakage()))
            .access_time()
    }
}

/// One component's metrics evaluated over a fixed set of knob points —
/// the dense, memoizable form of repeated
/// [`CacheCircuit::analyze_component`] calls.
///
/// Stored structure-of-arrays: one contiguous buffer per scalar metric,
/// in input-point order, so bulk consumers (surface validation, candidate
/// assembly) scan flat `f64` slices instead of striding through an
/// array-of-structs. Point lookup is bit-exact (signed zeros normalized):
/// O(1) arithmetic when the point set is a dense tox-major grid, hash
/// lookup otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSurface {
    points: Vec<KnobPoint>,
    delay: Vec<f64>,
    sub_leakage: Vec<f64>,
    gate_leakage: Vec<f64>,
    junction_leakage: Vec<f64>,
    read_energy: Vec<f64>,
    write_energy: Vec<f64>,
    area: Vec<f64>,
    transistors: Vec<u64>,
    index: PointIndex,
}

/// Normalizes a knob coordinate for bit-exact keying: `-0.0` and `0.0`
/// compare equal as knob values, so they must map to the same key
/// (`x + 0.0` canonicalizes a signed zero to `+0.0` and is the identity
/// on every other value, NaN payloads included).
fn zero_normalized_bits(x: f64) -> u64 {
    (x + 0.0).to_bits()
}

fn point_key(p: KnobPoint) -> (u64, u64) {
    (
        zero_normalized_bits(p.vth().0),
        zero_normalized_bits(p.tox().0),
    )
}

/// Bit-exact point→row index of a [`ComponentSurface`].
#[derive(Debug, Clone, PartialEq)]
enum PointIndex {
    /// The point set is a dense tox-major grid: row `t * vth.len() + v`
    /// holds `(vth[v], tox[t])`. Lookup is two short axis scans, no
    /// hashing, and building it is allocation-light — the layout
    /// [`nm_device::KnobGrid::points`] produces.
    Grid { vth: Vec<u64>, tox: Vec<u64> },
    /// Arbitrary point sets fall back to an ordered index (lookup only,
    /// so the tree's deterministic order costs nothing and keeps the
    /// D4 no-hash-iteration invariant trivially true).
    Map(std::collections::BTreeMap<(u64, u64), usize>),
}

impl PointIndex {
    fn build(points: &[KnobPoint]) -> Self {
        Self::try_grid(points).unwrap_or_else(|| {
            PointIndex::Map(
                points
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (point_key(p), i))
                    .collect(),
            )
        })
    }

    /// Recognizes the dense tox-major layout: the vth axis repeats
    /// identically inside each constant-tox block and both axes are
    /// duplicate-free.
    fn try_grid(points: &[KnobPoint]) -> Option<Self> {
        let first_tox = zero_normalized_bits(points.first()?.tox().0);
        let nv = points
            .iter()
            .position(|p| zero_normalized_bits(p.tox().0) != first_tox)
            .unwrap_or(points.len());
        if !points.len().is_multiple_of(nv) {
            return None;
        }
        let nt = points.len() / nv;
        let vth: Vec<u64> = points[..nv]
            .iter()
            .map(|p| zero_normalized_bits(p.vth().0))
            .collect();
        let mut tox = Vec::with_capacity(nt);
        for t in 0..nt {
            let block = &points[t * nv..(t + 1) * nv];
            let block_tox = zero_normalized_bits(block[0].tox().0);
            let regular = block.iter().zip(&vth).all(|(p, &v)| {
                zero_normalized_bits(p.tox().0) == block_tox && zero_normalized_bits(p.vth().0) == v
            });
            if !regular || tox.contains(&block_tox) {
                return None;
            }
            tox.push(block_tox);
        }
        let mut seen_v = vth.clone();
        seen_v.sort_unstable();
        seen_v.dedup();
        if seen_v.len() != vth.len() {
            return None;
        }
        Some(PointIndex::Grid { vth, tox })
    }

    fn lookup(&self, p: KnobPoint) -> Option<usize> {
        match self {
            PointIndex::Grid { vth, tox } => {
                let (vk, tk) = point_key(p);
                let v = vth.iter().position(|&b| b == vk)?;
                let t = tox.iter().position(|&b| b == tk)?;
                Some(t * vth.len() + v)
            }
            PointIndex::Map(map) => map.get(&point_key(p)).copied(),
        }
    }
}

impl ComponentSurface {
    fn new(points: Vec<KnobPoint>, metrics: Vec<ComponentMetrics>) -> Self {
        let index = PointIndex::build(&points);
        let n = metrics.len();
        let mut s = ComponentSurface {
            points,
            delay: Vec::with_capacity(n),
            sub_leakage: Vec::with_capacity(n),
            gate_leakage: Vec::with_capacity(n),
            junction_leakage: Vec::with_capacity(n),
            read_energy: Vec::with_capacity(n),
            write_energy: Vec::with_capacity(n),
            area: Vec::with_capacity(n),
            transistors: Vec::with_capacity(n),
            index,
        };
        for m in metrics {
            s.delay.push(m.delay.0);
            s.sub_leakage.push(m.leakage.subthreshold.0);
            s.gate_leakage.push(m.leakage.gate.0);
            s.junction_leakage.push(m.leakage.junction.0);
            s.read_energy.push(m.read_energy.0);
            s.write_energy.push(m.write_energy.0);
            s.area.push(m.area.0);
            s.transistors.push(m.transistors);
        }
        s
    }

    /// Assembles a surface from aligned point and metric vectors.
    ///
    /// Exists so validation layers and fault-injection harnesses can
    /// construct (possibly deliberately malformed) surfaces without
    /// re-running the circuit model; normal callers obtain surfaces from
    /// [`CacheCircuit::component_surface`].
    ///
    /// # Panics
    ///
    /// Panics when `points` and `metrics` differ in length.
    pub fn from_parts(points: Vec<KnobPoint>, metrics: Vec<ComponentMetrics>) -> Self {
        assert_eq!(
            points.len(),
            metrics.len(),
            "surface points and metrics must be aligned"
        );
        Self::new(points, metrics)
    }

    /// The knob points the surface was evaluated at, in input order.
    pub fn points(&self) -> &[KnobPoint] {
        &self.points
    }

    /// Reassembles the metrics record at row `i` (input-point order).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn metric_at(&self, i: usize) -> ComponentMetrics {
        ComponentMetrics {
            delay: Seconds(self.delay[i]),
            leakage: LeakageBreakdown {
                subthreshold: Watts(self.sub_leakage[i]),
                gate: Watts(self.gate_leakage[i]),
                junction: Watts(self.junction_leakage[i]),
            },
            read_energy: Joules(self.read_energy[i]),
            write_energy: Joules(self.write_energy[i]),
            transistors: self.transistors[i],
            area: SquareMicrons(self.area[i]),
        }
    }

    /// Materializes the full metrics vector aligned with
    /// [`points`](Self::points) (the array-of-structs view, for callers
    /// that need owned records — e.g. surface mutation harnesses).
    pub fn metrics_vec(&self) -> Vec<ComponentMetrics> {
        (0..self.len()).map(|i| self.metric_at(i)).collect()
    }

    /// Per-point delays, seconds, in input order.
    pub fn delays(&self) -> &[f64] {
        &self.delay
    }

    /// Per-point subthreshold leakage, watts, in input order.
    pub fn subthreshold_leakages(&self) -> &[f64] {
        &self.sub_leakage
    }

    /// Per-point gate-tunnelling leakage, watts, in input order.
    pub fn gate_leakages(&self) -> &[f64] {
        &self.gate_leakage
    }

    /// Per-point junction leakage, watts, in input order.
    pub fn junction_leakages(&self) -> &[f64] {
        &self.junction_leakage
    }

    /// Per-point read energies, joules, in input order.
    pub fn read_energies(&self) -> &[f64] {
        &self.read_energy
    }

    /// Per-point write energies, joules, in input order.
    pub fn write_energies(&self) -> &[f64] {
        &self.write_energy
    }

    /// Per-point silicon areas, µm², in input order.
    pub fn areas(&self) -> &[f64] {
        &self.area
    }

    /// Per-point transistor counts, in input order.
    pub fn transistor_counts(&self) -> &[u64] {
        &self.transistors
    }

    /// Number of evaluated points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the surface holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The metrics at a knob pair, matched bit-exactly (signed zeros
    /// normalized), or `None` when the pair is not on the surface.
    pub fn lookup(&self, p: KnobPoint) -> Option<ComponentMetrics> {
        self.index.lookup(p).map(|i| self.metric_at(i))
    }

    /// Iterates `(point, metrics)` pairs in input order.
    pub fn iter(&self) -> impl Iterator<Item = (KnobPoint, ComponentMetrics)> + '_ {
        self.points
            .iter()
            .copied()
            .enumerate()
            .map(|(i, p)| (p, self.metric_at(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_device::units::{Angstroms, Volts};

    fn circuit(size: u64) -> CacheCircuit {
        let tech = TechnologyNode::bptm65();
        CacheCircuit::new(CacheConfig::new(size, 64, 4).unwrap(), &tech)
    }

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    #[test]
    fn sums_equal_component_sums() {
        let c = circuit(16 * 1024);
        let m = c.analyze(&ComponentKnobs::default());
        let manual: Seconds = COMPONENT_IDS.iter().map(|&id| m.component(id).delay).sum();
        assert!((m.access_time().0 - manual.0).abs() < 1e-18);
    }

    #[test]
    fn fastest_corner_is_fastest_and_leakiest() {
        let c = circuit(16 * 1024);
        let fast = c.analyze(&ComponentKnobs::uniform(KnobPoint::fastest()));
        let slow = c.analyze(&ComponentKnobs::uniform(KnobPoint::lowest_leakage()));
        assert!(fast.access_time().0 < slow.access_time().0);
        assert!(fast.leakage().total().0 > slow.leakage().total().0);
        assert!((c.fastest_access_time().0 - fast.access_time().0).abs() < 1e-18);
        assert!((c.slowest_access_time().0 - slow.access_time().0).abs() < 1e-18);
    }

    #[test]
    fn sixteen_kb_lands_in_paper_bands() {
        // Figure 1 plots a 16 KB cache between ~800–2200 ps and 0–60 mW.
        let c = circuit(16 * 1024);
        let fast = c.analyze(&ComponentKnobs::uniform(KnobPoint::fastest()));
        let slow = c.analyze(&ComponentKnobs::uniform(KnobPoint::lowest_leakage()));
        let t_lo = fast.access_time().picos();
        let t_hi = slow.access_time().picos();
        assert!((400.0..1600.0).contains(&t_lo), "fastest = {t_lo} ps");
        assert!(t_hi / t_lo > 1.5, "knobs span only {:.2}x", t_hi / t_lo);
        let p_hi = fast.leakage().total().milli();
        assert!((10.0..120.0).contains(&p_hi), "max leakage = {p_hi} mW");
        let p_lo = slow.leakage().total().milli();
        assert!(p_hi / p_lo > 20.0, "leakage span only {:.1}x", p_hi / p_lo);
    }

    #[test]
    fn bigger_cache_is_slower_bigger_leakier() {
        let small = circuit(16 * 1024).analyze(&ComponentKnobs::default());
        let big = circuit(1024 * 1024).analyze(&ComponentKnobs::default());
        assert!(big.access_time().0 > small.access_time().0);
        assert!(big.leakage().total().0 > small.leakage().total().0);
        assert!(big.area().0 > small.area().0);
        assert!(big.transistors() > small.transistors());
        assert!(big.read_energy().0 > small.read_energy().0);
    }

    #[test]
    fn array_dominates_leakage() {
        // The cell array is by far the leakiest component (the premise of
        // the paper's Scheme II).
        let c = circuit(64 * 1024);
        let m = c.analyze(&ComponentKnobs::default());
        let array = m.component(ComponentId::MemoryArray).leakage.total().0;
        let periph: f64 = COMPONENT_IDS
            .iter()
            .filter(|id| id.is_peripheral())
            .map(|&id| m.component(id).leakage.total().0)
            .sum();
        assert!(array > 2.0 * periph, "array {array} vs periphery {periph}");
    }

    #[test]
    fn component_independence() {
        // Changing one component's knobs must not change another's metrics.
        let c = circuit(16 * 1024);
        let base = ComponentKnobs::uniform(k(0.3, 12.0));
        let tweaked = base.with(ComponentId::Decoder, k(0.5, 14.0));
        let m0 = c.analyze(&base);
        let m1 = c.analyze(&tweaked);
        for id in [
            ComponentId::MemoryArray,
            ComponentId::AddressBus,
            ComponentId::DataBus,
        ] {
            assert_eq!(m0.component(id), m1.component(id), "{id} changed");
        }
        assert_ne!(
            m0.component(ComponentId::Decoder),
            m1.component(ComponentId::Decoder)
        );
    }

    #[test]
    fn analyze_component_matches_full_analysis() {
        let c = circuit(32 * 1024);
        let knobs = ComponentKnobs::split(k(0.45, 13.0), k(0.25, 10.5));
        let full = c.analyze(&knobs);
        for id in COMPONENT_IDS {
            let single = c.analyze_component(id, knobs.get(id));
            assert_eq!(&single, full.component(id));
        }
    }

    #[test]
    fn component_surface_matches_pointwise_analysis() {
        let c = circuit(16 * 1024);
        let points = [k(0.2, 10.0), k(0.35, 12.0), k(0.5, 14.0)];
        let surface = c.component_surface(ComponentId::Decoder, &points);
        assert_eq!(surface.len(), 3);
        assert!(!surface.is_empty());
        for (i, (p, m)) in surface.iter().enumerate() {
            assert_eq!(p, points[i]);
            assert_eq!(m, c.analyze_component(ComponentId::Decoder, p));
            assert_eq!(surface.lookup(p), Some(m));
            assert_eq!(surface.metric_at(i), m);
        }
        assert_eq!(surface.points(), &points);
        assert_eq!(surface.metrics_vec().len(), 3);
        assert!(surface.lookup(k(0.3, 11.0)).is_none());
    }

    #[test]
    fn grid_point_sets_use_the_arithmetic_index() {
        let c = circuit(16 * 1024);
        let points: Vec<KnobPoint> = nm_device::KnobGrid::coarse().points().collect();
        let surface = c.component_surface(ComponentId::MemoryArray, &points);
        assert!(
            matches!(surface.index, PointIndex::Grid { .. }),
            "tox-major grid layout should be recognized"
        );
        for &p in &points {
            assert_eq!(
                surface.lookup(p),
                Some(c.analyze_component(ComponentId::MemoryArray, p))
            );
        }
        assert!(surface.lookup(k(0.21, 10.01)).is_none());
    }

    #[test]
    fn soa_buffers_align_with_metrics() {
        let c = circuit(16 * 1024);
        let points = [k(0.2, 10.0), k(0.5, 14.0)];
        let s = c.component_surface(ComponentId::DataBus, &points);
        for (i, m) in s.metrics_vec().into_iter().enumerate() {
            assert_eq!(s.delays()[i], m.delay.0);
            assert_eq!(s.subthreshold_leakages()[i], m.leakage.subthreshold.0);
            assert_eq!(s.gate_leakages()[i], m.leakage.gate.0);
            assert_eq!(s.junction_leakages()[i], m.leakage.junction.0);
            assert_eq!(s.read_energies()[i], m.read_energy.0);
            assert_eq!(s.write_energies()[i], m.write_energy.0);
            assert_eq!(s.areas()[i], m.area.0);
            assert_eq!(s.transistor_counts()[i], m.transistors);
        }
    }

    #[test]
    fn signed_zeros_key_identically() {
        // KnobPoint's validated ranges exclude zero, but the index must
        // stay total over raw f64 keys (fault-injection surfaces go
        // through from_parts): both zero encodings map to one key.
        assert_eq!(zero_normalized_bits(0.0), zero_normalized_bits(-0.0));
        assert_eq!(zero_normalized_bits(0.0), 0.0f64.to_bits());
        // And normalization is the identity elsewhere.
        for x in [0.2, -3.5, 1e-300, f64::INFINITY] {
            assert_eq!(zero_normalized_bits(x), x.to_bits());
        }
        assert_eq!(
            zero_normalized_bits(f64::NAN),
            f64::NAN.to_bits(),
            "NaN payloads pass through"
        );
    }

    #[test]
    fn component_surface_with_shares_one_prims_table() {
        let c = circuit(16 * 1024);
        let points: Vec<KnobPoint> = nm_device::KnobGrid::coarse().points().collect();
        let prims = PrimsTable::new(c.tech(), &points);
        for id in COMPONENT_IDS {
            let shared = c.component_surface_with(id, &points, &prims);
            let direct = c.component_surface(id, &points);
            assert_eq!(shared, direct, "{id} surface diverged");
        }
    }

    #[test]
    fn from_components_roundtrips_analysis() {
        let c = circuit(16 * 1024);
        let full = c.analyze(&ComponentKnobs::default());
        let mut per = [ComponentMetrics::ZERO; 4];
        for id in COMPONENT_IDS {
            per[id.index()] = *full.component(id);
        }
        assert_eq!(CacheMetrics::from_components(per), full);
    }

    #[test]
    fn identity_profile_is_bitwise_transparent() {
        let size = 64 * 1024;
        let tech = TechnologyNode::bptm65();
        let plain = circuit(size);
        let explicit = CacheCircuit::with_technology(
            CacheConfig::new(size, 64, 4).unwrap(),
            &tech,
            TechProfile::sram(),
        );
        let knobs = ComponentKnobs::split(k(0.45, 13.0), k(0.25, 10.5));
        assert_eq!(plain.analyze(&knobs), explicit.analyze(&knobs));
        assert!(plain.technology().is_identity());
    }

    #[test]
    fn non_sram_profiles_transform_only_the_array() {
        let size = 1024 * 1024;
        let tech = TechnologyNode::bptm65();
        let sram = circuit(size);
        let edram = CacheCircuit::with_technology(
            CacheConfig::new(size, 64, 4).unwrap(),
            &tech,
            TechProfile::edram(),
        );
        let knobs = ComponentKnobs::default();
        let s = sram.analyze(&knobs);
        let e = edram.analyze(&knobs);
        // Periphery untouched.
        for id in COMPONENT_IDS.iter().filter(|id| id.is_peripheral()) {
            assert_eq!(s.component(*id), e.component(*id), "{id} changed");
        }
        // Array: slower, denser, lower leakage despite refresh, costlier
        // per access.
        let (sa, ea) = (
            s.component(ComponentId::MemoryArray),
            e.component(ComponentId::MemoryArray),
        );
        assert!(ea.delay.0 > sa.delay.0);
        assert!(ea.area.0 < sa.area.0);
        assert!(ea.leakage.total().0 < sa.leakage.total().0);
        assert!(ea.read_energy.0 > sa.read_energy.0);
        assert_eq!(ea.transistors, sa.transistors);
        // Refresh makes the static floor knob-independent: even the
        // lowest-leakage corner keeps at least the refresh power.
        let refresh = TechProfile::edram().refresh_power_per_bit.0 * (size * 8) as f64;
        let low = edram
            .analyze(&ComponentKnobs::uniform(KnobPoint::lowest_leakage()))
            .component(ComponentId::MemoryArray)
            .leakage
            .total()
            .0;
        assert!(
            low >= refresh,
            "low corner {low} under refresh floor {refresh}"
        );
    }

    #[test]
    fn mram_write_read_asymmetry_survives_the_transform() {
        let size = 256 * 1024;
        let tech = TechnologyNode::bptm65();
        let mram = CacheCircuit::with_technology(
            CacheConfig::new(size, 64, 8).unwrap(),
            &tech,
            TechProfile::stt_mram(),
        );
        let m = mram
            .analyze(&ComponentKnobs::default())
            .component(ComponentId::MemoryArray)
            .to_owned();
        assert!(
            m.write_energy.0 / m.read_energy.0 > 2.0,
            "write/read = {}",
            m.write_energy.0 / m.read_energy.0
        );
    }

    #[test]
    fn profiled_surfaces_match_pointwise_analysis() {
        let tech = TechnologyNode::bptm65();
        let c = CacheCircuit::with_technology(
            CacheConfig::new(512 * 1024, 64, 8).unwrap(),
            &tech,
            TechProfile::stt_mram(),
        );
        let points: Vec<KnobPoint> = nm_device::KnobGrid::coarse().points().collect();
        let surface = c.component_surface(ComponentId::MemoryArray, &points);
        for &p in points.iter().take(5) {
            assert_eq!(
                surface.lookup(p),
                Some(c.analyze_component(ComponentId::MemoryArray, p))
            );
        }
    }

    #[test]
    fn display_shows_headline_numbers() {
        let c = circuit(16 * 1024);
        let s = c.analyze(&ComponentKnobs::default()).to_string();
        assert!(
            s.contains("ps") && s.contains("mW") && s.contains("pJ"),
            "{s}"
        );
    }
}
