//! Typed failure classes of the persistence layer.
//!
//! The split matters to callers: `Io` and `DiskFull` mean the
//! filesystem misbehaved (retryable, environment-dependent), while
//! `Corrupt*` variants mean bytes on disk failed validation (the store
//! quarantined them; recompute and rewrite). The CLI maps every variant
//! to the documented persistence exit code (6); the evaluation engine
//! instead counts them and falls back to in-memory operation — a broken
//! store must never abort a study.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors raised by the segment store and the atomic-write helpers.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the store was doing ("open segment", "append record", …).
        context: String,
        /// The operating-system error.
        source: io::Error,
    },
    /// The device rejected a write for lack of space. Split from `Io`
    /// because callers commonly degrade differently (stop persisting,
    /// keep computing) when the disk is full.
    DiskFull {
        /// What the store was writing.
        context: String,
    },
    /// A segment file's magic or format version is not this crate's —
    /// the file is not a store segment, or was written by an
    /// incompatible version.
    IncompatibleSegment {
        /// The offending file.
        path: PathBuf,
        /// Human-readable mismatch description.
        detail: String,
    },
    /// A record failed checksum validation when it was *read back*
    /// (post-open corruption, e.g. bit rot under a running process).
    /// Open-time corruption is not an error — it is quarantined by
    /// truncation and reported through [`OpenReport`](crate::OpenReport).
    CorruptRecord {
        /// Byte offset of the record header in the segment.
        offset: u64,
        /// What failed ("payload checksum mismatch", …).
        detail: String,
    },
    /// A checkpoint-style whole-file read failed validation (bad magic,
    /// truncation, checksum mismatch).
    CorruptFile {
        /// The offending file.
        path: PathBuf,
        /// What failed.
        detail: String,
    },
    /// A record payload exceeds the format's size cap — almost
    /// certainly a corrupt length field; refusing early keeps a flipped
    /// length bit from provoking a multi-gigabyte allocation.
    TooLarge {
        /// Byte offset of the record header in the segment.
        offset: u64,
        /// The claimed payload length.
        claimed: u64,
    },
}

impl StoreError {
    /// Wraps an I/O error with context, classifying `ENOSPC` as
    /// [`DiskFull`](Self::DiskFull).
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        let context = context.into();
        if source.kind() == io::ErrorKind::StorageFull {
            StoreError::DiskFull { context }
        } else {
            StoreError::Io { context, source }
        }
    }

    /// `true` for corruption classes (quarantinable bytes), `false` for
    /// environmental I/O failures.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StoreError::CorruptRecord { .. }
                | StoreError::CorruptFile { .. }
                | StoreError::IncompatibleSegment { .. }
                | StoreError::TooLarge { .. }
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "store: {context}: {source}"),
            StoreError::DiskFull { context } => {
                write!(f, "store: {context}: no space left on device")
            }
            StoreError::IncompatibleSegment { path, detail } => {
                write!(
                    f,
                    "store: {} is not a compatible segment: {detail}",
                    path.display()
                )
            }
            StoreError::CorruptRecord { offset, detail } => {
                write!(f, "store: corrupt record at byte {offset}: {detail}")
            }
            StoreError::CorruptFile { path, detail } => {
                write!(f, "store: {} is corrupt: {detail}", path.display())
            }
            StoreError::TooLarge { offset, claimed } => write!(
                f,
                "store: record at byte {offset} claims a {claimed}-byte payload \
                 (over the format cap; treating as corrupt)"
            ),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_splits_corruption_from_io() {
        let io = StoreError::io("append record", io::Error::other("boom"));
        assert!(!io.is_corruption());
        assert!(io.source().is_some());
        assert!(io.to_string().contains("append record"));

        let full = StoreError::io(
            "append record",
            io::Error::new(io::ErrorKind::StorageFull, "enospc"),
        );
        assert!(matches!(full, StoreError::DiskFull { .. }));
        assert!(full.to_string().contains("no space left"));

        let corrupt = StoreError::CorruptRecord {
            offset: 42,
            detail: "payload checksum mismatch".into(),
        };
        assert!(corrupt.is_corruption());
        assert!(corrupt.to_string().contains("byte 42"));
    }

    #[test]
    fn too_large_and_incompatible_report_details() {
        let e = StoreError::TooLarge {
            offset: 8,
            claimed: u64::MAX,
        };
        assert!(e.is_corruption());
        assert!(e.to_string().contains("format cap"));

        let e = StoreError::IncompatibleSegment {
            path: PathBuf::from("seg.nms"),
            detail: "bad magic".into(),
        };
        assert!(e.to_string().contains("seg.nms"));
    }
}
