//! Atomic whole-file replacement: temp file + fsync + rename.
//!
//! The one way to replace a file's contents such that a crash at any
//! instant leaves either the complete old contents or the complete new
//! contents — never a prefix, never an empty file:
//!
//! 1. write the new bytes to a temp file *in the same directory* (a
//!    rename is only atomic within one filesystem),
//! 2. `fsync` the temp file (data must be durable before it can become
//!    the visible version),
//! 3. `rename` over the destination (atomic on POSIX),
//! 4. `fsync` the directory so the rename itself survives a crash.
//!
//! In-place truncate-then-rewrite is banned everywhere in the
//! workspace: a crash between the truncate and the write leaves a
//! half-written (or empty) file, which for a campaign checkpoint means
//! losing every completed cell. All checkpoint and report writes go
//! through [`write_atomic`].

use crate::error::StoreError;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Atomically replaces `dest` with `bytes` (temp + fsync + rename +
/// directory fsync). On failure the destination is untouched — either
/// the old complete contents remain, or (for a fresh path) no file
/// exists; the temp file is cleaned up best-effort.
///
/// # Errors
///
/// [`StoreError::Io`] / [`StoreError::DiskFull`] when any step fails.
pub fn write_atomic(dest: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    match write_atomic_inner(dest, bytes) {
        Ok(()) => {
            nm_telemetry::counter_inc(crate::names::STORE_ATOMIC_WRITES);
            Ok(())
        }
        Err(e) => {
            nm_telemetry::counter_inc(crate::names::STORE_ATOMIC_WRITE_ERRORS);
            Err(e)
        }
    }
}

fn write_atomic_inner(dest: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = dest.parent().filter(|p| !p.as_os_str().is_empty());
    let name = dest
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StoreError::Io {
            context: format!("atomic write to {}", dest.display()),
            source: std::io::Error::other("destination has no file name"),
        })?;
    // Per-process-unique temp name in the same directory. Concurrent
    // writers of the *same* destination within one process are already
    // serialised by the callers (checkpoints go through one campaign
    // loop); the pid guards against a crashed predecessor's leftovers
    // colliding across processes.
    let tmp_name = format!(".{name}.tmp.{}", std::process::id());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };

    let result = write_tmp_then_rename(&tmp, dest, dir, bytes);
    if result.is_err() {
        // Best-effort cleanup; the failure to write is the real story.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn write_tmp_then_rename(
    tmp: &Path,
    dest: &Path,
    dir: Option<&Path>,
    bytes: &[u8],
) -> Result<(), StoreError> {
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(tmp)
        .map_err(|e| StoreError::io(format!("create temp file {}", tmp.display()), e))?;

    #[cfg(feature = "storefault")]
    match crate::storefault::take(crate::storefault::OP_ATOMIC_WRITE) {
        Some(crate::storefault::Fault::TruncateOnWrite) => {
            return Err(StoreError::Io {
                context: format!("write temp file {}", tmp.display()),
                source: std::io::Error::other("storefault: crash before write"),
            });
        }
        Some(crate::storefault::Fault::ShortWrite(n)) => {
            let n = n.min(bytes.len());
            file.write_all(&bytes[..n])
                .and_then(|()| file.sync_all())
                .map_err(|e| StoreError::io(format!("write temp file {}", tmp.display()), e))?;
            return Err(StoreError::Io {
                context: format!("write temp file {}", tmp.display()),
                source: std::io::Error::other("storefault: crash mid-write (torn temp file)"),
            });
        }
        Some(crate::storefault::Fault::BitFlip(offset)) => {
            let mut flipped = bytes.to_vec();
            if !flipped.is_empty() {
                let at = offset % flipped.len();
                flipped[at] ^= 0x01;
            }
            finish_write(&mut file, &flipped, tmp)?;
            return rename_step(tmp, dest, dir);
        }
        Some(crate::storefault::Fault::DiskFull) => {
            return Err(StoreError::DiskFull {
                context: format!("write temp file {}", tmp.display()),
            });
        }
        Some(crate::storefault::Fault::RenameFail) | None => {}
    }

    finish_write(&mut file, bytes, tmp)?;
    rename_step(tmp, dest, dir)
}

fn finish_write(file: &mut File, bytes: &[u8], tmp: &Path) -> Result<(), StoreError> {
    file.write_all(bytes)
        .and_then(|()| file.sync_all())
        .map_err(|e| StoreError::io(format!("write temp file {}", tmp.display()), e))
}

fn rename_step(tmp: &Path, dest: &Path, dir: Option<&Path>) -> Result<(), StoreError> {
    #[cfg(feature = "storefault")]
    if matches!(
        crate::storefault::take(crate::storefault::OP_ATOMIC_RENAME),
        Some(crate::storefault::Fault::RenameFail)
    ) {
        return Err(StoreError::Io {
            context: format!("rename {} -> {}", tmp.display(), dest.display()),
            source: std::io::Error::other("storefault: rename failed"),
        });
    }
    std::fs::rename(tmp, dest).map_err(|e| {
        StoreError::io(format!("rename {} -> {}", tmp.display(), dest.display()), e)
    })?;
    // Make the rename itself durable. Directory fsync is best-effort on
    // platforms where opening a directory for write is not allowed.
    if let Some(d) = dir {
        if let Ok(dirf) = File::open(d) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nm-store-atomic-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
        dir
    }

    #[test]
    fn replaces_contents_and_leaves_no_temp_behind() {
        let dir = tmpdir("replace");
        let dest = dir.join("table.txt");
        write_atomic(&dest, b"first\n").unwrap_or_else(|e| panic!("{e}"));
        write_atomic(&dest, b"second\n").unwrap_or_else(|e| panic!("{e}"));
        let got = std::fs::read(&dest).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(got, b"second\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("{e}"))
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn destination_without_file_name_is_rejected() {
        let err = write_atomic(Path::new("/"), b"x");
        assert!(err.is_err());
    }

    #[test]
    fn failure_leaves_old_contents_intact() {
        let dir = tmpdir("intact");
        let dest = dir.join("table.txt");
        write_atomic(&dest, b"old\n").unwrap_or_else(|e| panic!("{e}"));
        // Force a failure by making the directory read-only is platform
        // sensitive; instead write through a path whose parent vanished.
        let gone = dir.join("missing-subdir").join("table.txt");
        assert!(write_atomic(&gone, b"new\n").is_err());
        let got = std::fs::read(&dest).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(got, b"old\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
