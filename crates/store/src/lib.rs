//! `nm-store` — checksummed, crash-tolerant persistence for nmcache.
//!
//! The workspace's studies are deterministic and content-addressed: the
//! same (spec, technology, grid, engine version) always produces the
//! same bytes. That makes persistence safe *and* simple — a store never
//! needs updates, only appends keyed by a stable content hash. This
//! crate provides the two durability primitives the rest of the
//! workspace builds on:
//!
//! * [`Store`] — an append-only segment file of checksummed records
//!   plus an in-memory index, with the torn-write truncation rule on
//!   open: everything before the first invalid record is recovered,
//!   the damage is quarantined by physical truncation, and the loss is
//!   reported (never silent) via [`OpenReport`] and `store.*` counters.
//! * [`write_atomic`] — whole-file replacement via temp + fsync +
//!   rename, the only legal way to write campaign checkpoints and
//!   result tables (in-place truncate-then-rewrite can lose everything
//!   to a crash between the two steps).
//!
//! Error classes are typed ([`StoreError`]): environmental I/O failures
//! are distinguished from corruption so callers can degrade correctly —
//! the evaluation engine logs, counts, and falls back to memory-only
//! operation; the CLI maps persistence failures to the documented
//! exit code 6 only where persistence was explicitly required.
//!
//! Like the rest of the workspace, this crate has **zero external
//! dependencies**: checksums and content keys are FNV-1a ([`fnv1a_64`],
//! [`KeyHasher`]), chosen for byte-stability across platforms and
//! toolchains, not for adversarial collision resistance.
//!
//! Under the `storefault` cargo feature the crate compiles a
//! deterministic fault-injection plan ([`storefault`]) mirroring
//! `nm_sweep::faultinject`: tests arm truncate-on-write, short-write,
//! bit-flip, rename-failure, and disk-full faults at exact operation
//! indices and assert recovery invariants. Production builds compile
//! none of it.

pub mod atomic;
pub mod error;
pub mod fnv;
pub mod names;
pub mod segment;
pub mod store;
#[cfg(feature = "storefault")]
pub mod storefault;

pub use atomic::write_atomic;
pub use error::StoreError;
pub use fnv::{fnv1a_64, KeyHasher};
pub use store::{OpenReport, Store, SEGMENT_FILE};
