//! The content-addressed segment store.
//!
//! One [`Store`] owns one append-only segment file plus an in-memory
//! key → record index rebuilt by scanning the segment on open. Writes
//! are append-only; a key is immutable once written (content-addressed:
//! equal keys imply equal payloads), so a duplicate `put` is a no-op.
//!
//! Durability posture:
//! * every record is checksummed (header and payload separately);
//! * opening applies the torn-write truncation rule — the file is
//!   physically truncated at the first invalid record, everything
//!   before it is recovered, and the damage is reported through
//!   [`OpenReport`] (and the `store.*` telemetry counters), never
//!   silently ignored;
//! * [`get`](Store::get) re-verifies the payload checksum on every
//!   read, so a record that rots *after* open is an error, not data;
//! * a failed append attempts rollback to the pre-append length; if
//!   rollback itself fails the store wedges (subsequent `put`s fail
//!   fast, `get`s keep working) rather than risk losing later appends
//!   to a mid-file tear.

use crate::error::StoreError;
use crate::segment;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, RwLock};

/// What opening a store found on disk.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpenReport {
    /// `true` when the segment file did not exist and was created.
    pub created: bool,
    /// Valid records recovered from the segment.
    pub salvaged_records: u64,
    /// Best-effort count of records lost to the truncated tail
    /// (attempted appends included; 0 when boundaries were lost).
    pub dropped_records: u64,
    /// Bytes removed by torn-write truncation.
    pub dropped_bytes: u64,
    /// Offset the segment was truncated at, when damage was found.
    pub truncated_at: Option<u64>,
    /// Detail of the first corruption, when damage was found.
    pub corruption: Option<String>,
}

impl OpenReport {
    /// `true` when the open found (and quarantined) damage.
    pub fn salvage_performed(&self) -> bool {
        self.truncated_at.is_some()
    }
}

/// Index entry: where a key's payload lives and its stored checksum.
#[derive(Debug, Clone, Copy)]
struct Slot {
    payload_offset: u64,
    payload_len: u32,
    payload_fnv: u64,
}

/// A content-addressed, checksummed, append-only key → bytes store.
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    file: Mutex<File>,
    index: RwLock<BTreeMap<u128, Slot>>,
    report: OpenReport,
    wedged: AtomicBool,
}

/// The segment file name inside a store directory. A single segment is
/// enough for the current workloads; the name leaves room for a
/// multi-segment layout without a format break.
pub const SEGMENT_FILE: &str = "segment-000.nms";

impl Store {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// A damaged segment is *not* an error: the scan truncates at the
    /// first invalid record, recovers everything before it, and reports
    /// the loss in the returned [`OpenReport`] (also available later
    /// via [`open_report`](Self::open_report)). Only environmental
    /// failures (unreadable directory, I/O errors) and a file that is
    /// not a compatible segment at all are errors.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] for filesystem failures and
    /// [`StoreError::IncompatibleSegment`] when the file exists but was
    /// not written by this format.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| StoreError::io(format!("create store dir {}", dir.display()), e))?;
        let path = dir.join(SEGMENT_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StoreError::io(format!("open segment {}", path.display()), e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StoreError::io(format!("read segment {}", path.display()), e))?;

        let mut report = OpenReport::default();
        let header = segment::file_header();
        if bytes.len() < header.len() {
            // Empty file: fresh store. A non-empty proper prefix of the
            // header is a creation torn mid-write: also fresh, but the
            // tear is reported. Anything else is not our file.
            if !header.starts_with(&bytes) {
                return Err(StoreError::IncompatibleSegment {
                    path,
                    detail: "file header is not a segment header".into(),
                });
            }
            report.created = bytes.is_empty();
            if !bytes.is_empty() {
                report.truncated_at = Some(0);
                report.dropped_bytes = bytes.len() as u64;
                report.corruption = Some("torn segment creation".into());
            }
            file.set_len(0)
                .and_then(|()| file.seek(SeekFrom::Start(0)).map(|_| ()))
                .and_then(|()| file.write_all(&header))
                .and_then(|()| file.sync_data())
                .map_err(|e| StoreError::io(format!("initialize segment {}", path.display()), e))?;
            nm_telemetry::counter_inc(crate::names::STORE_OPENS);
            return Ok(Store {
                path,
                file: Mutex::new(file),
                index: RwLock::new(BTreeMap::new()),
                report,
                wedged: AtomicBool::new(false),
            });
        }
        if bytes[..4] != segment::MAGIC {
            return Err(StoreError::IncompatibleSegment {
                path,
                detail: format!("bad magic {:02x?}", &bytes[..4]),
            });
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != segment::FORMAT_VERSION {
            return Err(StoreError::IncompatibleSegment {
                path,
                detail: format!(
                    "format version {version} (this build reads {})",
                    segment::FORMAT_VERSION
                ),
            });
        }

        let outcome = segment::scan(&bytes);
        report.salvaged_records = outcome.records.len() as u64;
        report.dropped_records = outcome.dropped_records;
        report.truncated_at = outcome.truncate_at;
        report.corruption = outcome.corruption;
        if let Some(at) = outcome.truncate_at {
            report.dropped_bytes = bytes.len() as u64 - at;
            file.set_len(at)
                .and_then(|()| file.sync_data())
                .map_err(|e| {
                    StoreError::io(format!("truncate torn tail of {}", path.display()), e)
                })?;
        }
        let mut index = BTreeMap::new();
        for r in outcome.records {
            // Append order: a later record for the same key wins.
            index.insert(
                r.key,
                Slot {
                    payload_offset: r.payload_offset,
                    payload_len: r.payload_len,
                    payload_fnv: r.payload_fnv,
                },
            );
        }
        nm_telemetry::counter_inc(crate::names::STORE_OPENS);
        nm_telemetry::counter_add(
            crate::names::STORE_SALVAGED_RECORDS,
            report.salvaged_records,
        );
        nm_telemetry::counter_add(crate::names::STORE_DROPPED_RECORDS, report.dropped_records);
        nm_telemetry::counter_add(crate::names::STORE_DROPPED_BYTES, report.dropped_bytes);
        Ok(Store {
            path,
            file: Mutex::new(file),
            index: RwLock::new(index),
            report,
            wedged: AtomicBool::new(false),
        })
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What the open-time scan found.
    pub fn open_report(&self) -> &OpenReport {
        &self.report
    }

    /// Number of distinct keys currently readable.
    pub fn len(&self) -> usize {
        self.index
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// `true` when no keys are readable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when a key is present (without reading its payload).
    pub fn contains(&self, key: u128) -> bool {
        self.index
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .contains_key(&key)
    }

    /// `true` when an earlier append failure wedged the store (reads
    /// still work; writes fail fast).
    pub fn is_wedged(&self) -> bool {
        self.wedged.load(Ordering::Relaxed)
    }

    /// Reads the payload stored under `key`, re-verifying its checksum.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the segment cannot be read and
    /// [`StoreError::CorruptRecord`] when the stored bytes no longer
    /// match their checksum (post-open rot) — a checksum-failing record
    /// is never returned as data.
    pub fn get(&self, key: u128) -> Result<Option<Vec<u8>>, StoreError> {
        let slot = {
            let index = self
                .index
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            match index.get(&key) {
                Some(slot) => *slot,
                None => {
                    nm_telemetry::counter_inc(crate::names::STORE_MISSES);
                    return Ok(None);
                }
            }
        };
        let mut payload = vec![0u8; slot.payload_len as usize];
        {
            let mut file = self
                .file
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            file.seek(SeekFrom::Start(slot.payload_offset))
                .and_then(|_| file.read_exact(&mut payload))
                .map_err(|e| {
                    StoreError::io(format!("read record from {}", self.path.display()), e)
                })?;
        }
        if crate::fnv::fnv1a_64(&payload) != slot.payload_fnv {
            nm_telemetry::counter_inc(crate::names::STORE_CORRUPT_RECORDS);
            return Err(StoreError::CorruptRecord {
                offset: slot.payload_offset - segment::RECORD_HEADER_LEN,
                detail: "payload checksum mismatch on read-back".into(),
            });
        }
        nm_telemetry::counter_inc(crate::names::STORE_HITS);
        Ok(Some(payload))
    }

    /// Appends `payload` under `key`. Returns `Ok(false)` without
    /// writing when the key is already present (content-addressed:
    /// equal keys imply equal payloads).
    ///
    /// On an append failure the store rolls the segment back to its
    /// pre-append length; if rollback fails too, the store wedges —
    /// later `put`s fail fast so a torn mid-file record can never be
    /// followed by appends that open-time truncation would drop.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::DiskFull`] when the append
    /// cannot complete.
    pub fn put(&self, key: u128, payload: &[u8]) -> Result<bool, StoreError> {
        if u64::try_from(payload.len()).unwrap_or(u64::MAX) > segment::MAX_PAYLOAD {
            return Err(StoreError::TooLarge {
                offset: 0,
                claimed: payload.len() as u64,
            });
        }
        if self.is_wedged() {
            return Err(StoreError::Io {
                context: format!("append to {}", self.path.display()),
                source: std::io::Error::other("store wedged by an earlier torn append"),
            });
        }
        if self.contains(key) {
            nm_telemetry::counter_inc(crate::names::STORE_PUTS_SKIPPED);
            return Ok(false);
        }
        let record = segment::encode_record(key, payload);
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let start = file
            .seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io(format!("seek {}", self.path.display()), e))?;
        match self.write_record(&mut file, &record) {
            Ok(()) => {
                let mut index = self
                    .index
                    .write()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                index.insert(
                    key,
                    Slot {
                        payload_offset: start + segment::RECORD_HEADER_LEN,
                        payload_len: payload.len() as u32,
                        payload_fnv: crate::fnv::fnv1a_64(payload),
                    },
                );
                nm_telemetry::counter_inc(crate::names::STORE_PUTS);
                Ok(true)
            }
            Err(e) => {
                nm_telemetry::counter_inc(crate::names::STORE_PUT_ERRORS);
                // Quarantine the possibly-torn tail: roll back, or wedge
                // if even that fails. A store already wedged mid-write
                // (simulated crash) keeps its torn bytes — a real crash
                // could not have rolled them back either; reopen-time
                // salvage is the recovery path.
                if !self.is_wedged() && file.set_len(start).and_then(|()| file.sync_data()).is_err()
                {
                    self.wedged.store(true, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// The append inner step, with `storefault` injection when armed.
    fn write_record(&self, file: &mut File, record: &[u8]) -> Result<(), StoreError> {
        let context = || format!("append record to {}", self.path.display());
        #[cfg(feature = "storefault")]
        match crate::storefault::take(crate::storefault::OP_APPEND) {
            Some(crate::storefault::Fault::TruncateOnWrite) => {
                return Err(StoreError::Io {
                    context: context(),
                    source: std::io::Error::other("storefault: crash before write"),
                });
            }
            Some(crate::storefault::Fault::ShortWrite(n)) => {
                let n = n.min(record.len());
                file.write_all(&record[..n])
                    .and_then(|()| file.sync_data())
                    .map_err(|e| StoreError::io(context(), e))?;
                // Simulated crash mid-append: the torn bytes stay on
                // disk and rollback is suppressed by wedging first.
                self.wedged.store(true, Ordering::Relaxed);
                return Err(StoreError::Io {
                    context: context(),
                    source: std::io::Error::other("storefault: crash mid-write (torn record)"),
                });
            }
            Some(crate::storefault::Fault::BitFlip(offset)) => {
                let mut flipped = record.to_vec();
                let at = offset % flipped.len();
                flipped[at] ^= 0x01;
                return file
                    .write_all(&flipped)
                    .map_err(|e| StoreError::io(context(), e));
            }
            Some(crate::storefault::Fault::DiskFull) => {
                return Err(StoreError::DiskFull { context: context() });
            }
            Some(crate::storefault::Fault::RenameFail) | None => {}
        }
        file.write_all(record)
            .map_err(|e| StoreError::io(context(), e))
    }

    /// Flushes the segment to stable storage.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when `fsync` fails.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.file
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .sync_data()
            .map_err(|e| StoreError::io(format!("sync {}", self.path.display()), e))
    }
}
