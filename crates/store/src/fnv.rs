//! FNV-1a hashing — the store's checksum and content-key primitive.
//!
//! FNV-1a is not cryptographic; it is used here the way the rest of the
//! workspace uses it (the `nm-analyze` allowlist fingerprints): a fast,
//! dependency-free, byte-stable hash whose value never changes across
//! platforms or compiler versions. Record checksums guard against torn
//! writes and bit rot, not adversaries; content keys are 128 bits wide
//! so accidental collisions stay negligible even for million-record
//! campaign stores.

/// FNV-1a 64 offset basis.
const OFFSET_64: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const PRIME_64: u64 = 0x0000_0100_0000_01b3;
/// FNV-1a 128 offset basis.
const OFFSET_128: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128 prime.
const PRIME_128: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// FNV-1a 64 of one byte slice — the per-record checksum.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET_64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME_64);
    }
    h
}

/// A streaming FNV-1a 128 hasher — the content-key builder. Keys are
/// assembled from heterogeneous material (strings, raw f64 bit
/// patterns, counters), so the hasher exposes typed `push_*` helpers
/// that all feed one canonical byte stream.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    state: u128,
}

impl KeyHasher {
    /// A fresh hasher at the FNV-1a 128 offset basis.
    pub fn new() -> Self {
        KeyHasher { state: OFFSET_128 }
    }

    /// Feeds raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(PRIME_128);
        }
    }

    /// Feeds a string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn push_str(&mut self, s: &str) {
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes());
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    /// Feeds an `f64` by exact bit pattern. Signed zeros are *not*
    /// collapsed: a key must distinguish every bit-distinct input the
    /// bit-exact codec round-trips.
    pub fn push_f64_bits(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// The 128-bit key accumulated so far.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_hasher_is_order_and_boundary_sensitive() {
        let mut a = KeyHasher::new();
        a.push_str("ab");
        a.push_str("c");
        let mut b = KeyHasher::new();
        b.push_str("a");
        b.push_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = KeyHasher::new();
        c.push_u64(1);
        c.push_u64(2);
        let mut d = KeyHasher::new();
        d.push_u64(2);
        d.push_u64(1);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn f64_keys_are_bit_exact() {
        let mut pos = KeyHasher::new();
        pos.push_f64_bits(0.0);
        let mut neg = KeyHasher::new();
        neg.push_f64_bits(-0.0);
        // The codec round-trips bit patterns, so the key must tell the
        // signed zeros apart even though they compare ==.
        assert_ne!(pos.finish(), neg.finish());
    }

    #[test]
    fn empty_hasher_is_the_offset_basis() {
        assert_eq!(KeyHasher::new().finish(), OFFSET_128);
        assert_eq!(KeyHasher::default().finish(), OFFSET_128);
    }
}
