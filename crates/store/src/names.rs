//! Telemetry names emitted by the persistence layer.
//!
//! Every fixed metric name this crate records lives here as a `pub
//! const`, and each one must also appear in the workspace-root
//! `telemetry_names.txt` manifest — the D6 static-analysis rule
//! (`nmcache analyze`) checks both directions, so a typo'd literal can
//! never silently fork a time series.

/// Counter: store opens (fresh or existing segment).
pub const STORE_OPENS: &str = "store.opens";
/// Counter: `get` calls that returned a checksum-verified payload.
pub const STORE_HITS: &str = "store.hits";
/// Counter: `get` calls for keys not in the store.
pub const STORE_MISSES: &str = "store.misses";
/// Counter: records appended.
pub const STORE_PUTS: &str = "store.puts";
/// Counter: `put` calls skipped because the key was already present.
pub const STORE_PUTS_SKIPPED: &str = "store.puts_skipped";
/// Counter: `put` calls that failed with an I/O or disk-full error.
pub const STORE_PUT_ERRORS: &str = "store.put_errors";
/// Counter: records that failed checksum re-verification on read-back.
pub const STORE_CORRUPT_RECORDS: &str = "store.corrupt_records";
/// Counter: valid records recovered by open-time salvage scans.
pub const STORE_SALVAGED_RECORDS: &str = "store.salvaged_records";
/// Counter: records lost to torn-write truncation (best-effort census).
pub const STORE_DROPPED_RECORDS: &str = "store.dropped_records";
/// Counter: bytes removed by torn-write truncation.
pub const STORE_DROPPED_BYTES: &str = "store.dropped_bytes";
/// Counter: atomic whole-file writes completed (temp + fsync + rename).
pub const STORE_ATOMIC_WRITES: &str = "store.atomic_writes";
/// Counter: atomic whole-file writes that failed (any step).
pub const STORE_ATOMIC_WRITE_ERRORS: &str = "store.atomic_write_errors";
