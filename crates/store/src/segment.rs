//! The on-disk record grammar and the open-time salvage scan.
//!
//! A segment file is an 8-byte file header followed by zero or more
//! records, each fully checksummed:
//!
//! ```text
//! file header:  magic "NMS1" (4) | format version u32 LE (4)
//! record:       key u128 LE (16) | payload_len u32 LE (4)
//!               | payload FNV-1a 64 LE (8)
//!               | header FNV-1a 64 LE (8, over the preceding 28 bytes)
//!               | payload bytes
//! ```
//!
//! The grammar is append-only and self-validating: a reader needs no
//! index to walk it, and any torn or flipped byte is caught by one of
//! the two checksums. The open-time scan enforces the torn-write
//! truncation rule — everything before the first invalid record is
//! recovered, the invalid record and everything after it is dropped
//! (with a best-effort count of how many structurally valid records the
//! dropped tail contained, so the loss is reported, not silent).

use crate::fnv::fnv1a_64;

/// Segment file magic.
pub const MAGIC: [u8; 4] = *b"NMS1";
/// Segment format version. Bump on any change to the record grammar.
pub const FORMAT_VERSION: u32 = 1;
/// File header length in bytes.
pub const FILE_HEADER_LEN: u64 = 8;
/// Record header length in bytes.
pub const RECORD_HEADER_LEN: u64 = 36;
/// Payload size cap. A flipped bit in a length field must not provoke a
/// multi-gigabyte allocation; no legitimate surface or front payload
/// comes near this.
pub const MAX_PAYLOAD: u64 = 64 << 20;

/// The segment file header bytes.
pub fn file_header() -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..4].copy_from_slice(&MAGIC);
    h[4..].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h
}

/// Encodes one record (header + payload) ready to append.
pub fn encode_record(key: u128, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a_64(payload).to_le_bytes());
    let header_fnv = fnv1a_64(&out[..28]);
    out.extend_from_slice(&header_fnv.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One valid record located by a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordRef {
    /// The record's content key.
    pub key: u128,
    /// Byte offset of the payload within the segment file.
    pub payload_offset: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// The payload's stored FNV-1a 64 checksum.
    pub payload_fnv: u64,
}

/// Outcome of scanning a segment's record region.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScanOutcome {
    /// Valid records, in append order (later duplicates of a key win).
    pub records: Vec<RecordRef>,
    /// Where the file must be truncated to quarantine damage, if any.
    pub truncate_at: Option<u64>,
    /// Human-readable detail of the first corruption found.
    pub corruption: Option<String>,
    /// Best-effort count of structurally valid records inside the
    /// dropped tail (0 when record boundaries were lost).
    pub dropped_records: u64,
}

/// Reads the little-endian `u32`/`u64`/`u128` at `offset`. The callers
/// bound-check before slicing, so these cannot panic in practice; the
/// `unwrap_or_default` keeps them panic-free by construction.
fn read_u32(bytes: &[u8], offset: usize) -> u32 {
    bytes
        .get(offset..offset + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .unwrap_or_default()
}

fn read_u64(bytes: &[u8], offset: usize) -> u64 {
    bytes
        .get(offset..offset + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .unwrap_or_default()
}

fn read_u128(bytes: &[u8], offset: usize) -> u128 {
    bytes
        .get(offset..offset + 16)
        .and_then(|s| s.try_into().ok())
        .map(u128::from_le_bytes)
        .unwrap_or_default()
}

/// Validates the record starting at `offset` (relative to the start of
/// `bytes`, which is the whole file). Returns the record and the offset
/// just past it, or a description of why it is invalid.
fn parse_record(bytes: &[u8], offset: u64) -> Result<(RecordRef, u64), String> {
    let remaining = bytes.len() as u64 - offset;
    if remaining < RECORD_HEADER_LEN {
        return Err(format!(
            "torn record header: {remaining} of {RECORD_HEADER_LEN} bytes"
        ));
    }
    let at = offset as usize;
    let stored_header_fnv = read_u64(bytes, at + 28);
    let computed_header_fnv = fnv1a_64(&bytes[at..at + 28]);
    if stored_header_fnv != computed_header_fnv {
        return Err("record header checksum mismatch".to_owned());
    }
    let key = read_u128(bytes, at);
    let payload_len = read_u32(bytes, at + 16);
    let payload_fnv = read_u64(bytes, at + 20);
    if u64::from(payload_len) > MAX_PAYLOAD {
        return Err(format!(
            "payload length {payload_len} exceeds the {MAX_PAYLOAD}-byte cap"
        ));
    }
    let payload_start = offset + RECORD_HEADER_LEN;
    let payload_end = payload_start + u64::from(payload_len);
    if payload_end > bytes.len() as u64 {
        return Err(format!(
            "torn payload: {} of {payload_len} bytes",
            bytes.len() as u64 - payload_start
        ));
    }
    let computed_payload_fnv = fnv1a_64(&bytes[payload_start as usize..payload_end as usize]);
    if computed_payload_fnv != payload_fnv {
        return Err("record payload checksum mismatch".to_owned());
    }
    Ok((
        RecordRef {
            key,
            payload_offset: payload_start,
            payload_len,
            payload_fnv,
        },
        payload_end,
    ))
}

/// Scans the record region of a segment (everything past the file
/// header), applying the torn-write truncation rule.
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut out = ScanOutcome::default();
    let mut offset = FILE_HEADER_LEN;
    while offset < bytes.len() as u64 {
        match parse_record(bytes, offset) {
            Ok((record, next)) => {
                out.records.push(record);
                offset = next;
            }
            Err(detail) => {
                out.truncate_at = Some(offset);
                out.corruption = Some(format!("record at byte {offset}: {detail}"));
                out.dropped_records = count_droppable(bytes, offset);
                break;
            }
        }
    }
    out
}

/// Best-effort census of the dropped tail: how many structurally valid
/// records sit past the first corrupt one. Recovery stops at the first
/// corruption (the truncation rule — later records cannot be trusted to
/// be complete without it), but the loss should be *reported*. When the
/// corrupt record's own header survives, its length field locates the
/// next boundary; otherwise boundaries are lost and the count is 0.
fn count_droppable(bytes: &[u8], first_bad: u64) -> u64 {
    // The bad record's header checksum must hold for its length field to
    // be trustworthy; a torn/garbage header means no resync is possible.
    let remaining = bytes.len() as u64 - first_bad;
    if remaining < RECORD_HEADER_LEN {
        return 0;
    }
    let at = first_bad as usize;
    if read_u64(bytes, at + 28) != fnv1a_64(&bytes[at..at + 28]) {
        return 0;
    }
    let skip = u64::from(read_u32(bytes, at + 16));
    if skip > MAX_PAYLOAD {
        return 0;
    }
    let mut offset = first_bad + RECORD_HEADER_LEN + skip;
    let mut count = 1; // the bit-flipped record itself was a record
    while offset < bytes.len() as u64 {
        match parse_record(bytes, offset) {
            Ok((_, next)) => {
                count += 1;
                offset = next;
            }
            Err(_) => break,
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment_with(records: &[(u128, &[u8])]) -> Vec<u8> {
        let mut bytes = file_header().to_vec();
        for &(key, payload) in records {
            bytes.extend_from_slice(&encode_record(key, payload));
        }
        bytes
    }

    #[test]
    fn clean_segment_scans_fully() {
        let bytes = segment_with(&[(1, b"alpha"), (2, b""), (3, &[0xff; 100])]);
        let out = scan(&bytes);
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.truncate_at, None);
        assert_eq!(out.dropped_records, 0);
        assert_eq!(out.records[0].key, 1);
        assert_eq!(out.records[1].payload_len, 0);
        let r = out.records[2];
        assert_eq!(
            &bytes[r.payload_offset as usize..][..r.payload_len as usize],
            &[0xff; 100]
        );
    }

    #[test]
    fn torn_tail_is_truncated_at_the_record_start() {
        let mut bytes = segment_with(&[(1, b"keep me")]);
        let keep = bytes.len() as u64;
        let torn = encode_record(2, b"lost to a crash");
        bytes.extend_from_slice(&torn[..torn.len() - 5]); // short write
        let out = scan(&bytes);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.truncate_at, Some(keep));
        let detail = out.corruption.clone().unwrap_or_default();
        assert!(detail.contains("torn payload"), "{detail}");
    }

    #[test]
    fn torn_header_is_truncated_too() {
        let mut bytes = segment_with(&[(1, b"keep")]);
        let keep = bytes.len() as u64;
        bytes.extend_from_slice(&encode_record(2, b"x")[..10]);
        let out = scan(&bytes);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.truncate_at, Some(keep));
        assert_eq!(out.dropped_records, 0); // boundaries lost
    }

    #[test]
    fn bit_flip_quarantines_and_counts_the_dropped_tail() {
        let bytes = segment_with(&[(1, b"good"), (2, b"flipped"), (3, b"after")]);
        let mut corrupt = bytes.clone();
        // Flip one payload bit of record 2: its header stays valid, so
        // the census can resync and count both dropped records.
        let second_payload = FILE_HEADER_LEN as usize
            + (RECORD_HEADER_LEN as usize + 4)
            + RECORD_HEADER_LEN as usize;
        corrupt[second_payload] ^= 0x01;
        let out = scan(&corrupt);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].key, 1);
        assert!(out.truncate_at.is_some());
        assert_eq!(out.dropped_records, 2);
        let detail = out.corruption.clone().unwrap_or_default();
        assert!(detail.contains("payload checksum"), "{detail}");
    }

    #[test]
    fn insane_length_field_is_capped_not_allocated() {
        let mut bytes = segment_with(&[]);
        let mut rec = encode_record(9, b"tiny");
        // Forge a huge length and then fix up the header checksum so
        // only the cap check can reject it.
        rec[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let fixed = fnv1a_64(&rec[..28]);
        rec[28..36].copy_from_slice(&fixed.to_le_bytes());
        bytes.extend_from_slice(&rec);
        let out = scan(&bytes);
        assert_eq!(out.records.len(), 0);
        assert_eq!(out.truncate_at, Some(FILE_HEADER_LEN));
        let detail = out.corruption.clone().unwrap_or_default();
        assert!(detail.contains("cap"), "{detail}");
    }

    #[test]
    fn empty_record_region_is_clean() {
        let out = scan(&file_header());
        assert!(out.records.is_empty());
        assert_eq!(out.truncate_at, None);
    }
}
