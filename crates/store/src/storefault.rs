//! Deterministic storage-fault injection, mirroring
//! `nm_sweep::faultinject`.
//!
//! Enabled only under the `storefault` cargo feature; production builds
//! compile none of this. Faults are *armed* ahead of a run against an
//! operation label (`"append"`, `"atomic.write"`, `"atomic.rename"`)
//! and a zero-based operation index, and *consumed* as the store
//! reaches the matching operation — each armed fault fires a bounded
//! number of times and then disarms. No wall-clock randomness anywhere.
//!
//! The plan is process-global: tests that arm faults must serialise
//! against each other (e.g. with a shared mutex) and [`clear`] the plan
//! when done — operation counters reset with it.

use std::sync::Mutex;

/// Operation label: a record append to a segment file.
pub const OP_APPEND: &str = "append";
/// Operation label: the temp-file write step of an atomic write.
pub const OP_ATOMIC_WRITE: &str = "atomic.write";
/// Operation label: the rename step of an atomic write.
pub const OP_ATOMIC_RENAME: &str = "atomic.rename";

/// A storage fault to inject at one `(operation, index)` coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The write fails before a single byte lands (crash-before-write).
    TruncateOnWrite,
    /// Only the first `n` bytes of the buffer land, then the write
    /// fails (crash mid-write — the canonical torn record).
    ShortWrite(usize),
    /// Bit 0 of the byte at `offset % len` is flipped before the buffer
    /// is written; the write itself "succeeds" (silent corruption,
    /// caught later by checksums).
    BitFlip(usize),
    /// The rename step of an atomic write fails; the temp file is left
    /// behind and the destination is untouched.
    RenameFail,
    /// The device reports no space; nothing is written.
    DiskFull,
}

#[derive(Debug)]
struct Armed {
    op: &'static str,
    index: u64,
    fault: Fault,
    remaining: usize,
}

#[derive(Debug, Default)]
struct Plan {
    armed: Vec<Armed>,
    /// Per-operation sequence counters, advanced on every consume poll.
    counters: Vec<(&'static str, u64)>,
}

static PLAN: Mutex<Plan> = Mutex::new(Plan {
    armed: Vec::new(),
    counters: Vec::new(),
});

fn plan() -> std::sync::MutexGuard<'static, Plan> {
    PLAN.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Arms `fault` for the `index`-th future operation labelled `op`
/// (indices count from the most recent [`clear`]). The fault fires on
/// the next `times` matching operations at that index, then disarms.
pub fn arm(op: &'static str, index: u64, fault: Fault, times: usize) {
    if times == 0 {
        return;
    }
    plan().armed.push(Armed {
        op,
        index,
        fault,
        remaining: times,
    });
}

/// Disarms every fault and resets all operation counters.
pub fn clear() {
    let mut p = plan();
    p.armed.clear();
    p.counters.clear();
}

/// Number of armed (not yet fully fired) faults.
pub fn armed() -> usize {
    plan().armed.len()
}

/// Called by the store at each fault-injectable operation: advances the
/// operation counter for `op` and returns the armed fault for this
/// coordinate, if any.
pub(crate) fn take(op: &'static str) -> Option<Fault> {
    let mut p = plan();
    let seq = match p.counters.iter_mut().find(|(o, _)| *o == op) {
        Some((_, c)) => {
            let seq = *c;
            *c += 1;
            seq
        }
        None => {
            p.counters.push((op, 1));
            0
        }
    };
    let pos = p.armed.iter().position(|a| a.op == op && a.index == seq)?;
    let fault = p.armed[pos].fault;
    p.armed[pos].remaining -= 1;
    if p.armed[pos].remaining == 0 {
        p.armed.remove(pos);
    }
    Some(fault)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The plan is process-global; tests serialise on this.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        clear();
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn fires_at_the_indexed_operation_then_disarms() {
        let _g = guard();
        clear();
        arm(OP_APPEND, 2, Fault::DiskFull, 1);
        assert_eq!(take(OP_APPEND), None); // op 0
        assert_eq!(take(OP_APPEND), None); // op 1
        assert_eq!(take(OP_APPEND), Some(Fault::DiskFull)); // op 2
        assert_eq!(take(OP_APPEND), None);
        assert_eq!(armed(), 0);
        clear();
    }

    #[test]
    fn labels_are_independent_and_counters_reset_on_clear() {
        let _g = guard();
        clear();
        arm(OP_ATOMIC_RENAME, 0, Fault::RenameFail, 1);
        assert_eq!(take(OP_APPEND), None);
        assert_eq!(take(OP_ATOMIC_WRITE), None);
        assert_eq!(take(OP_ATOMIC_RENAME), Some(Fault::RenameFail));
        clear();
        arm(OP_APPEND, 0, Fault::ShortWrite(3), 2);
        assert_eq!(take(OP_APPEND), Some(Fault::ShortWrite(3)));
        // times=2 at a fixed index: only one op ever has that index, so
        // the second charge stays armed (documented: bounded by times).
        assert_eq!(armed(), 1);
        clear();
        assert_eq!(armed(), 0);
    }

    #[test]
    fn zero_times_is_a_no_op() {
        let _g = guard();
        clear();
        arm(OP_APPEND, 0, Fault::BitFlip(7), 0);
        assert_eq!(armed(), 0);
        assert_eq!(take(OP_APPEND), None);
        clear();
    }
}
