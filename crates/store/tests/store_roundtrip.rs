//! Round-trip and reopen properties of the segment store.
//!
//! The contracts under test:
//! * whatever bytes go in come back bit-identical, across reopen;
//! * a reopened store never returns a checksum-failing record — torn
//!   tails and flipped bits are quarantined by truncation, with the
//!   loss reported through `OpenReport`;
//! * duplicate keys are append-only no-ops (content-addressed).

use nm_store::{Store, StoreError, SEGMENT_FILE};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nm-store-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path) -> Store {
    Store::open(dir).unwrap_or_else(|e| panic!("open {}: {e}", dir.display()))
}

#[test]
fn put_get_survives_reopen_bit_identical() {
    let dir = tmpdir("reopen");
    let payloads: Vec<(u128, Vec<u8>)> = (0u128..20)
        .map(|k| {
            // Include f64 bit patterns with signed zeros and NaN bits:
            // the store must hand back *bytes*, not parsed floats.
            let mut p = Vec::new();
            for f in [
                0.0f64,
                -0.0,
                f64::from_bits(k as u64),
                1.0 / (k as f64 + 1.0),
            ] {
                p.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            (k * k + 1, p)
        })
        .collect();
    {
        let store = open(&dir);
        assert!(store.open_report().created);
        for (k, p) in &payloads {
            assert!(store.put(*k, p).unwrap_or_else(|e| panic!("{e}")));
        }
        store.sync().unwrap_or_else(|e| panic!("{e}"));
    }
    let store = open(&dir);
    assert!(!store.open_report().created);
    assert_eq!(store.open_report().salvaged_records, payloads.len() as u64);
    assert_eq!(store.open_report().truncated_at, None);
    for (k, p) in &payloads {
        let got = store.get(*k).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(got.as_deref(), Some(p.as_slice()));
    }
    assert_eq!(
        store.get(0xdead_beef).unwrap_or_else(|e| panic!("{e}")),
        None
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_put_is_a_no_op_and_grows_nothing() {
    let dir = tmpdir("dup");
    let store = open(&dir);
    assert!(store.put(7, b"payload").unwrap_or_else(|e| panic!("{e}")));
    let len_after_first = std::fs::metadata(store.path())
        .unwrap_or_else(|e| panic!("{e}"))
        .len();
    // Content-addressed: same key means same content; the second put
    // must not append a byte.
    assert!(!store.put(7, b"payload").unwrap_or_else(|e| panic!("{e}")));
    let len_after_second = std::fs::metadata(store.path())
        .unwrap_or_else(|e| panic!("{e}"))
        .len();
    assert_eq!(len_after_first, len_after_second);
    assert_eq!(store.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_quarantined_on_reopen() {
    let dir = tmpdir("torn");
    let seg;
    {
        let store = open(&dir);
        store
            .put(1, b"kept record")
            .unwrap_or_else(|e| panic!("{e}"));
        store
            .put(2, b"torn record")
            .unwrap_or_else(|e| panic!("{e}"));
        seg = store.path().to_path_buf();
    }
    // Tear the last record: drop its final 3 bytes, as a crash mid-append
    // would.
    let bytes = std::fs::read(&seg).unwrap_or_else(|e| panic!("{e}"));
    std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap_or_else(|e| panic!("{e}"));

    let store = open(&dir);
    let report = store.open_report();
    assert_eq!(report.salvaged_records, 1);
    assert!(report.salvage_performed());
    assert!(report.dropped_bytes > 0);
    assert!(report.corruption.is_some());
    assert_eq!(
        store.get(1).unwrap_or_else(|e| panic!("{e}")).as_deref(),
        Some(b"kept record".as_slice())
    );
    assert_eq!(store.get(2).unwrap_or_else(|e| panic!("{e}")), None);
    // The file was physically truncated: writes append cleanly after the
    // quarantine point and survive another reopen.
    assert!(store
        .put(3, b"after salvage")
        .unwrap_or_else(|e| panic!("{e}")));
    drop(store);
    let store = open(&dir);
    assert_eq!(store.open_report().truncated_at, None);
    assert_eq!(store.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn alien_file_is_rejected_as_incompatible() {
    let dir = tmpdir("alien");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("{e}"));
    std::fs::write(dir.join(SEGMENT_FILE), b"not a segment at all")
        .unwrap_or_else(|e| panic!("{e}"));
    match Store::open(&dir) {
        Err(StoreError::IncompatibleSegment { .. }) => {}
        other => panic!("expected IncompatibleSegment, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary payloads round-trip bit-identical through write +
    /// reopen, and corrupting any single byte of the segment never
    /// yields a wrong payload — every key either returns its exact
    /// original bytes, is absent (quarantined), or `get` reports
    /// corruption; silent damage is impossible.
    #[test]
    fn any_single_byte_corruption_is_caught(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..8),
        corrupt_at in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "nm-store-prop-{}-{corrupt_at}-{flip}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = Store::open(&dir).unwrap_or_else(|e| panic!("{e}"));
            for (i, p) in payloads.iter().enumerate() {
                store.put(i as u128 + 1, p).unwrap_or_else(|e| panic!("{e}"));
            }
        }
        let seg = dir.join(SEGMENT_FILE);
        let mut bytes = std::fs::read(&seg).unwrap_or_else(|e| panic!("{e}"));
        // Corrupt one byte past the file header (header damage is the
        // IncompatibleSegment path, tested separately).
        let at = 8 + (corrupt_at as usize % (bytes.len() - 8));
        bytes[at] ^= flip;
        std::fs::write(&seg, &bytes).unwrap_or_else(|e| panic!("{e}"));

        let store = Store::open(&dir).unwrap_or_else(|e| panic!("{e}"));
        let report = store.open_report().clone();
        prop_assert!(report.salvage_performed(), "a flipped byte must be detected");
        prop_assert!(report.salvaged_records < payloads.len() as u64 + 1);
        for (i, p) in payloads.iter().enumerate() {
            match store.get(i as u128 + 1) {
                Ok(Some(got)) => prop_assert_eq!(&got, p, "key {} must be bit-identical", i + 1),
                Ok(None) => {}                       // quarantined: reported, not wrong
                Err(e) => prop_assert!(e.is_corruption(), "unexpected error class: {e}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
