//! Fault-injected durability suite (`--features storefault`).
//!
//! Each test arms a deterministic storage fault at an exact operation
//! index, drives the store into it, and asserts the recovery contract:
//! failed writes never corrupt earlier data, torn appends are
//! quarantined on reopen, atomic writes leave either the complete old
//! file or the complete new file, and silent bit flips are caught by
//! checksums at the first read.

#![cfg(feature = "storefault")]

use nm_store::storefault::{self, Fault, OP_APPEND, OP_ATOMIC_RENAME, OP_ATOMIC_WRITE};
use nm_store::{write_atomic, Store, StoreError};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// The fault plan is process-global; every test serialises on this.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

fn armed(tag: &str) -> (MutexGuard<'static, ()>, PathBuf) {
    let guard = PLAN_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    storefault::clear();
    let dir = std::env::temp_dir().join(format!("nm-storefault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (guard, dir)
}

fn open(dir: &PathBuf) -> Store {
    Store::open(dir).unwrap_or_else(|e| panic!("open {}: {e}", dir.display()))
}

#[test]
fn crash_before_append_loses_only_the_new_record() {
    let (_g, dir) = armed("truncate-on-write");
    let store = open(&dir);
    store.put(1, b"safe").unwrap_or_else(|e| panic!("{e}"));
    storefault::arm(OP_APPEND, 1, Fault::TruncateOnWrite, 1);
    assert!(store.put(2, b"never lands").is_err());
    storefault::clear();
    // Nothing was written: the store is not wedged and key 1 is intact.
    assert!(!store.is_wedged());
    assert_eq!(
        store.get(1).unwrap_or_else(|e| panic!("{e}")).as_deref(),
        Some(b"safe".as_slice())
    );
    assert_eq!(store.get(2).unwrap_or_else(|e| panic!("{e}")), None);
    // And the failed key can be retried successfully.
    assert!(store.put(2, b"lands now").unwrap_or_else(|e| panic!("{e}")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn short_write_wedges_the_store_and_reopen_salvages() {
    let (_g, dir) = armed("short-write");
    {
        let store = open(&dir);
        store
            .put(1, b"before the tear")
            .unwrap_or_else(|e| panic!("{e}"));
        storefault::arm(OP_APPEND, 1, Fault::ShortWrite(10), 1);
        assert!(store.put(2, b"torn mid-append").is_err());
        storefault::clear();
        // The torn bytes are on disk; the store must refuse further
        // appends (they would sit past a tear and be truncated away on
        // the next open) while reads keep working.
        assert!(store.is_wedged());
        assert!(store.put(3, b"must fail fast").is_err());
        assert_eq!(
            store.get(1).unwrap_or_else(|e| panic!("{e}")).as_deref(),
            Some(b"before the tear".as_slice())
        );
    }
    // Reopen: the tear is quarantined, record 1 salvaged, writes work.
    let store = open(&dir);
    let report = store.open_report();
    assert!(report.salvage_performed());
    assert_eq!(report.salvaged_records, 1);
    assert!(!store.is_wedged());
    assert!(store
        .put(2, b"after recovery")
        .unwrap_or_else(|e| panic!("{e}")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_is_caught_on_reopen_not_served() {
    let (_g, dir) = armed("bit-flip");
    {
        let store = open(&dir);
        store.put(1, b"clean").unwrap_or_else(|e| panic!("{e}"));
        storefault::arm(OP_APPEND, 1, Fault::BitFlip(40), 1);
        // The write "succeeds" — silent corruption.
        assert!(store
            .put(2, b"silently flipped")
            .unwrap_or_else(|e| panic!("{e}")));
        storefault::clear();
    }
    let store = open(&dir);
    let report = store.open_report();
    assert!(report.salvage_performed(), "flip must be detected by scan");
    assert_eq!(report.salvaged_records, 1);
    assert_eq!(report.dropped_records, 1);
    assert_eq!(store.get(2).unwrap_or_else(|e| panic!("{e}")), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_full_append_is_a_clean_typed_error() {
    let (_g, dir) = armed("disk-full");
    let store = open(&dir);
    storefault::arm(OP_APPEND, 0, Fault::DiskFull, 1);
    match store.put(1, b"no space") {
        Err(StoreError::DiskFull { .. }) => {}
        other => panic!("expected DiskFull, got {other:?}"),
    }
    storefault::clear();
    assert!(!store.is_wedged());
    assert!(store.put(1, b"no space").unwrap_or_else(|e| panic!("{e}")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn atomic_write_crash_leaves_old_contents_complete() {
    let (_g, dir) = armed("atomic-crash");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("{e}"));
    let dest = dir.join("checkpoint.nmck");
    write_atomic(&dest, b"generation 1, complete\n").unwrap_or_else(|e| panic!("{e}"));
    storefault::clear(); // reset op counters so each arm below targets index 0

    for fault in [
        Fault::TruncateOnWrite,
        Fault::ShortWrite(5),
        Fault::DiskFull,
    ] {
        storefault::arm(OP_ATOMIC_WRITE, 0, fault, 1);
        assert!(write_atomic(&dest, b"generation 2, torn\n").is_err());
        storefault::clear();
        let got = std::fs::read(&dest).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            got, b"generation 1, complete\n",
            "old contents must survive a {fault:?} intact"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rename_failure_keeps_the_destination_untouched() {
    let (_g, dir) = armed("rename-fail");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("{e}"));
    let dest = dir.join("checkpoint.nmck");
    write_atomic(&dest, b"old\n").unwrap_or_else(|e| panic!("{e}"));
    storefault::arm(OP_ATOMIC_RENAME, 1, Fault::RenameFail, 1);
    assert!(write_atomic(&dest, b"new\n").is_err());
    storefault::clear();
    let got = std::fs::read(&dest).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(got, b"old\n");
    // The next attempt (no fault armed) succeeds.
    write_atomic(&dest, b"new\n").unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(
        std::fs::read(&dest).unwrap_or_else(|e| panic!("{e}")),
        b"new\n"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn atomic_bit_flip_is_visible_to_whole_file_checksums() {
    let (_g, dir) = armed("atomic-flip");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("{e}"));
    let dest = dir.join("table.txt");
    let clean = b"row 1\nrow 2\nrow 3\n";
    storefault::arm(OP_ATOMIC_WRITE, 0, Fault::BitFlip(3), 1);
    write_atomic(&dest, clean).unwrap_or_else(|e| panic!("{e}"));
    storefault::clear();
    let got = std::fs::read(&dest).unwrap_or_else(|e| panic!("{e}"));
    assert_ne!(got, clean.as_slice(), "the injected flip must land");
    assert_eq!(got.len(), clean.len());
    // Exactly one bit differs — what a whole-file FNV will catch.
    let diff: u32 = got
        .iter()
        .zip(clean.iter())
        .map(|(a, b)| (a ^ b).count_ones())
        .sum();
    assert_eq!(diff, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
