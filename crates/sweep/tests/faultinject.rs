//! Deterministic fault-injection tests for the contained executor.
//!
//! Compiled only with `--features faultinject`. The injection plan is
//! process-global, so every test serialises on [`plan_lock`] and clears
//! the plan before and after its run.

#![cfg(feature = "faultinject")]

use std::sync::Mutex;

use nm_sweep::faultinject::{arm, armed, clear, take_nan, Fault};
use nm_sweep::{ParallelSweep, RetryPolicy};

/// Serialises tests sharing the process-global injection plan.
fn plan_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn items(n: usize) -> Vec<usize> {
    (0..n).collect()
}

#[test]
fn injected_panic_faults_only_its_item() {
    let _guard = plan_lock();
    clear();
    arm(Some("inj"), 4, Fault::Panic, 1);

    let run = ParallelSweep::new()
        .with_workers(3)
        .labeled("inj")
        .try_map(&items(10), |&i| i * 2);

    assert_eq!(run.fault_count(), 1);
    let fault = run.faults().next().expect("one fault");
    assert_eq!(fault.index, 4);
    assert!(fault.message.contains("faultinject"), "{fault}");
    for (i, r) in run.results.iter().enumerate() {
        if i != 4 {
            assert_eq!(*r.as_ref().expect("healthy item"), i * 2);
        }
    }
    assert_eq!(armed(), 0, "fault consumed");
    clear();
}

#[test]
fn injected_panic_recovers_under_retry() {
    let _guard = plan_lock();
    clear();
    // Fires twice; a 3-attempt policy recovers the item on attempt 3.
    arm(Some("retry"), 2, Fault::Panic, 2);

    let run = ParallelSweep::new()
        .with_workers(2)
        .with_retry(RetryPolicy::new(3))
        .labeled("retry")
        .try_map(&items(5), |&i| i + 100);

    assert_eq!(run.fault_count(), 0, "item recovered");
    assert_eq!(run.retries, 2);
    assert_eq!(*run.results[2].as_ref().expect("recovered"), 102);
    clear();
}

#[test]
fn labels_scope_the_injection() {
    let _guard = plan_lock();
    clear();
    arm(Some("other-sweep"), 0, Fault::Panic, 1);

    let run = ParallelSweep::new()
        .labeled("this-sweep")
        .try_map(&items(3), |&i| i);
    assert_eq!(run.fault_count(), 0, "fault armed for a different label");
    assert_eq!(armed(), 1, "fault still armed");
    clear();
}

#[test]
fn killed_worker_degrades_to_serial_and_completes() {
    let _guard = plan_lock();
    clear();
    arm(Some("kill"), 3, Fault::KillWorker, 1);

    let run = ParallelSweep::new()
        .with_workers(2)
        .labeled("kill")
        .try_map(&items(12), |&i| i * i);

    assert_eq!(run.poisoned_workers, 1, "one worker died");
    // The kill fires once in the pool; the serial fallback re-runs the
    // item with no fault armed, so every item completes.
    assert_eq!(run.fault_count(), 0);
    for (i, r) in run.results.iter().enumerate() {
        assert_eq!(*r.as_ref().expect("completed"), i * i);
    }
    clear();
}

#[test]
fn killed_single_inline_worker_degrades_to_serial_and_completes() {
    let _guard = plan_lock();
    clear();
    arm(Some("inline-kill"), 2, Fault::KillWorker, 1);

    // A one-worker pool runs inline on the calling thread; the escaping
    // kill must still read as a dead worker (not sink the caller), with
    // the lost items re-run by the degraded serial pass.
    let run = ParallelSweep::new()
        .with_workers(1)
        .labeled("inline-kill")
        .try_map(&items(6), |&i| i * 3);

    assert_eq!(run.poisoned_workers, 1, "inline worker counted as dead");
    assert_eq!(run.fault_count(), 0);
    for (i, r) in run.results.iter().enumerate() {
        assert_eq!(*r.as_ref().expect("completed"), i * 3);
    }
    clear();
}

#[test]
fn all_workers_killed_still_completes_serially() {
    let _guard = plan_lock();
    clear();
    // Two workers, two kills on distinct early items: both workers can
    // die, leaving the calling thread to finish the sweep alone.
    arm(Some("massacre"), 0, Fault::KillWorker, 1);
    arm(Some("massacre"), 1, Fault::KillWorker, 1);

    let run = ParallelSweep::new()
        .with_workers(2)
        .labeled("massacre")
        .try_map(&items(8), |&i| i + 1);

    assert!(run.poisoned_workers >= 1, "at least one worker died");
    assert_eq!(run.fault_count(), 0);
    for (i, r) in run.results.iter().enumerate() {
        assert_eq!(*r.as_ref().expect("completed"), i + 1);
    }
    clear();
}

#[test]
fn persistent_kill_is_contained_by_the_serial_fallback() {
    let _guard = plan_lock();
    clear();
    // The kill fires in the pool AND again in the serial fallback; the
    // fallback contains it as an ordinary item fault instead of
    // unwinding the calling thread.
    arm(Some("stubborn"), 1, Fault::KillWorker, 2);

    let run = ParallelSweep::new()
        .with_workers(2)
        .labeled("stubborn")
        .try_map(&items(6), |&i| i);

    assert_eq!(run.poisoned_workers, 1);
    assert_eq!(run.fault_count(), 1);
    let fault = run.faults().next().expect("contained kill");
    assert_eq!(fault.index, 1);
    assert_eq!(run.ok_count(), 5);
    clear();
}

#[test]
fn stall_delays_but_does_not_fail() {
    let _guard = plan_lock();
    clear();
    arm(Some("slow"), 0, Fault::Stall(1_000_000), 1);

    let run = ParallelSweep::new()
        .with_workers(2)
        .labeled("slow")
        .try_map(&items(4), |&i| i * 3);

    assert_eq!(run.fault_count(), 0);
    assert_eq!(*run.results[0].as_ref().expect("stalled item succeeds"), 0);
    clear();
}

#[test]
fn nan_faults_are_ignored_by_the_executor_and_served_to_consumers() {
    let _guard = plan_lock();
    clear();
    arm(Some("surface"), 2, Fault::Nan, 1);

    // The executor never consumes Nan faults...
    let run = ParallelSweep::new()
        .labeled("surface")
        .try_map(&items(4), |&i| i);
    assert_eq!(run.fault_count(), 0);
    assert_eq!(armed(), 1, "Nan fault left for the metric layer");

    // ...a metric-producing layer polls take_nan per item instead.
    assert!(!take_nan(Some("surface"), 0));
    assert!(take_nan(Some("surface"), 2));
    assert!(!take_nan(Some("surface"), 2), "single-shot fault disarmed");
    assert_eq!(armed(), 0);
    clear();
}

#[test]
fn map_is_unaffected_by_the_contained_machinery() {
    let _guard = plan_lock();
    clear();
    // No faults armed: the fail-fast map path behaves exactly as before.
    let out = ParallelSweep::new()
        .with_workers(3)
        .labeled("plain")
        .map(&items(9), |&i| i * 7);
    assert_eq!(out, (0..9).map(|i| i * 7).collect::<Vec<_>>());
    clear();
}
