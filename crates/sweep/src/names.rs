//! Telemetry names emitted by the sweep executor.
//!
//! Every fixed metric name this crate records lives here as a `pub
//! const`, and each one must also appear in the workspace-root
//! `telemetry_names.txt` manifest — the D6 static-analysis rule
//! (`nmcache analyze`) checks both directions, so a typo'd literal can
//! never silently fork a time series. Per-sweep dynamic names
//! (`sweep.<label>`, `sweep.item.<label>`) are derived from user labels
//! and are exempt by design.

/// Counter: total work items submitted across all sweeps.
pub const ITEMS: &str = "sweep.items";
/// Counter: items that exhausted their retry budget.
pub const FAULTS: &str = "sweep.faults";
/// Counter: extra contained attempts beyond each item's first try.
pub const RETRIES: &str = "sweep.retries";
/// Counter: worker threads that died mid-sweep.
pub const POISONED_WORKERS: &str = "sweep.poisoned_workers";
