//! Bounded, deterministic, fault-tolerant parallel-sweep executor.
//!
//! Every study in this workspace is embarrassingly parallel along some
//! axis — (L1, L2) size pairs, AMAT targets, Monte-Carlo die corners,
//! subarray foldings, annealing restarts. Before this crate each hot
//! path either ran serially or spawned one OS thread per work item; a
//! 16×16 size grid meant 256 simultaneous simulator threads.
//!
//! [`ParallelSweep`] replaces both patterns with a scoped worker pool:
//!
//! * **Bounded** — at most `workers` threads run at once, defaulting to
//!   [`std::thread::available_parallelism`], overridable per sweep with
//!   [`ParallelSweep::with_workers`], per process with
//!   [`set_global_workers`], or per environment with `NMCACHE_THREADS`.
//! * **Deterministic** — work items are pulled from an index-based queue
//!   and results are reduced in *submission order*, so the output is
//!   bit-identical no matter how many workers ran or how the scheduler
//!   interleaved them.
//! * **Fault-tolerant** — [`try_map`](ParallelSweep::try_map) contains
//!   each item in [`std::panic::catch_unwind`], retries it under a
//!   bounded deterministic [`RetryPolicy`], records exhausted items as
//!   typed [`ItemFault`]s instead of unwinding the sweep, and degrades
//!   to serial execution on the calling thread for any items lost to a
//!   dead worker.
//! * **Observable** — each sweep can record a [`SweepStats`] entry
//!   (items, workers, wall time, faults, retries, poisoned workers)
//!   into a process-wide registry that the CLI drains with `--stats`.
//!
//! ```
//! use nm_sweep::ParallelSweep;
//!
//! let squares = ParallelSweep::new().map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```
//!
//! Containment keeps one poisoned item from sinking the run:
//!
//! ```
//! use nm_sweep::ParallelSweep;
//!
//! let run = ParallelSweep::new().try_map(&[1u64, 0, 3], |&x| {
//!     assert!(x != 0, "zero is not invertible");
//!     1.0 / x as f64
//! });
//! assert_eq!(run.fault_count(), 1);
//! assert!(run.results[0].is_ok() && run.results[2].is_ok());
//! assert!(run.results[1].as_ref().unwrap_err().message.contains("zero"));
//! ```
//!
//! The `faultinject` feature adds a deterministic fault-injection plan
//! (panics, stalls, worker kills, NaN poisoning) keyed by sweep label
//! and item index, so all of the above is testable in CI without
//! wall-clock randomness.

use nm_telemetry::Stopwatch;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

pub mod names;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "NMCACHE_THREADS";

/// Process-wide worker-count override (`0` = unset). Set by the CLI's
/// `--threads` flag so deep call sites that build their own
/// [`ParallelSweep`] pick it up without plumbing.
static GLOBAL_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for every subsequently constructed
/// [`ParallelSweep`] in this process (`None` restores the default
/// resolution order). Explicit [`ParallelSweep::with_workers`] calls
/// still win.
pub fn set_global_workers(workers: Option<usize>) {
    GLOBAL_WORKERS.store(workers.unwrap_or(0), Ordering::Relaxed);
}

/// The current process-wide override, if any.
pub fn global_workers() -> Option<usize> {
    match GLOBAL_WORKERS.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Resolves the default worker count: process override, then
/// `NMCACHE_THREADS`, then [`std::thread::available_parallelism`].
fn default_workers() -> usize {
    if let Some(n) = global_workers() {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Bounded, deterministic per-item retry policy for contained sweeps.
///
/// An item is attempted up to `attempts` times (so `attempts − 1`
/// retries); there is no wall-clock backoff or jitter, which keeps
/// contained sweeps reproducible — the same inputs fail (or recover)
/// identically on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    attempts: usize,
}

impl RetryPolicy {
    /// A policy allowing up to `attempts` total attempts per item
    /// (clamped to ≥ 1).
    pub fn new(attempts: usize) -> Self {
        RetryPolicy {
            attempts: attempts.max(1),
        }
    }

    /// The default policy: one attempt, no retries.
    pub fn none() -> Self {
        Self::new(1)
    }

    /// Total attempts allowed per item (≥ 1).
    pub fn attempts(&self) -> usize {
        self.attempts
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// A contained per-item failure: the item panicked on every allowed
/// attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemFault {
    /// Submission-order index of the failed item.
    pub index: usize,
    /// Attempts made before giving up.
    pub attempts: usize,
    /// Panic message of the final attempt (best-effort extraction).
    pub message: String,
}

impl std::fmt::Display for ItemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "item {} failed after {} attempt{}: {}",
            self.index,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

impl std::error::Error for ItemFault {}

/// Outcome of a contained sweep ([`ParallelSweep::try_map`]): one
/// `Result` per item in submission order, plus fault accounting.
#[derive(Debug)]
pub struct SweepRun<R> {
    /// Per-item outcomes, position `i` corresponding to `items[i]`.
    pub results: Vec<Result<R, ItemFault>>,
    /// Extra attempts spent recovering items (beyond each first try).
    pub retries: usize,
    /// Worker threads that died mid-sweep (their lost items were
    /// re-executed serially on the calling thread).
    pub poisoned_workers: usize,
}

impl<R> SweepRun<R> {
    /// Number of items that completed successfully.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of items that exhausted their attempts.
    pub fn fault_count(&self) -> usize {
        self.results.len() - self.ok_count()
    }

    /// The contained faults, in item order.
    pub fn faults(&self) -> impl Iterator<Item = &ItemFault> {
        self.results.iter().filter_map(|r| r.as_ref().err())
    }

    /// All results when every item succeeded, or the first fault.
    ///
    /// # Errors
    ///
    /// The lowest-index [`ItemFault`] when any item failed.
    pub fn into_oks(self) -> Result<Vec<R>, ItemFault> {
        let mut out = Vec::with_capacity(self.results.len());
        for r in self.results {
            out.push(r?);
        }
        Ok(out)
    }
}

/// Faults the executor can observe or inject (always compiled; the
/// `faultinject` feature only adds the machinery that *arms* them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(not(feature = "faultinject"), allow(dead_code))]
enum ExecFault {
    Panic,
    Stall(u32),
    KillWorker,
}

/// The armed execution fault for `(label, index)`, if any. Compiles to
/// a constant `None` without the `faultinject` feature.
fn exec_fault(label: Option<&str>, index: usize) -> Option<ExecFault> {
    #[cfg(feature = "faultinject")]
    {
        faultinject::next_exec_fault(label, index)
    }
    #[cfg(not(feature = "faultinject"))]
    {
        let _ = (label, index);
        None
    }
}

/// Deterministic busy loop standing in for a stalled worker (no
/// wall-clock sleeps, so CI timing stays reproducible).
fn spin(spins: u32) {
    for i in 0..spins {
        std::hint::black_box(i);
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else {
        "panic payload of unknown type".to_owned()
    }
}

/// A bounded worker pool that maps a closure over a slice of work items
/// and returns the results in submission order.
///
/// Construction is cheap (no threads are created until [`map`]
/// (Self::map) or [`try_map`](Self::try_map) runs); build one per sweep.
#[derive(Debug, Clone)]
pub struct ParallelSweep {
    workers: usize,
    label: Option<String>,
    retry: RetryPolicy,
}

impl ParallelSweep {
    /// A sweep with the default worker count (see [`set_global_workers`]
    /// and [`THREADS_ENV`] for the resolution order) and no retries.
    pub fn new() -> Self {
        ParallelSweep {
            workers: default_workers(),
            label: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Overrides the worker count for this sweep (clamped to ≥ 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Labels this sweep's [`SweepStats`] entry (unlabelled sweeps record
    /// as `"sweep"`).
    #[must_use]
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Sets the per-item retry policy used by [`try_map`](Self::try_map)
    /// (ignored by the fail-fast [`map`](Self::map)).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The configured worker bound.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Applies `f` to every item and returns the results in item order.
    ///
    /// At most `min(workers, items.len())` threads run concurrently,
    /// pulling indices from a shared queue; the output at position `i`
    /// is always `f(&items[i])`, so results are bit-identical for any
    /// worker count.
    ///
    /// This is the fail-fast path: a panicking item unwinds the whole
    /// sweep. Use [`try_map`](Self::try_map) where one poisoned item
    /// must not sink the run.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic on the calling thread.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let start = Stopwatch::start();
        let n = items.len();
        let workers = self.workers.min(n.max(1));
        // Per-item latency is only timed while telemetry records; with it
        // off the hot loop is untouched (one relaxed load per sweep).
        let item_hist = nm_telemetry::enabled()
            .then(|| format!("sweep.item.{}", self.label.as_deref().unwrap_or("sweep")));
        let _sweep_span = item_hist.as_ref().map(|_| {
            nm_telemetry::span(format!(
                "sweep.{}",
                self.label.as_deref().unwrap_or("sweep")
            ))
        });

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);

        let run_one = |i: usize| -> R {
            match &item_hist {
                Some(hist) => {
                    let t0 = Stopwatch::start();
                    let r = f(&items[i]);
                    nm_telemetry::observe_seconds(hist, t0.elapsed_seconds());
                    r
                }
                None => f(&items[i]),
            }
        };

        if workers == 1 {
            // Inline fast path: a one-worker pool is a serial loop, so run
            // it on the calling thread and skip the scope/spawn/join
            // round-trip entirely. Results, panics (re-raised here by
            // unwinding naturally) and stats are identical to a one-thread
            // pool; on a single-CPU host this is the cold path's executor.
            for (i, slot) in slots.iter_mut().enumerate() {
                *slot = Some(run_one(i));
            }
        } else if n > 0 {
            let next = AtomicUsize::new(0);
            let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                local.push((i, run_one(i)));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(results) => results,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });
            for (i, r) in per_worker.into_iter().flatten() {
                slots[i] = Some(r);
            }
        }

        stats::record(SweepStats {
            label: self.label.clone().unwrap_or_else(|| "sweep".to_owned()),
            items: n,
            workers,
            wall: start.elapsed(),
            faults: 0,
            retries: 0,
            poisoned_workers: 0,
        });

        #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: executor fill invariant
        let results: Vec<R> = slots
            .into_iter()
            .map(|r| r.expect("every index was claimed exactly once"))
            .collect();
        results
    }

    /// Applies `f` to every item with per-item panic containment and
    /// returns one `Result` per item in submission order.
    ///
    /// Each item runs inside [`std::panic::catch_unwind`]; a panic is
    /// retried up to the configured [`RetryPolicy`]'s attempt budget and
    /// then recorded as a typed [`ItemFault`] carrying the panic
    /// message. The remaining items always complete. Should a worker
    /// thread itself die (a panic escaping the per-item containment),
    /// the sweep degrades gracefully: surviving workers drain the queue
    /// and any items lost with the dead worker are re-executed serially
    /// on the calling thread, still contained. Dead workers are counted
    /// in [`SweepRun::poisoned_workers`] and [`SweepStats`].
    ///
    /// Determinism: successful results are bit-identical to
    /// [`map`](Self::map) for any worker count, and the retry policy
    /// contains no wall-clock randomness.
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> SweepRun<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let start = Stopwatch::start();
        let n = items.len();
        let workers = self.workers.min(n.max(1));
        let label = self.label.as_deref();
        let attempts = self.retry.attempts();
        let retries = AtomicUsize::new(0);
        let item_hist =
            nm_telemetry::enabled().then(|| format!("sweep.item.{}", label.unwrap_or("sweep")));
        let _sweep_span = item_hist
            .as_ref()
            .map(|_| nm_telemetry::span(format!("sweep.{}", label.unwrap_or("sweep"))));

        // One contained execution of item `i`, shared by the parallel
        // and the degraded-serial paths. In degraded mode an injected
        // worker-kill is contained like an ordinary panic — the calling
        // thread must survive.
        let run_item = |i: usize, degraded: bool| -> Result<R, ItemFault> {
            let mut last = String::new();
            let item_start = item_hist.as_ref().map(|_| Stopwatch::start());
            for attempt in 1..=attempts {
                let fault = exec_fault(label, i);
                if matches!(fault, Some(ExecFault::KillWorker)) && !degraded {
                    // Escapes the per-item containment below, taking the
                    // worker thread down with it.
                    panic!("faultinject: worker killed at item {i}");
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    match fault {
                        Some(ExecFault::Panic) => panic!("faultinject: item {i} panics"),
                        Some(ExecFault::KillWorker) => {
                            panic!("faultinject: worker kill contained serially at item {i}")
                        }
                        Some(ExecFault::Stall(spins)) => spin(spins),
                        None => {}
                    }
                    f(&items[i])
                }));
                match outcome {
                    Ok(r) => {
                        if let (Some(hist), Some(t0)) = (&item_hist, item_start) {
                            nm_telemetry::observe_seconds(hist, t0.elapsed_seconds());
                        }
                        return Ok(r);
                    }
                    Err(payload) => {
                        last = panic_message(payload.as_ref());
                        if attempt < attempts {
                            retries.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Err(ItemFault {
                index: i,
                attempts,
                message: last,
            })
        };

        let mut slots: Vec<Option<Result<R, ItemFault>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut poisoned = 0usize;

        if n > 0 {
            let next = AtomicUsize::new(0);
            // (index, contained outcome) pairs one worker carries home.
            type WorkerBatch<R> = Vec<(usize, Result<R, ItemFault>)>;
            let joined: Vec<std::thread::Result<WorkerBatch<R>>> = if workers == 1 {
                // Inline fast path: run the single worker's drain loop on
                // the calling thread instead of spawning it. The loop is
                // wrapped in `catch_unwind` so a panic that escapes the
                // per-item containment (an injected worker kill) still
                // reads as a dead worker — its claimed items are lost and
                // re-run by the degraded serial pass below, exactly as if
                // a spawned worker had died.
                vec![catch_unwind(AssertUnwindSafe(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, run_item(i, false)));
                    }
                    local
                }))]
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            scope.spawn(|| {
                                let mut local = Vec::new();
                                loop {
                                    let i = next.fetch_add(1, Ordering::Relaxed);
                                    if i >= n {
                                        break;
                                    }
                                    local.push((i, run_item(i, false)));
                                }
                                local
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join()).collect()
                })
            };
            for outcome in joined {
                match outcome {
                    Ok(local) => {
                        for (i, r) in local {
                            slots[i] = Some(r);
                        }
                    }
                    Err(_) => poisoned += 1,
                }
            }
            // Degraded serial pass: items claimed by a dead worker (or
            // never claimed because every worker died) run here,
            // contained, on the calling thread.
            if poisoned > 0 {
                for (i, slot) in slots.iter_mut().enumerate() {
                    if slot.is_none() {
                        *slot = Some(run_item(i, true));
                    }
                }
            }
        }

        #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: executor fill invariant
        let results: Vec<Result<R, ItemFault>> = slots
            .into_iter()
            .map(|r| r.expect("every index ran in the pool or the serial fallback"))
            .collect();
        let faults = results.iter().filter(|r| r.is_err()).count();
        let retries = retries.load(Ordering::Relaxed);

        stats::record(SweepStats {
            label: self.label.clone().unwrap_or_else(|| "sweep".to_owned()),
            items: n,
            workers,
            wall: start.elapsed(),
            faults,
            retries,
            poisoned_workers: poisoned,
        });

        SweepRun {
            results,
            retries,
            poisoned_workers: poisoned,
        }
    }
}

impl Default for ParallelSweep {
    fn default() -> Self {
        ParallelSweep::new()
    }
}

/// Timing and fault record of one completed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStats {
    /// Sweep label (from [`ParallelSweep::labeled`]).
    pub label: String,
    /// Work items submitted.
    pub items: usize,
    /// Worker threads used (≤ the configured bound).
    pub workers: usize,
    /// Wall-clock duration of the whole sweep.
    pub wall: Duration,
    /// Items that exhausted their attempts (always 0 for
    /// [`ParallelSweep::map`], which propagates panics instead).
    pub faults: usize,
    /// Extra contained attempts beyond each item's first try.
    pub retries: usize,
    /// Worker threads that died mid-sweep.
    pub poisoned_workers: usize,
}

impl SweepStats {
    /// Throughput in items per second (`0.0` for an instantaneous sweep).
    pub fn items_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.items as f64 / secs
        } else {
            0.0
        }
    }
}

pub mod stats {
    //! Process-wide sweep-statistics registry.
    //!
    //! Since the unified telemetry layer this module is a compatibility
    //! view over [`nm_telemetry`]: `enable`/`disable` toggle the global
    //! telemetry gate, `record` stores sweeps (plus `sweep.*` counters)
    //! in the shared registry, and `drain` removes only the sweep
    //! entries, preserving the original drain-isolates-regions
    //! semantics. Disabled by default so library users pay nothing; the
    //! CLI enables it for `--stats` and drains it after the command
    //! finishes.

    use super::SweepStats;
    use std::time::Duration;

    /// Starts recording sweep statistics (enables the whole unified
    /// telemetry registry — sweeps, counters, spans share one gate).
    pub fn enable() {
        nm_telemetry::enable();
    }

    /// Stops recording (already-recorded entries are kept until drained).
    pub fn disable() {
        nm_telemetry::disable();
    }

    /// `true` while recording.
    pub fn enabled() -> bool {
        nm_telemetry::enabled()
    }

    /// Records one entry (no-op while disabled).
    pub fn record(entry: SweepStats) {
        if !enabled() {
            return;
        }
        nm_telemetry::counter_add(crate::names::ITEMS, entry.items as u64);
        nm_telemetry::counter_add(crate::names::FAULTS, entry.faults as u64);
        nm_telemetry::counter_add(crate::names::RETRIES, entry.retries as u64);
        nm_telemetry::counter_add(
            crate::names::POISONED_WORKERS,
            entry.poisoned_workers as u64,
        );
        nm_telemetry::record_sweep(nm_telemetry::SweepRecord {
            label: entry.label,
            items: entry.items,
            workers: entry.workers,
            wall_ns: entry.wall.as_nanos().min(u128::from(u64::MAX)) as u64,
            faults: entry.faults,
            retries: entry.retries,
            poisoned_workers: entry.poisoned_workers,
        });
    }

    /// Removes and returns every recorded entry, in recording order.
    /// Counters, spans and histograms stay in the registry.
    pub fn drain() -> Vec<SweepStats> {
        nm_telemetry::drain_sweeps()
            .into_iter()
            .map(|r| SweepStats {
                label: r.label,
                items: r.items,
                workers: r.workers,
                wall: Duration::from_nanos(r.wall_ns),
                faults: r.faults,
                retries: r.retries,
                poisoned_workers: r.poisoned_workers,
            })
            .collect()
    }
}

#[cfg(feature = "faultinject")]
pub mod faultinject {
    //! Deterministic fault injection keyed by sweep label and item index.
    //!
    //! Enabled only under the `faultinject` cargo feature; production
    //! builds compile none of this. Faults are *armed* ahead of a run
    //! and *consumed* as the executor (or a metric-producing layer, for
    //! [`Fault::Nan`]) reaches the matching `(label, index)` — each
    //! armed fault fires a bounded number of times and then disarms, so
    //! a retried item can deterministically fail N times and recover on
    //! attempt N + 1. No wall-clock randomness anywhere.
    //!
    //! The plan is process-global: tests that arm faults must serialise
    //! against each other (e.g. with a shared mutex) and [`clear`] the
    //! plan when done.

    use std::sync::Mutex;

    /// A fault to inject at one `(label, index)` coordinate.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Fault {
        /// The item's closure panics (contained by
        /// [`try_map`](crate::ParallelSweep::try_map)).
        Panic,
        /// The worker busy-spins this many iterations before the item
        /// runs (the item still succeeds).
        Stall(u32),
        /// The worker thread dies: the panic escapes the per-item
        /// containment, exercising the serial degradation path.
        KillWorker,
        /// Value poisoning: a metric-producing layer that polls
        /// [`take_nan`] replaces the item's computed values with NaN.
        /// The executor itself ignores this kind.
        Nan,
    }

    #[derive(Debug)]
    struct Armed {
        label: Option<String>,
        index: usize,
        fault: Fault,
        remaining: usize,
    }

    static PLAN: Mutex<Vec<Armed>> = Mutex::new(Vec::new());

    fn plan() -> std::sync::MutexGuard<'static, Vec<Armed>> {
        PLAN.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Arms `fault` for item `index` of sweeps labelled `label` (`None`
    /// matches any label). The fault fires on the next `times` matching
    /// attempts, then disarms.
    pub fn arm(label: Option<&str>, index: usize, fault: Fault, times: usize) {
        if times == 0 {
            return;
        }
        plan().push(Armed {
            label: label.map(str::to_owned),
            index,
            fault,
            remaining: times,
        });
    }

    /// Disarms every armed fault.
    pub fn clear() {
        plan().clear();
    }

    /// Number of armed (not yet fully fired) faults.
    pub fn armed() -> usize {
        plan().len()
    }

    fn consume(label: Option<&str>, index: usize, exec: bool) -> Option<Fault> {
        let mut plan = plan();
        let pos = plan.iter().position(|a| {
            a.index == index
                && (a.label.is_none() || a.label.as_deref() == label)
                && (matches!(a.fault, Fault::Nan) != exec)
        })?;
        let fault = plan[pos].fault;
        plan[pos].remaining -= 1;
        if plan[pos].remaining == 0 {
            plan.remove(pos);
        }
        Some(fault)
    }

    /// Consumes the next armed execution fault (panic / stall / kill)
    /// for `(label, index)`, if any.
    pub(crate) fn next_exec_fault(label: Option<&str>, index: usize) -> Option<super::ExecFault> {
        match consume(label, index, true)? {
            Fault::Panic => Some(super::ExecFault::Panic),
            Fault::Stall(spins) => Some(super::ExecFault::Stall(spins)),
            Fault::KillWorker => Some(super::ExecFault::KillWorker),
            Fault::Nan => None,
        }
    }

    /// Consumes an armed [`Fault::Nan`] for `(label, index)`. Layers
    /// that produce floating-point metrics call this once per item and
    /// poison their output when it returns `true`.
    pub fn take_nan(label: Option<&str>, index: usize) -> bool {
        matches!(consume(label, index, false), Some(Fault::Nan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn map_preserves_submission_order() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [1, 2, 7, 64] {
            let out = ParallelSweep::new()
                .with_workers(workers)
                .map(&items, |&x| x * 3 + 1);
            let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    fn identical_results_for_any_worker_count() {
        let items: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
        let run = |w: usize| {
            ParallelSweep::new()
                .with_workers(w)
                .map(&items, |&x| (x.sin() * 1e9).to_bits())
        };
        let reference = run(1);
        for w in [2, 3, 8] {
            assert_eq!(run(w), reference, "workers = {w}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = ParallelSweep::new().map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn peak_concurrency_respects_the_bound() {
        use std::sync::atomic::AtomicUsize;
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        ParallelSweep::new().with_workers(3).map(&items, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        let seen = peak.load(Ordering::SeqCst);
        assert!(seen <= 3, "peak concurrency {seen} exceeded 3 workers");
        assert!(seen >= 1);
    }

    /// Serialises tests that poke the process-wide stats registry.
    fn stats_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn worker_bound_never_exceeds_item_count() {
        // A 2-item sweep on a 64-worker pool must not spawn 64 threads;
        // the recorded stats expose the actual worker count.
        let _guard = stats_lock();
        stats::enable();
        stats::drain();
        ParallelSweep::new()
            .with_workers(64)
            .labeled("tiny")
            .map(&[1, 2], |&x: &i32| x);
        let recorded = stats::drain();
        stats::disable();
        let entry = recorded
            .iter()
            .find(|s| s.label == "tiny")
            .expect("tiny sweep recorded");
        assert_eq!(entry.items, 2);
        assert!(entry.workers <= 2);
        assert_eq!(
            (entry.faults, entry.retries, entry.poisoned_workers),
            (0, 0, 0)
        );
    }

    #[test]
    fn with_workers_zero_clamps_to_one() {
        assert_eq!(ParallelSweep::new().with_workers(0).workers(), 1);
    }

    #[test]
    fn global_override_applies_to_new_sweeps() {
        set_global_workers(Some(5));
        assert_eq!(ParallelSweep::new().workers(), 5);
        set_global_workers(None);
        assert!(ParallelSweep::new().workers() >= 1);
    }

    #[test]
    fn stats_disabled_by_default_and_drain_clears() {
        let _guard = stats_lock();
        stats::drain();
        ParallelSweep::new().labeled("ignored").map(&[1u8], |&x| x);
        assert!(
            stats::drain().iter().all(|s| s.label != "ignored"),
            "recorded while disabled"
        );

        stats::enable();
        ParallelSweep::new().labeled("a").map(&[1u8, 2], |&x| x);
        ParallelSweep::new().labeled("b").map(&[3u8], |&x| x);
        let got = stats::drain();
        stats::disable();
        let labels: Vec<&str> = got
            .iter()
            .map(|s| s.label.as_str())
            .filter(|l| *l == "a" || *l == "b")
            .collect();
        assert!(labels.contains(&"a") && labels.contains(&"b"), "{labels:?}");
        assert!(stats::drain().iter().all(|s| s.label != "a"));
    }

    #[test]
    fn worker_panics_propagate_with_their_message() {
        let result = std::panic::catch_unwind(|| {
            ParallelSweep::new().with_workers(2).map(&[0, 1, 2], |&x| {
                assert!(x != 1, "item {x} is bad");
                x
            });
        });
        let payload = result.expect_err("sweep must propagate the panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("item 1 is bad"), "lost panic message: {msg}");
    }

    #[test]
    fn items_per_sec_is_finite() {
        let s = SweepStats {
            label: "x".into(),
            items: 10,
            workers: 2,
            wall: Duration::from_millis(100),
            faults: 0,
            retries: 0,
            poisoned_workers: 0,
        };
        assert!((s.items_per_sec() - 100.0).abs() < 1.0);
        let zero = SweepStats {
            wall: Duration::ZERO,
            ..s
        };
        assert_eq!(zero.items_per_sec(), 0.0);
    }

    #[test]
    fn try_map_contains_a_panicking_item() {
        for workers in [1, 2, 8] {
            let items: Vec<u32> = (0..16).collect();
            let run = ParallelSweep::new()
                .with_workers(workers)
                .try_map(&items, |&x| {
                    assert!(x != 5, "item {x} is poisoned");
                    x * 2
                });
            assert_eq!(run.fault_count(), 1, "workers = {workers}");
            assert_eq!(run.ok_count(), 15);
            assert_eq!(run.poisoned_workers, 0);
            let fault = run.faults().next().expect("one fault");
            assert_eq!(fault.index, 5);
            assert!(fault.message.contains("poisoned"), "{fault}");
            for (i, r) in run.results.iter().enumerate() {
                if i != 5 {
                    assert_eq!(*r.as_ref().expect("healthy item"), i as u32 * 2);
                }
            }
        }
    }

    #[test]
    fn try_map_matches_map_on_the_healthy_path() {
        let items: Vec<f64> = (0..64).map(|i| i as f64 * 0.71).collect();
        let via_map = ParallelSweep::new()
            .with_workers(4)
            .map(&items, |&x| (x.cos() * 1e9).to_bits());
        let via_try = ParallelSweep::new()
            .with_workers(4)
            .try_map(&items, |&x| (x.cos() * 1e9).to_bits())
            .into_oks()
            .expect("no faults");
        assert_eq!(via_map, via_try);
    }

    #[test]
    fn try_map_retries_deterministically() {
        use std::collections::HashMap;
        use std::sync::Mutex;
        // Item 3 fails twice then succeeds; a 3-attempt policy recovers
        // it and records exactly 2 retries.
        let attempts: Mutex<HashMap<usize, usize>> = Mutex::new(HashMap::new());
        let items: Vec<usize> = (0..8).collect();
        let run = ParallelSweep::new()
            .with_workers(2)
            .with_retry(RetryPolicy::new(3))
            .try_map(&items, |&i| {
                let count = {
                    let mut seen = attempts
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    let count = seen.entry(i).or_insert(0);
                    *count += 1;
                    *count
                };
                assert!(!(i == 3 && count <= 2), "transient failure on item {i}");
                i * 10
            });
        assert_eq!(run.fault_count(), 0);
        assert_eq!(run.retries, 2);
        assert_eq!(*run.results[3].as_ref().expect("recovered"), 30);
    }

    #[test]
    fn try_map_exhausts_attempts_and_reports_them() {
        let run = ParallelSweep::new()
            .with_workers(2)
            .with_retry(RetryPolicy::new(3))
            .try_map(&[0u8], |_| -> u8 { panic!("always fails") });
        assert_eq!(run.fault_count(), 1);
        assert_eq!(run.retries, 2);
        let fault = run.faults().next().expect("fault recorded");
        assert_eq!(fault.attempts, 3);
        assert!(fault.message.contains("always fails"));
    }

    #[test]
    fn try_map_empty_input() {
        let run: SweepRun<u8> = ParallelSweep::new().try_map(&[] as &[u8], |&x| x);
        assert!(run.results.is_empty());
        assert_eq!(run.fault_count(), 0);
    }

    #[test]
    fn try_map_records_fault_stats() {
        let _guard = stats_lock();
        stats::enable();
        stats::drain();
        ParallelSweep::new()
            .with_workers(2)
            .with_retry(RetryPolicy::new(2))
            .labeled("faulty")
            .try_map(&[0, 1, 2], |&x: &i32| {
                assert!(x != 1, "bad");
                x
            });
        let recorded = stats::drain();
        stats::disable();
        let entry = recorded
            .iter()
            .find(|s| s.label == "faulty")
            .expect("faulty sweep recorded");
        assert_eq!(entry.faults, 1);
        assert_eq!(entry.retries, 1);
        assert_eq!(entry.poisoned_workers, 0);
    }

    #[test]
    fn retry_policy_clamps_and_defaults() {
        assert_eq!(RetryPolicy::new(0).attempts(), 1);
        assert_eq!(RetryPolicy::default().attempts(), 1);
        assert_eq!(ParallelSweep::new().retry_policy(), RetryPolicy::none());
        assert_eq!(
            ParallelSweep::new()
                .with_retry(RetryPolicy::new(4))
                .retry_policy()
                .attempts(),
            4
        );
    }

    #[test]
    fn item_fault_displays_context() {
        let f = ItemFault {
            index: 7,
            attempts: 2,
            message: "boom".into(),
        };
        let text = f.to_string();
        assert!(text.contains("item 7") && text.contains("2 attempts") && text.contains("boom"));
    }

    #[test]
    fn into_oks_surfaces_first_fault() {
        let run = ParallelSweep::new()
            .with_workers(2)
            .try_map(&[0, 1, 2], |&x: &i32| {
                assert!(x != 2, "late fault");
                x
            });
        let err = run.into_oks().expect_err("fault propagates");
        assert_eq!(err.index, 2);
    }
}
