//! Bounded, deterministic parallel-sweep executor.
//!
//! Every study in this workspace is embarrassingly parallel along some
//! axis — (L1, L2) size pairs, AMAT targets, Monte-Carlo die corners,
//! subarray foldings, annealing restarts. Before this crate each hot
//! path either ran serially or spawned one OS thread per work item; a
//! 16×16 size grid meant 256 simultaneous simulator threads.
//!
//! [`ParallelSweep`] replaces both patterns with a scoped worker pool:
//!
//! * **Bounded** — at most `workers` threads run at once, defaulting to
//!   [`std::thread::available_parallelism`], overridable per sweep with
//!   [`ParallelSweep::with_workers`], per process with
//!   [`set_global_workers`], or per environment with `NMCACHE_THREADS`.
//! * **Deterministic** — work items are pulled from an index-based queue
//!   and results are reduced in *submission order*, so the output is
//!   bit-identical no matter how many workers ran or how the scheduler
//!   interleaved them.
//! * **Observable** — each sweep can record a [`SweepStats`] entry
//!   (items, workers, wall time) into a process-wide registry that the
//!   CLI drains with `--stats`.
//!
//! ```
//! use nm_sweep::ParallelSweep;
//!
//! let squares = ParallelSweep::new().map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "NMCACHE_THREADS";

/// Process-wide worker-count override (`0` = unset). Set by the CLI's
/// `--threads` flag so deep call sites that build their own
/// [`ParallelSweep`] pick it up without plumbing.
static GLOBAL_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for every subsequently constructed
/// [`ParallelSweep`] in this process (`None` restores the default
/// resolution order). Explicit [`ParallelSweep::with_workers`] calls
/// still win.
pub fn set_global_workers(workers: Option<usize>) {
    GLOBAL_WORKERS.store(workers.unwrap_or(0), Ordering::Relaxed);
}

/// The current process-wide override, if any.
pub fn global_workers() -> Option<usize> {
    match GLOBAL_WORKERS.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Resolves the default worker count: process override, then
/// `NMCACHE_THREADS`, then [`std::thread::available_parallelism`].
fn default_workers() -> usize {
    if let Some(n) = global_workers() {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A bounded worker pool that maps a closure over a slice of work items
/// and returns the results in submission order.
///
/// Construction is cheap (no threads are created until [`map`]
/// (Self::map) runs); build one per sweep.
#[derive(Debug, Clone)]
pub struct ParallelSweep {
    workers: usize,
    label: Option<String>,
}

impl ParallelSweep {
    /// A sweep with the default worker count (see [`set_global_workers`]
    /// and [`THREADS_ENV`] for the resolution order).
    pub fn new() -> Self {
        ParallelSweep {
            workers: default_workers(),
            label: None,
        }
    }

    /// Overrides the worker count for this sweep (clamped to ≥ 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Labels this sweep's [`SweepStats`] entry (unlabelled sweeps record
    /// as `"sweep"`).
    #[must_use]
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The configured worker bound.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item and returns the results in item order.
    ///
    /// At most `min(workers, items.len())` threads run concurrently,
    /// pulling indices from a shared queue; the output at position `i`
    /// is always `f(&items[i])`, so results are bit-identical for any
    /// worker count.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic on the calling thread.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let start = Instant::now();
        let n = items.len();
        let workers = self.workers.min(n.max(1));

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);

        if n > 0 {
            let next = AtomicUsize::new(0);
            let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                local.push((i, f(&items[i])));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(results) => results,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });
            for (i, r) in per_worker.into_iter().flatten() {
                slots[i] = Some(r);
            }
        }

        stats::record(SweepStats {
            label: self.label.clone().unwrap_or_else(|| "sweep".to_owned()),
            items: n,
            workers,
            wall: start.elapsed(),
        });

        slots
            .into_iter()
            .map(|r| r.expect("every index was claimed exactly once"))
            .collect()
    }
}

impl Default for ParallelSweep {
    fn default() -> Self {
        ParallelSweep::new()
    }
}

/// Timing record of one completed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStats {
    /// Sweep label (from [`ParallelSweep::labeled`]).
    pub label: String,
    /// Work items submitted.
    pub items: usize,
    /// Worker threads used (≤ the configured bound).
    pub workers: usize,
    /// Wall-clock duration of the whole sweep.
    pub wall: Duration,
}

impl SweepStats {
    /// Throughput in items per second (`0.0` for an instantaneous sweep).
    pub fn items_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.items as f64 / secs
        } else {
            0.0
        }
    }
}

pub mod stats {
    //! Process-wide sweep-statistics registry.
    //!
    //! Disabled by default so library users pay nothing; the CLI enables
    //! it for `--stats` and drains it after the command finishes.

    use super::{AtomicBool, Mutex, Ordering, SweepStats};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static REGISTRY: Mutex<Vec<SweepStats>> = Mutex::new(Vec::new());

    /// Starts recording sweep statistics.
    pub fn enable() {
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Stops recording (already-recorded entries are kept until drained).
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// `true` while recording.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Records one entry (no-op while disabled).
    pub fn record(entry: SweepStats) {
        if enabled() {
            REGISTRY
                .lock()
                .expect("stats registry lock is never poisoned")
                .push(entry);
        }
    }

    /// Removes and returns every recorded entry, in recording order.
    pub fn drain() -> Vec<SweepStats> {
        std::mem::take(
            &mut *REGISTRY
                .lock()
                .expect("stats registry lock is never poisoned"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_submission_order() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [1, 2, 7, 64] {
            let out = ParallelSweep::new()
                .with_workers(workers)
                .map(&items, |&x| x * 3 + 1);
            let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    fn identical_results_for_any_worker_count() {
        let items: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
        let run = |w: usize| {
            ParallelSweep::new()
                .with_workers(w)
                .map(&items, |&x| (x.sin() * 1e9).to_bits())
        };
        let reference = run(1);
        for w in [2, 3, 8] {
            assert_eq!(run(w), reference, "workers = {w}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = ParallelSweep::new().map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn peak_concurrency_respects_the_bound() {
        use std::sync::atomic::AtomicUsize;
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        ParallelSweep::new().with_workers(3).map(&items, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        let seen = peak.load(Ordering::SeqCst);
        assert!(seen <= 3, "peak concurrency {seen} exceeded 3 workers");
        assert!(seen >= 1);
    }

    /// Serialises tests that poke the process-wide stats registry.
    fn stats_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("stats test lock is never poisoned")
    }

    #[test]
    fn worker_bound_never_exceeds_item_count() {
        // A 2-item sweep on a 64-worker pool must not spawn 64 threads;
        // the recorded stats expose the actual worker count.
        let _guard = stats_lock();
        stats::enable();
        stats::drain();
        ParallelSweep::new()
            .with_workers(64)
            .labeled("tiny")
            .map(&[1, 2], |&x: &i32| x);
        let recorded = stats::drain();
        stats::disable();
        let entry = recorded
            .iter()
            .find(|s| s.label == "tiny")
            .expect("tiny sweep recorded");
        assert_eq!(entry.items, 2);
        assert!(entry.workers <= 2);
    }

    #[test]
    fn with_workers_zero_clamps_to_one() {
        assert_eq!(ParallelSweep::new().with_workers(0).workers(), 1);
    }

    #[test]
    fn global_override_applies_to_new_sweeps() {
        set_global_workers(Some(5));
        assert_eq!(ParallelSweep::new().workers(), 5);
        set_global_workers(None);
        assert!(ParallelSweep::new().workers() >= 1);
    }

    #[test]
    fn stats_disabled_by_default_and_drain_clears() {
        let _guard = stats_lock();
        stats::drain();
        ParallelSweep::new().labeled("ignored").map(&[1u8], |&x| x);
        assert!(
            stats::drain().iter().all(|s| s.label != "ignored"),
            "recorded while disabled"
        );

        stats::enable();
        ParallelSweep::new().labeled("a").map(&[1u8, 2], |&x| x);
        ParallelSweep::new().labeled("b").map(&[3u8], |&x| x);
        let got = stats::drain();
        stats::disable();
        let labels: Vec<&str> = got
            .iter()
            .map(|s| s.label.as_str())
            .filter(|l| *l == "a" || *l == "b")
            .collect();
        assert!(labels.contains(&"a") && labels.contains(&"b"), "{labels:?}");
        assert!(stats::drain().iter().all(|s| s.label != "a"));
    }

    #[test]
    fn worker_panics_propagate_with_their_message() {
        let result = std::panic::catch_unwind(|| {
            ParallelSweep::new().with_workers(2).map(&[0, 1, 2], |&x| {
                assert!(x != 1, "item {x} is bad");
                x
            });
        });
        let payload = result.expect_err("sweep must propagate the panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("item 1 is bad"), "lost panic message: {msg}");
    }

    #[test]
    fn items_per_sec_is_finite() {
        let s = SweepStats {
            label: "x".into(),
            items: 10,
            workers: 2,
            wall: Duration::from_millis(100),
        };
        assert!((s.items_per_sec() - 100.0).abs() < 1.0);
        let zero = SweepStats {
            wall: Duration::ZERO,
            ..s
        };
        assert_eq!(zero.items_per_sec(), 0.0);
    }
}
