//! Mix replay: prime, fire, tally.
//!
//! The runner drives one shared in-process [`Evaluator`] with a
//! synthesized [`QueryMix`] through the bounded [`ParallelSweep`] pool
//! and records per-class latency histograms plus throughput gauges into
//! the live telemetry registry (the caller arms, drains and publishes
//! the registry — typically as `BENCH_serve.json`).
//!
//! Counter determinism: for a fixed `(seed, query count, thread count)`
//! every counter in the drained snapshot is identical across runs.
//! Shared-spec classes (warm / tuple / adversarial) all target one base
//! spec whose front — and whose restricted merge base — are built
//! *serially before* the parallel replay, so cache hit/built counters
//! cannot race; cold and mixed specs are unique per query index, so each
//! builds its own surfaces exactly once regardless of interleaving.

use crate::mix::{Query, QueryMix};
use crate::names;
use nm_cache_core::eval::Evaluator;
use nm_cache_core::StudyError;
use nm_device::KnobGrid;
use nm_opt::objective::Deadline;
use nm_sweep::ParallelSweep;
use nm_telemetry::Stopwatch;
use std::time::Duration;

/// Replay discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Fire every query as soon as a worker is free.
    Closed,
    /// Schedule query *i* to arrive at `i / rate` seconds; latency is
    /// measured from the scheduled arrival, so a backlog shows up as
    /// tail latency instead of being silently absorbed (no coordinated
    /// omission).
    Open {
        /// Target arrival rate, queries per second.
        rate_qps: f64,
    },
}

/// A load-generation run request.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Mix seed; fixes the class sequence and every spec.
    pub seed: u64,
    /// Number of queries to synthesize and replay.
    pub queries: usize,
    /// Closed- or open-loop replay.
    pub mode: Mode,
    /// Use the coarse knob grid (CI-sized work items).
    pub quick: bool,
}

/// What happened, in aggregate (details live in the registry).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenSummary {
    /// Queries replayed.
    pub queries: usize,
    /// Queries with a satisfiable constraint.
    pub feasible: u64,
    /// Queries whose constraint was infeasible.
    pub infeasible: u64,
    /// Queries that failed with an evaluation error.
    pub errors: u64,
    /// Wall-clock seconds for the parallel replay phase.
    pub wall_seconds: f64,
    /// Achieved throughput, queries per second.
    pub throughput_qps: f64,
    /// First evaluation error message, when any occurred.
    pub first_error: Option<String>,
}

enum Outcome {
    Feasible,
    Infeasible,
    Error(String),
}

/// Synthesizes the mix for `config`, primes shared state, replays the
/// queries through the bounded pool, and tallies results into the live
/// telemetry registry.
///
/// # Errors
///
/// Propagates mix-synthesis errors and evaluation failures from the
/// serial prime phase. Errors *during* replay are counted
/// (`loadgen.errors`), not propagated — one bad query must not sink a
/// load test.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenSummary, StudyError> {
    let grid = if config.quick {
        KnobGrid::coarse()
    } else {
        KnobGrid::paper()
    };
    let mix = QueryMix::synthesize(config.seed, config.queries, &grid)?;
    let eval = Evaluator::new(grid);

    nm_telemetry::set_note(names::LOADGEN_SEED, &config.seed.to_string());
    nm_telemetry::set_note(names::LOADGEN_MIX, &mix.composition());
    match config.mode {
        Mode::Closed => {
            nm_telemetry::set_note(names::LOADGEN_MODE, "closed");
            nm_telemetry::set_gauge(names::LOADGEN_TARGET_QPS, 0.0);
        }
        Mode::Open { rate_qps } => {
            nm_telemetry::set_note(names::LOADGEN_MODE, &format!("open@{rate_qps}"));
            nm_telemetry::set_gauge(names::LOADGEN_TARGET_QPS, rate_qps);
        }
    }
    nm_telemetry::set_gauge(names::SLO_MACHINE_SCALE, machine_scale_seconds());

    // Serial prime: build the shared base front (warm / adversarial
    // queries then always hit it) and, when the mix contains tuple
    // queries, the restricted merge base they all re-merge from.
    eval.try_front(&mix.base_spec)?;
    if mix.has_tuple_queries() {
        eval.try_solve_restricted(
            &mix.base_spec,
            &mix.restriction.vths,
            &mix.restriction.toxes,
            &Deadline(mix.base_budget),
        )?;
    }

    let run_clock = Stopwatch::start();
    let outcomes: Vec<Outcome> = ParallelSweep::new()
        .labeled("loadgen")
        .map(&mix.queries, |q| {
            if let Mode::Open { rate_qps } = config.mode {
                let scheduled = q.index as f64 / rate_qps;
                let now = run_clock.elapsed_seconds();
                if scheduled > now {
                    std::thread::sleep(Duration::from_secs_f64(scheduled - now));
                }
            }
            let begin = run_clock.elapsed_seconds();
            let result = solve(&eval, &mix, q);
            let end = run_clock.elapsed_seconds();
            let latency = match config.mode {
                Mode::Open { rate_qps } => end - (q.index as f64 / rate_qps).min(begin),
                Mode::Closed => end - begin,
            };
            nm_telemetry::observe_seconds(q.class.latency_name(), latency);
            nm_telemetry::observe_seconds(names::LOADGEN_LATENCY_ALL, latency);
            result
        });
    let wall_seconds = run_clock.elapsed_seconds();

    // Serial tally: counters are incremented in submission order, never
    // from workers, so the counter section is interleaving-independent.
    let mut summary = LoadgenSummary {
        queries: outcomes.len(),
        feasible: 0,
        infeasible: 0,
        errors: 0,
        wall_seconds,
        throughput_qps: if wall_seconds > 0.0 {
            outcomes.len() as f64 / wall_seconds
        } else {
            0.0
        },
        first_error: None,
    };
    for (q, outcome) in mix.queries.iter().zip(&outcomes) {
        nm_telemetry::counter_inc(q.class.counter_name());
        match outcome {
            Outcome::Feasible => summary.feasible += 1,
            Outcome::Infeasible => summary.infeasible += 1,
            Outcome::Error(msg) => {
                summary.errors += 1;
                if summary.first_error.is_none() {
                    summary.first_error = Some(msg.clone());
                }
            }
        }
    }
    nm_telemetry::counter_add(names::LOADGEN_QUERIES, summary.queries as u64);
    nm_telemetry::counter_add(names::LOADGEN_FEASIBLE, summary.feasible);
    nm_telemetry::counter_add(names::LOADGEN_INFEASIBLE, summary.infeasible);
    nm_telemetry::counter_add(names::LOADGEN_ERRORS, summary.errors);
    nm_telemetry::set_gauge(names::LOADGEN_WALL_SECONDS, summary.wall_seconds);
    nm_telemetry::set_gauge(names::LOADGEN_THROUGHPUT_QPS, summary.throughput_qps);
    Ok(summary)
}

fn solve(eval: &Evaluator, mix: &QueryMix, q: &Query) -> Outcome {
    let result = if q.restricted {
        eval.try_solve_restricted(
            &q.spec,
            &mix.restriction.vths,
            &mix.restriction.toxes,
            &Deadline(q.budget),
        )
    } else {
        eval.try_solve(&q.spec, &Deadline(q.budget))
    };
    match result {
        Ok(Some(_)) => Outcome::Feasible,
        Ok(None) => Outcome::Infeasible,
        Err(e) => Outcome::Error(e.to_string()),
    }
}

/// Times a fixed floating-point kernel with the telemetry stopwatch and
/// returns its wall seconds — an absolute host-speed probe. `benchdiff`
/// divides the candidate report's probe by the baseline's, cancelling
/// machine speed out of the p99 regression gate.
fn machine_scale_seconds() -> f64 {
    let clock = Stopwatch::start();
    let mut acc = 0.0f64;
    let mut x = 1.0f64;
    for _ in 0..2_000_000 {
        acc += x.sqrt();
        x += 1e-9;
    }
    std::hint::black_box(acc);
    clock.elapsed_seconds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The telemetry registry is process-global; serialize the tests
    /// that arm it.
    fn registry_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn quick_config(seed: u64, queries: usize) -> LoadgenConfig {
        LoadgenConfig {
            seed,
            queries,
            mode: Mode::Closed,
            quick: true,
        }
    }

    #[test]
    fn closed_loop_replay_accounts_for_every_query() {
        let _guard = registry_lock();
        nm_telemetry::reset();
        let summary = run(&quick_config(2005, 12)).expect("run");
        assert_eq!(summary.queries, 12);
        assert_eq!(
            summary.feasible + summary.infeasible + summary.errors,
            12,
            "{summary:?}"
        );
        assert_eq!(summary.errors, 0, "{:?}", summary.first_error);
        assert!(summary.wall_seconds >= 0.0);
    }

    #[test]
    fn counters_are_replay_deterministic() {
        let _guard = registry_lock();
        nm_telemetry::reset();
        nm_telemetry::enable();
        run(&quick_config(42, 16)).expect("first run");
        let first = nm_telemetry::drain().counters;
        nm_telemetry::enable();
        run(&quick_config(42, 16)).expect("second run");
        let second = nm_telemetry::drain().counters;
        nm_telemetry::disable();
        assert_eq!(first, second);
    }

    #[test]
    fn open_loop_mode_records_target_rate() {
        let _guard = registry_lock();
        nm_telemetry::reset();
        nm_telemetry::enable();
        let summary = run(&LoadgenConfig {
            seed: 3,
            queries: 6,
            mode: Mode::Open { rate_qps: 500.0 },
            quick: true,
        })
        .expect("run");
        let snap = nm_telemetry::drain();
        nm_telemetry::disable();
        assert_eq!(summary.queries, 6);
        assert!(snap
            .gauges
            .get(names::LOADGEN_TARGET_QPS)
            .is_some_and(|&g| g.total_cmp(&500.0).is_eq()));
        assert!(snap
            .notes
            .get(names::LOADGEN_MODE)
            .is_some_and(|m| m.starts_with("open@")));
    }
}
