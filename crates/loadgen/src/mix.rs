//! Seeded query-mix synthesis.
//!
//! A mix is a fixed-length sequence of evaluator queries drawn from five
//! classes that stress different engine paths:
//!
//! * **cold** — two-level specs no other query shares (each gets a
//!   unique die temperature derived from its query *index*), so every
//!   replay builds fresh surfaces and a fresh front;
//! * **warm** — exact repeats of one shared *base spec*, served from the
//!   memoized front cache;
//! * **tuple** — restricted solves over the base spec with one fixed
//!   knob-value restriction, exercising the tuple-search merge path;
//! * **adversarial** — the base spec under a deadline orders of
//!   magnitude below its fastest corner, always infeasible;
//! * **mixed** — three-level mixed-technology specs in the E8 shape,
//!   again with per-index unique temperatures.
//!
//! Synthesis is single-threaded and fully determined by `(seed, count)`:
//! the class sequence, every spec, and every deadline replay
//! byte-identically. Cold and mixed specs derive uniqueness from the
//! query index — never the RNG stream position of another class — so the
//! set of circuits evaluated is stable too. Shared-spec classes are
//! *primed* serially by the runner before parallel replay, which keeps
//! hit/built counters independent of thread interleaving.

use nm_cache_core::eval::HierarchySpec;
use nm_cache_core::groups::{CostKind, Scheme};
use nm_cache_core::mixedtech::{STANDARD_SIZES, STANDARD_WAYS};
use nm_cache_core::twolevel::{BLOCK_BYTES, L1_WAYS, L2_WAYS};
use nm_cache_core::StudyError;
use nm_device::units::Kelvin;
use nm_device::{KnobGrid, TechProfile, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Iso-AMAT slack over each spec's fastest corner, as in the campaign
/// cells.
const SLACK: f64 = 0.15;
/// Base-spec die temperature (°C).
const BASE_TEMP_C: f64 = 80.0;
/// L1 miss rate assumed for all two-level specs.
const L1_MISS: f64 = 0.05;
/// L2 local miss rate assumed for all two-level specs.
const L2_LOCAL_MISS: f64 = 0.3;
/// L3 local miss rate assumed for mixed-technology specs.
const L3_LOCAL_MISS: f64 = 0.4;
/// Main-memory access time (seconds): the paper-era DDR part
/// (`MainMemory::ddr_2005`, 45 ns).
const MEMORY_SECONDS: f64 = 45e-9;
/// L2 capacities the cold class samples from.
const COLD_L2_BYTES: [u64; 3] = [128 * 1024, 256 * 1024, 512 * 1024];

/// Which engine path a query exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// A never-seen two-level spec: full surface + front build.
    Cold,
    /// A repeat of the primed base spec: memoized front hit.
    Warm,
    /// A restricted solve (fixed knob-value subsets) over the base spec.
    Tuple,
    /// The base spec under a hopeless deadline: feasibility miss.
    Adversarial,
    /// A three-level mixed-technology spec in the E8 shape.
    Mixed,
}

impl QueryClass {
    /// All classes, in mix-composition display order.
    pub const ALL: [QueryClass; 5] = [
        QueryClass::Cold,
        QueryClass::Warm,
        QueryClass::Tuple,
        QueryClass::Adversarial,
        QueryClass::Mixed,
    ];

    /// Short lowercase label (`cold`, `warm`, …).
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::Cold => "cold",
            QueryClass::Warm => "warm",
            QueryClass::Tuple => "tuple",
            QueryClass::Adversarial => "adversarial",
            QueryClass::Mixed => "mixed",
        }
    }

    /// The per-class latency histogram name.
    pub fn latency_name(self) -> &'static str {
        match self {
            QueryClass::Cold => crate::names::LOADGEN_LATENCY_COLD,
            QueryClass::Warm => crate::names::LOADGEN_LATENCY_WARM,
            QueryClass::Tuple => crate::names::LOADGEN_LATENCY_TUPLE,
            QueryClass::Adversarial => crate::names::LOADGEN_LATENCY_ADVERSARIAL,
            QueryClass::Mixed => crate::names::LOADGEN_LATENCY_MIXED,
        }
    }

    /// The per-class query counter name.
    pub fn counter_name(self) -> &'static str {
        match self {
            QueryClass::Cold => crate::names::LOADGEN_CLASS_COLD,
            QueryClass::Warm => crate::names::LOADGEN_CLASS_WARM,
            QueryClass::Tuple => crate::names::LOADGEN_CLASS_TUPLE,
            QueryClass::Adversarial => crate::names::LOADGEN_CLASS_ADVERSARIAL,
            QueryClass::Mixed => crate::names::LOADGEN_CLASS_MIXED,
        }
    }
}

/// The fixed knob-value restriction all tuple queries share: every grid
/// value except the largest on each axis. One shared restriction means
/// every tuple query after the serial prime re-merges the identical
/// restricted groups and reuses the full cached prefix, so merge
/// counters do not depend on replay interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct Restriction {
    /// Allowed `Vth` values (volts).
    pub vths: Vec<f64>,
    /// Allowed `Tox` values (ångströms).
    pub toxes: Vec<f64>,
}

impl Restriction {
    fn from_grid(grid: &KnobGrid) -> Restriction {
        let take = |n: usize| if n > 1 { n - 1 } else { n };
        let vths: Vec<f64> = grid.vth_values().iter().map(|v| v.0).collect();
        let toxes: Vec<f64> = grid.tox_values().iter().map(|t| t.0).collect();
        let nv = take(vths.len());
        let nt = take(toxes.len());
        Restriction {
            vths: vths[..nv].to_vec(),
            toxes: toxes[..nt].to_vec(),
        }
    }
}

/// One replayable query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Position in the mix (drives open-loop arrival times and the
    /// unique temperatures of cold/mixed specs).
    pub index: usize,
    /// Engine path this query exercises.
    pub class: QueryClass,
    /// The hierarchy to optimise.
    pub spec: HierarchySpec,
    /// Deadline budget in weighted-delay seconds.
    pub budget: f64,
    /// Knob-value restriction (tuple class only).
    pub restricted: bool,
}

/// A synthesized mix plus the shared state the runner primes serially.
#[derive(Debug, Clone)]
pub struct QueryMix {
    /// The queries, in replay-submission order.
    pub queries: Vec<Query>,
    /// The shared spec warm/tuple/adversarial queries target.
    pub base_spec: HierarchySpec,
    /// The base spec's iso-AMAT budget.
    pub base_budget: f64,
    /// The fixed restriction tuple queries apply to the base spec.
    pub restriction: Restriction,
    counts: [usize; 5],
}

impl QueryMix {
    /// Synthesizes `count` queries from `seed` against `grid`.
    ///
    /// # Errors
    ///
    /// Propagates impossible cache geometry or out-of-range miss rates
    /// from spec construction (none occur for the built-in shapes).
    pub fn synthesize(seed: u64, count: usize, grid: &KnobGrid) -> Result<QueryMix, StudyError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (base_spec, base_budget) = base_spec()?;
        let restriction = Restriction::from_grid(grid);
        let mut queries = Vec::with_capacity(count);
        let mut counts = [0usize; 5];
        for index in 0..count {
            let roll: u32 = rng.gen_range(0..100);
            let class = match roll {
                0..=14 => QueryClass::Cold,
                15..=54 => QueryClass::Warm,
                55..=74 => QueryClass::Tuple,
                75..=89 => QueryClass::Adversarial,
                _ => QueryClass::Mixed,
            };
            let query = match class {
                QueryClass::Cold => cold_query(index, &mut rng)?,
                QueryClass::Warm => Query {
                    index,
                    class,
                    spec: base_spec.clone(),
                    budget: base_budget,
                    restricted: false,
                },
                QueryClass::Tuple => Query {
                    index,
                    class,
                    spec: base_spec.clone(),
                    budget: base_budget,
                    restricted: true,
                },
                QueryClass::Adversarial => {
                    // Log-uniform deadline shrink of 1e-6 .. 1e-2: far
                    // below the fastest corner, so never satisfiable.
                    let factor = 10f64.powf(rng.gen_range(-6.0..-2.0));
                    Query {
                        index,
                        class,
                        spec: base_spec.clone(),
                        budget: base_budget * factor,
                        restricted: false,
                    }
                }
                QueryClass::Mixed => mixed_query(index, &mut rng)?,
            };
            counts[class_slot(class)] += 1;
            queries.push(query);
        }
        Ok(QueryMix {
            queries,
            base_spec,
            base_budget,
            restriction,
            counts,
        })
    }

    /// `true` when at least one tuple query is present (the runner then
    /// primes the restricted merge base).
    pub fn has_tuple_queries(&self) -> bool {
        self.counts[class_slot(QueryClass::Tuple)] > 0
    }

    /// The mix composition as a stable note string,
    /// `cold=N,warm=N,tuple=N,adversarial=N,mixed=N`.
    pub fn composition(&self) -> String {
        let parts: Vec<String> = QueryClass::ALL
            .iter()
            .map(|&c| format!("{}={}", c.label(), self.counts[class_slot(c)]))
            .collect();
        parts.join(",")
    }
}

fn class_slot(class: QueryClass) -> usize {
    match class {
        QueryClass::Cold => 0,
        QueryClass::Warm => 1,
        QueryClass::Tuple => 2,
        QueryClass::Adversarial => 3,
        QueryClass::Mixed => 4,
    }
}

/// A query's unique die temperature: derived from the query *index*
/// alone so the circuit set is independent of RNG draws made for other
/// classes, and nudged off the base spec's 80 °C so a cold spec can
/// never alias the primed one.
fn unique_temp_c(index: usize) -> f64 {
    let t = 45.0 + index as f64 * 0.01;
    if (t - BASE_TEMP_C).abs() < 1e-9 {
        t + 0.005
    } else {
        t
    }
}

/// Iso-AMAT deadline budget for `spec`: `(1 + SLACK)` over its fastest
/// corner plus the knob-independent memory floor, floor subtracted back
/// out (the evaluator prices weighted cache delay only).
fn iso_amat_budget(spec: &HierarchySpec, floor_seconds: f64) -> f64 {
    let min_weighted: f64 = spec
        .levels()
        .iter()
        .map(|l| l.circuit().fastest_access_time().0 * l.delay_weight())
        .sum();
    (floor_seconds + min_weighted) * (1.0 + SLACK) - floor_seconds
}

/// The shared base spec: the campaign's 16 KB L1 / 256 KB L2 uniform
/// cell at 80 °C.
fn base_spec() -> Result<(HierarchySpec, f64), StudyError> {
    let node = TechnologyNode::bptm65().at_temperature(Kelvin::from_celsius(BASE_TEMP_C));
    let spec = two_level_spec(&node, 16 * 1024, 256 * 1024)?;
    let floor = MEMORY_SECONDS * L1_MISS * L2_LOCAL_MISS;
    let budget = iso_amat_budget(&spec, floor);
    Ok((spec, budget))
}

fn two_level_spec(
    node: &TechnologyNode,
    l1_bytes: u64,
    l2_bytes: u64,
) -> Result<HierarchySpec, StudyError> {
    let l1 = CacheCircuit::new(CacheConfig::new(l1_bytes, BLOCK_BYTES, L1_WAYS)?, node);
    let l2 = CacheCircuit::new(CacheConfig::new(l2_bytes, BLOCK_BYTES, L2_WAYS)?, node);
    let weights = HierarchySpec::try_amat_weights(&[L1_MISS])?;
    Ok(HierarchySpec::new()
        .level(
            "L1",
            l1,
            Scheme::Uniform,
            weights[0],
            CostKind::LeakagePower,
        )
        .level(
            "L2",
            l2,
            Scheme::Uniform,
            weights[1],
            CostKind::LeakagePower,
        ))
}

fn cold_query(index: usize, rng: &mut StdRng) -> Result<Query, StudyError> {
    let node = TechnologyNode::bptm65().at_temperature(Kelvin::from_celsius(unique_temp_c(index)));
    let l2_bytes = COLD_L2_BYTES[rng.gen_range(0..COLD_L2_BYTES.len())];
    let spec = two_level_spec(&node, 16 * 1024, l2_bytes)?;
    let floor = MEMORY_SECONDS * L1_MISS * L2_LOCAL_MISS;
    let budget = iso_amat_budget(&spec, floor);
    Ok(Query {
        index,
        class: QueryClass::Cold,
        spec,
        budget,
        restricted: false,
    })
}

fn mixed_query(index: usize, rng: &mut StdRng) -> Result<Query, StudyError> {
    let node = TechnologyNode::bptm65().at_temperature(Kelvin::from_celsius(unique_temp_c(index)));
    let l3_name = TechProfile::KNOWN_NAMES[rng.gen_range(0..TechProfile::KNOWN_NAMES.len())];
    let l3_profile = TechProfile::by_name(l3_name).unwrap_or_else(TechProfile::sram);
    let profiles = [TechProfile::sram(), TechProfile::sram(), l3_profile];
    let weights = HierarchySpec::try_amat_weights(&[L1_MISS, L2_LOCAL_MISS])?;
    let mut spec = HierarchySpec::new();
    for (i, label) in ["L1", "L2", "L3"].iter().enumerate() {
        let circuit = CacheCircuit::with_technology(
            CacheConfig::new(STANDARD_SIZES[i], BLOCK_BYTES, STANDARD_WAYS[i])?,
            &node,
            profiles[i].clone(),
        );
        spec = spec.level(
            *label,
            circuit,
            Scheme::Split,
            weights[i],
            CostKind::LeakagePower,
        );
    }
    let floor = MEMORY_SECONDS * L1_MISS * L2_LOCAL_MISS * L3_LOCAL_MISS;
    let budget = iso_amat_budget(&spec, floor);
    Ok(Query {
        index,
        class: QueryClass::Mixed,
        spec,
        budget,
        restricted: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_mix() {
        let grid = KnobGrid::coarse();
        let a = QueryMix::synthesize(7, 40, &grid).expect("mix");
        let b = QueryMix::synthesize(7, 40, &grid).expect("mix");
        assert_eq!(a.composition(), b.composition());
        assert_eq!(a.queries.len(), 40);
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.class, qb.class);
            assert_eq!(qa.spec, qb.spec);
            assert!(qa.budget.total_cmp(&qb.budget).is_eq());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let grid = KnobGrid::coarse();
        let a = QueryMix::synthesize(1, 60, &grid).expect("mix");
        let b = QueryMix::synthesize(2, 60, &grid).expect("mix");
        let same_classes = a
            .queries
            .iter()
            .zip(&b.queries)
            .all(|(qa, qb)| qa.class == qb.class);
        assert!(!same_classes, "seeds 1 and 2 produced identical mixes");
    }

    #[test]
    fn shared_classes_reuse_the_base_spec() {
        let grid = KnobGrid::coarse();
        let mix = QueryMix::synthesize(2005, 80, &grid).expect("mix");
        for q in &mix.queries {
            match q.class {
                QueryClass::Warm | QueryClass::Tuple | QueryClass::Adversarial => {
                    assert_eq!(q.spec, mix.base_spec, "query {} shares base", q.index);
                }
                QueryClass::Cold | QueryClass::Mixed => {
                    assert_ne!(q.spec, mix.base_spec, "query {} is unique", q.index);
                }
            }
            if q.class == QueryClass::Adversarial {
                assert!(q.budget < mix.base_budget * 0.011);
            }
        }
    }

    #[test]
    fn cold_specs_are_pairwise_distinct() {
        let grid = KnobGrid::coarse();
        let mix = QueryMix::synthesize(11, 120, &grid).expect("mix");
        let uniques: Vec<&Query> = mix
            .queries
            .iter()
            .filter(|q| matches!(q.class, QueryClass::Cold | QueryClass::Mixed))
            .collect();
        for (i, a) in uniques.iter().enumerate() {
            for b in &uniques[i + 1..] {
                assert_ne!(a.spec, b.spec, "queries {} and {}", a.index, b.index);
            }
        }
    }

    #[test]
    fn restriction_drops_the_largest_knob_values() {
        let grid = KnobGrid::coarse();
        let r = Restriction::from_grid(&grid);
        assert_eq!(r.vths.len(), grid.vth_values().len() - 1);
        assert_eq!(r.toxes.len(), grid.tox_values().len() - 1);
    }
}
