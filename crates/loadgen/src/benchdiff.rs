//! Report comparison and the SLO regression gate.
//!
//! [`diff`] parses two schema-versioned `nm-telemetry` reports (the
//! committed baseline and a fresh candidate — typically two
//! `BENCH_serve.json` files), pairs up their histograms and gauges, and
//! flags every histogram whose candidate p99 exceeds `max_ratio` times
//! the baseline p99 *after* host-speed normalization: when both reports
//! carry the `slo.machine_scale` calibration gauge, the p99 ratio is
//! divided by the scale ratio so a slower CI box is not mistaken for a
//! regression.

use crate::names;
use serde_json::Value;
use std::collections::BTreeMap;

/// Highest allowed normalized candidate/baseline p99 ratio before a
/// histogram counts as regressed.
pub const DEFAULT_MAX_RATIO: f64 = 2.0;

/// Why a comparison could not run. The CLI maps `Parse`/`Schema` to the
/// usage exit code — both mean "these are not two comparable reports".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// A file was not valid JSON.
    Parse(String),
    /// A file parsed but is not a comparable metrics report (missing
    /// sections, wrong types, or an unexpected `schema_version`).
    Schema(String),
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::Parse(msg) => write!(f, "report is not valid JSON: {msg}"),
            DiffError::Schema(msg) => write!(f, "report is not comparable: {msg}"),
        }
    }
}

impl std::error::Error for DiffError {}

/// One compared histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDiff {
    /// Histogram name.
    pub name: String,
    /// Baseline p99 (seconds).
    pub base_p99: f64,
    /// Candidate p99 (seconds).
    pub cand_p99: f64,
    /// Candidate/baseline p99 ratio after machine-scale normalization.
    pub ratio: f64,
    /// Whether `ratio` exceeds the configured maximum.
    pub regressed: bool,
}

/// One compared gauge (informational — gauges never gate).
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeDiff {
    /// Gauge name.
    pub name: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub cand: f64,
}

/// The full comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Candidate/baseline host-speed ratio applied to every p99 ratio
    /// (`1.0` when either report lacks the calibration gauge).
    pub machine_scale: f64,
    /// Histograms present in both reports, in name order.
    pub histograms: Vec<HistogramDiff>,
    /// Gauges present in both reports, in name order.
    pub gauges: Vec<GaugeDiff>,
}

impl DiffReport {
    /// Number of regressed histograms.
    pub fn regressions(&self) -> usize {
        self.histograms.iter().filter(|h| h.regressed).count()
    }
}

/// Compares two rendered report documents.
///
/// # Errors
///
/// [`DiffError::Parse`] when either document is not JSON;
/// [`DiffError::Schema`] when either is not a
/// `schema_version`-compatible metrics report.
pub fn diff(baseline: &str, candidate: &str, max_ratio: f64) -> Result<DiffReport, DiffError> {
    let base = parse_report(baseline, "baseline")?;
    let cand = parse_report(candidate, "candidate")?;

    let machine_scale = match (
        base.gauges.get(names::SLO_MACHINE_SCALE),
        cand.gauges.get(names::SLO_MACHINE_SCALE),
    ) {
        (Some(&b), Some(&c)) if b > 0.0 && c > 0.0 => c / b,
        _ => 1.0,
    };

    let mut histograms = Vec::new();
    for (name, base_p99) in &base.p99s {
        let Some(&cand_p99) = cand.p99s.get(name) else {
            continue;
        };
        // A zero or absent baseline p99 cannot define a ratio — typical
        // for empty histograms; skip rather than divide by zero.
        if *base_p99 <= 0.0 {
            continue;
        }
        let ratio = (cand_p99 / base_p99) / machine_scale;
        histograms.push(HistogramDiff {
            name: name.clone(),
            base_p99: *base_p99,
            cand_p99,
            ratio,
            regressed: ratio > max_ratio,
        });
    }

    let mut gauges = Vec::new();
    for (name, &b) in &base.gauges {
        if let Some(&c) = cand.gauges.get(name) {
            gauges.push(GaugeDiff {
                name: name.clone(),
                base: b,
                cand: c,
            });
        }
    }

    Ok(DiffReport {
        machine_scale,
        histograms,
        gauges,
    })
}

struct ParsedReport {
    p99s: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
}

fn numeric(value: &Value) -> Option<f64> {
    match value {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(n) => Some(*n),
        _ => None,
    }
}

fn parse_report(text: &str, which: &str) -> Result<ParsedReport, DiffError> {
    let value =
        serde_json::parse_value(text).map_err(|e| DiffError::Parse(format!("{which}: {}", e.0)))?;
    let schema = value
        .get("schema_version")
        .and_then(numeric)
        .ok_or_else(|| DiffError::Schema(format!("{which}: missing schema_version")))?;
    let expected = nm_telemetry::SCHEMA_VERSION as f64;
    if schema.total_cmp(&expected).is_ne() {
        return Err(DiffError::Schema(format!(
            "{which}: schema_version {schema} (expected {expected})"
        )));
    }
    let histograms = value
        .get("histograms")
        .and_then(Value::as_object)
        .ok_or_else(|| DiffError::Schema(format!("{which}: missing histograms section")))?;
    let mut p99s = BTreeMap::new();
    for (name, entry) in histograms {
        let p99 = entry.get("p99").and_then(numeric).ok_or_else(|| {
            DiffError::Schema(format!("{which}: histogram {name:?} has no numeric p99"))
        })?;
        p99s.insert(name.clone(), p99);
    }
    let gauge_pairs = value
        .get("gauges")
        .and_then(Value::as_object)
        .ok_or_else(|| DiffError::Schema(format!("{which}: missing gauges section")))?;
    let mut gauges = BTreeMap::new();
    for (name, entry) in gauge_pairs {
        // Non-finite gauges render as JSON null; skip them.
        if let Some(v) = numeric(entry) {
            gauges.insert(name.clone(), v);
        }
    }
    Ok(ParsedReport { p99s, gauges })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(p99s: &[(&str, f64)], scale: Option<f64>) -> String {
        let mut hists = String::new();
        for (i, (name, p99)) in p99s.iter().enumerate() {
            if i > 0 {
                hists.push(',');
            }
            hists.push_str(&format!(
                "\"{name}\": {{\"count\": 10, \"sum\": 1.0, \"min\": 0.001, \
                 \"max\": {p99}, \"mean\": 0.1, \"p50\": 0.001, \"p95\": {p99}, \
                 \"p99\": {p99}}}"
            ));
        }
        let gauges = match scale {
            Some(s) => format!("{{\"slo.machine_scale\": {s}}}"),
            None => "{}".to_owned(),
        };
        format!(
            "{{\"schema_version\": {}, \"generator\": \"nm-telemetry\", \
             \"notes\": {{}}, \"counters\": {{}}, \"gauges\": {gauges}, \
             \"spans\": {{}}, \"histograms\": {{{hists}}}, \"sweeps\": []}}",
            nm_telemetry::SCHEMA_VERSION
        )
    }

    #[test]
    fn self_comparison_never_regresses() {
        let doc = report(&[("a.latency", 0.5), ("b.latency", 0.01)], Some(0.02));
        let out = diff(&doc, &doc, DEFAULT_MAX_RATIO).expect("diff");
        assert_eq!(out.regressions(), 0);
        assert_eq!(out.histograms.len(), 2);
        assert!(out.machine_scale.total_cmp(&1.0).is_eq());
    }

    #[test]
    fn three_x_p99_regression_is_flagged() {
        let base = report(&[("a.latency", 0.1)], None);
        let cand = report(&[("a.latency", 0.3)], None);
        let out = diff(&base, &cand, DEFAULT_MAX_RATIO).expect("diff");
        assert_eq!(out.regressions(), 1);
        assert!(out.histograms[0].regressed);
        assert!((out.histograms[0].ratio - 3.0).abs() < 1e-12);
    }

    #[test]
    fn machine_scale_normalizes_a_uniformly_slower_host() {
        // Candidate host is 3x slower: both the p99 and the calibration
        // probe tripled, so the normalized ratio is 1 — no regression.
        let base = report(&[("a.latency", 0.1)], Some(0.01));
        let cand = report(&[("a.latency", 0.3)], Some(0.03));
        let out = diff(&base, &cand, DEFAULT_MAX_RATIO).expect("diff");
        assert_eq!(out.regressions(), 0);
        assert!((out.histograms[0].ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_p99_is_skipped_not_divided() {
        let base = report(&[("a.latency", 0.0)], None);
        let cand = report(&[("a.latency", 0.3)], None);
        let out = diff(&base, &cand, DEFAULT_MAX_RATIO).expect("diff");
        assert!(out.histograms.is_empty());
    }

    #[test]
    fn malformed_and_mismatched_reports_are_rejected() {
        let good = report(&[], None);
        assert!(matches!(
            diff("not json", &good, DEFAULT_MAX_RATIO),
            Err(DiffError::Parse(_))
        ));
        assert!(matches!(
            diff("{}", &good, DEFAULT_MAX_RATIO),
            Err(DiffError::Schema(_))
        ));
        let old = good.replace(
            &format!("\"schema_version\": {}", nm_telemetry::SCHEMA_VERSION),
            "\"schema_version\": 1",
        );
        assert!(matches!(
            diff(&old, &good, DEFAULT_MAX_RATIO),
            Err(DiffError::Schema(_))
        ));
    }
}
