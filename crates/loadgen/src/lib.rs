//! Deterministic query-mix load generation and SLO regression gating
//! for the nmcache evaluation engine.
//!
//! Three pieces:
//!
//! * [`mix`] — seeded synthesis of a five-class query mix (cold, warm,
//!   tuple-search, adversarial, mixed-technology) that is byte-stable
//!   for a fixed `(seed, count)`;
//! * [`run`] — replay of a mix against one shared in-process
//!   [`Evaluator`](nm_cache_core::eval::Evaluator) through the bounded
//!   `nm-sweep` pool, in closed- or open-loop mode, recording per-class
//!   latency histograms and throughput into the telemetry registry (the
//!   CLI publishes the drained registry as `BENCH_serve.json`);
//! * [`benchdiff`] — comparison of two published reports with a
//!   host-speed-normalized p99 gate, backing the `nmcache benchdiff`
//!   subcommand and its CI job.
//!
//! All timing goes through `nm_telemetry::Stopwatch` (rule D3) and all
//! parallelism through `nm_sweep::ParallelSweep` (rule D5); every
//! telemetry name this crate records is declared in [`names`] and
//! mirrored in the workspace manifest (rule D6).

pub mod benchdiff;
pub mod mix;
pub mod names;
pub mod run;

pub use benchdiff::{diff, DiffError, DiffReport, DEFAULT_MAX_RATIO};
pub use mix::{Query, QueryClass, QueryMix};
pub use run::{run, LoadgenConfig, LoadgenSummary, Mode};
