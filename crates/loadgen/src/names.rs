//! Canonical telemetry names recorded by the load generator. Every
//! constant here is mirrored in the workspace `telemetry_names.txt`
//! manifest; `nm-analyze`'s D6 rule checks the two stay in sync.

/// Counter: total queries replayed this run.
pub const LOADGEN_QUERIES: &str = "loadgen.queries";
/// Counter: queries whose constraint was satisfiable.
pub const LOADGEN_FEASIBLE: &str = "loadgen.feasible";
/// Counter: queries whose constraint was infeasible (a valid outcome —
/// the adversarial class is built to land here).
pub const LOADGEN_INFEASIBLE: &str = "loadgen.infeasible";
/// Counter: queries that failed with an evaluation error.
pub const LOADGEN_ERRORS: &str = "loadgen.errors";
/// Counter: queries in the cold class (never-seen specs).
pub const LOADGEN_CLASS_COLD: &str = "loadgen.class.cold";
/// Counter: queries in the warm class (repeats of the primed spec).
pub const LOADGEN_CLASS_WARM: &str = "loadgen.class.warm";
/// Counter: queries in the tuple-search class (restricted solves).
pub const LOADGEN_CLASS_TUPLE: &str = "loadgen.class.tuple";
/// Counter: queries in the adversarial near-infeasible class.
pub const LOADGEN_CLASS_ADVERSARIAL: &str = "loadgen.class.adversarial";
/// Counter: queries in the mixed-technology three-level class.
pub const LOADGEN_CLASS_MIXED: &str = "loadgen.class.mixed";
/// Histogram: per-query latency in seconds, all classes pooled.
pub const LOADGEN_LATENCY_ALL: &str = "loadgen.latency.all";
/// Histogram: per-query latency in seconds, cold class.
pub const LOADGEN_LATENCY_COLD: &str = "loadgen.latency.cold";
/// Histogram: per-query latency in seconds, warm class.
pub const LOADGEN_LATENCY_WARM: &str = "loadgen.latency.warm";
/// Histogram: per-query latency in seconds, tuple-search class.
pub const LOADGEN_LATENCY_TUPLE: &str = "loadgen.latency.tuple";
/// Histogram: per-query latency in seconds, adversarial class.
pub const LOADGEN_LATENCY_ADVERSARIAL: &str = "loadgen.latency.adversarial";
/// Histogram: per-query latency in seconds, mixed-technology class.
pub const LOADGEN_LATENCY_MIXED: &str = "loadgen.latency.mixed";
/// Gauge: wall-clock seconds for the whole replay.
pub const LOADGEN_WALL_SECONDS: &str = "loadgen.wall_seconds";
/// Gauge: achieved throughput in queries per second.
pub const LOADGEN_THROUGHPUT_QPS: &str = "loadgen.throughput_qps";
/// Gauge: open-loop target arrival rate (0 in closed-loop mode).
pub const LOADGEN_TARGET_QPS: &str = "loadgen.target_qps";
/// Gauge: seconds this machine takes to run a fixed floating-point
/// calibration kernel. `benchdiff` divides candidate by baseline scale
/// so the p99 gate compares workloads, not host speeds.
pub const SLO_MACHINE_SCALE: &str = "slo.machine_scale";
/// Note: the mix seed, echoed for reproduction.
pub const LOADGEN_SEED: &str = "loadgen.seed";
/// Note: replay mode, `closed` or `open@<rate>`.
pub const LOADGEN_MODE: &str = "loadgen.mode";
/// Note: query-mix composition, `cold=N,warm=N,tuple=N,adversarial=N,mixed=N`.
pub const LOADGEN_MIX: &str = "loadgen.mix";
