//! Reference-stream statistics: working-set estimation.
//!
//! Used to audit the synthetic suites against the paper's assumptions
//! (and available to users sizing caches for their own traces).

use crate::access::Access;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Footprint summary of a reference window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkingSet {
    /// References observed.
    pub references: u64,
    /// Distinct blocks touched.
    pub unique_blocks: u64,
    /// Block size the estimate was taken at.
    pub block_bytes: u64,
}

impl WorkingSet {
    /// Footprint in bytes (`unique_blocks · block_bytes`).
    pub fn bytes(&self) -> u64 {
        self.unique_blocks * self.block_bytes
    }
}

/// Measures the working set of the next `references` accesses of a
/// workload at a given block granularity.
///
/// # Panics
///
/// Panics when `block_bytes` is not a power of two.
///
/// ```
/// use nm_archsim::stats::working_set;
/// use nm_archsim::workload::SuiteKind;
///
/// let mut w = SuiteKind::Spec2000.build(1);
/// let ws = working_set(w.as_mut(), 50_000, 64);
/// // The spec-like stream touches hundreds of KB (streamed arrays).
/// assert!(ws.bytes() > 64 * 1024, "{} bytes", ws.bytes());
/// ```
pub fn working_set(
    workload: &mut (dyn Workload + Send),
    references: u64,
    block_bytes: u64,
) -> WorkingSet {
    assert!(
        block_bytes.is_power_of_two(),
        "block size must be a power of two, got {block_bytes}"
    );
    let mut blocks: BTreeSet<u64> = BTreeSet::new();
    for _ in 0..references {
        let a: Access = workload.next_access();
        blocks.insert(a.addr / block_bytes);
    }
    WorkingSet {
        references,
        unique_blocks: blocks.len() as u64,
        block_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SuiteKind;

    #[test]
    fn footprints_order_by_design() {
        // TPC-C's record table (32 MB, Zipf) has a far larger footprint
        // than the spec-like loops (1.5 MB of arrays), and the pointer
        // chaser roams its whole 8 MB heap.
        let ws = |kind: SuiteKind| {
            let mut w = kind.build(3);
            working_set(w.as_mut(), 200_000, 64).bytes()
        };
        let spec = ws(SuiteKind::Spec2000);
        let tpcc = ws(SuiteKind::TpcC);
        assert!(
            tpcc > spec,
            "tpcc {} KB ≤ spec {} KB",
            tpcc / 1024,
            spec / 1024
        );
    }

    #[test]
    fn working_set_grows_with_window() {
        let mut w = SuiteKind::SpecWeb.build(5);
        let small = working_set(w.as_mut(), 10_000, 64).unique_blocks;
        let mut w = SuiteKind::SpecWeb.build(5);
        let large = working_set(w.as_mut(), 100_000, 64).unique_blocks;
        assert!(large >= small);
    }

    #[test]
    fn block_size_coarsens_the_estimate() {
        let mut a = SuiteKind::Spec2000.build(9);
        let fine = working_set(a.as_mut(), 50_000, 64);
        let mut b = SuiteKind::Spec2000.build(9);
        let coarse = working_set(b.as_mut(), 50_000, 4096);
        assert!(coarse.unique_blocks <= fine.unique_blocks);
        assert_eq!(fine.references, 50_000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_block_size_panics() {
        let mut w = SuiteKind::Spec2000.build(1);
        let _ = working_set(w.as_mut(), 10, 100);
    }
}
