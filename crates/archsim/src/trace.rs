//! Reading, writing and replaying reference traces.
//!
//! The synthetic generators in [`crate::workload`] stand in for the
//! paper's benchmark suites, but users with real traces (e.g. from a
//! full-system simulator) can feed them through the same pipeline. The
//! format is one reference per line, `R` or `W` followed by a hex or
//! decimal byte address:
//!
//! ```text
//! R 0x7fff0040
//! W 0x1000
//! R 4096
//! ```
//!
//! Blank lines and lines starting with `#` are ignored.

use crate::access::{Access, AccessKind};
use crate::workload::Workload;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Errors from trace parsing.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A corrupt binary trace: bad magic, unsupported version, bad kind
    /// byte, or a truncated record.
    Corrupt {
        /// Byte offset of the corruption within the input.
        offset: u64,
        /// What was wrong at that offset.
        detail: &'static str,
    },
    /// A binary trace declared more records than the reader's cap —
    /// either a corrupt length or an input too large to replay.
    TooLarge {
        /// Records read before giving up.
        records: u64,
        /// The configured record cap.
        limit: u64,
    },
    /// A trace with no references where at least one is required.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o: {e}"),
            TraceError::Parse { line, text } => {
                write!(f, "trace line {line} is malformed: {text:?}")
            }
            TraceError::Corrupt { offset, detail } => {
                write!(f, "binary trace corrupt at byte offset {offset}: {detail}")
            }
            TraceError::TooLarge { records, limit } => write!(
                f,
                "binary trace exceeds the record cap ({records} read, limit {limit})"
            ),
            TraceError::Empty => write!(f, "trace must contain at least one access"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Parses one trace line (without comment/blank filtering).
fn parse_line(line: &str, number: usize) -> Result<Access, TraceError> {
    let malformed = || TraceError::Parse {
        line: number,
        text: line.to_owned(),
    };
    let mut parts = line.split_whitespace();
    let kind = match parts.next().ok_or_else(malformed)? {
        "R" | "r" => AccessKind::Read,
        "W" | "w" => AccessKind::Write,
        _ => return Err(malformed()),
    };
    let addr_text = parts.next().ok_or_else(malformed)?;
    if parts.next().is_some() {
        return Err(malformed());
    }
    let addr = if let Some(hex) = addr_text
        .strip_prefix("0x")
        .or_else(|| addr_text.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).map_err(|_| malformed())?
    } else {
        addr_text.parse().map_err(|_| malformed())?
    };
    Ok(Access { addr, kind })
}

/// Reads a whole trace from any reader (note a `&mut R` also works, per
/// the usual `Read` blanket impl).
///
/// # Errors
///
/// [`TraceError::Io`] on read failure, [`TraceError::Parse`] on a
/// malformed line.
pub fn read_trace<R: Read>(reader: R) -> Result<Vec<Access>, TraceError> {
    let _span = nm_telemetry::span(crate::names::TRACE_READ);
    let mut out = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(parse_line(trimmed, i + 1)?);
    }
    nm_telemetry::counter_add(crate::names::TRACE_RECORDS, out.len() as u64);
    Ok(out)
}

/// Writes a trace to any writer in the canonical hex format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write, I: IntoIterator<Item = Access>>(
    mut writer: W,
    accesses: I,
) -> io::Result<()> {
    for a in accesses {
        writeln!(writer, "{} {:#x}", a.kind, a.addr)?;
    }
    Ok(())
}

/// Magic bytes opening a binary trace file.
pub const BINARY_MAGIC: [u8; 4] = *b"NMTR";

/// Binary trace format version.
pub const BINARY_VERSION: u8 = 1;

/// Writes a trace in the compact binary format: the magic, a version
/// byte, then 9 bytes per record (1 kind byte: `0` read / `1` write, then
/// the address little-endian).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace_binary<W: Write, I: IntoIterator<Item = Access>>(
    mut writer: W,
    accesses: I,
) -> io::Result<()> {
    writer.write_all(&BINARY_MAGIC)?;
    writer.write_all(&[BINARY_VERSION])?;
    for a in accesses {
        let kind = match a.kind {
            AccessKind::Read => 0u8,
            AccessKind::Write => 1u8,
        };
        writer.write_all(&[kind])?;
        writer.write_all(&a.addr.to_le_bytes())?;
    }
    Ok(())
}

/// Size of the binary header (magic + version byte).
const BINARY_HEADER_BYTES: u64 = 5;

/// Size of one binary record (kind byte + little-endian address).
const BINARY_RECORD_BYTES: u64 = 9;

/// Default record cap for [`read_trace_binary`]: ~2.4 GB of records —
/// far beyond any real workload, close enough to stop a corrupt or
/// hostile length from exhausting memory.
pub const MAX_BINARY_RECORDS: u64 = 1 << 28;

/// Reads a binary trace written by [`write_trace_binary`], capped at
/// [`MAX_BINARY_RECORDS`] records.
///
/// # Errors
///
/// [`TraceError::Io`] on read failure; [`TraceError::Corrupt`] with the
/// byte offset of the damage on a bad magic, unsupported version, bad
/// kind byte, or truncated record; [`TraceError::TooLarge`] past the
/// record cap.
pub fn read_trace_binary<R: Read>(reader: R) -> Result<Vec<Access>, TraceError> {
    read_trace_binary_limited(reader, MAX_BINARY_RECORDS)
}

/// [`read_trace_binary`] with an explicit record cap.
///
/// Record `n` (1-based) starts at byte offset `5 + 9·(n − 1)`; every
/// corruption error names the exact offset so a damaged capture can be
/// inspected with a hex dump.
///
/// # Errors
///
/// As [`read_trace_binary`], with `limit` as the cap.
pub fn read_trace_binary_limited<R: Read>(
    mut reader: R,
    limit: u64,
) -> Result<Vec<Access>, TraceError> {
    let _span = nm_telemetry::span(crate::names::TRACE_READ_BINARY);
    let corrupt = |offset: u64, detail: &'static str| TraceError::Corrupt { offset, detail };
    let mut header = [0u8; BINARY_HEADER_BYTES as usize];
    reader
        .read_exact(&mut header)
        .map_err(|_| corrupt(0, "missing or truncated header"))?;
    if header[..4] != BINARY_MAGIC {
        return Err(corrupt(0, "bad magic (not an nmcache binary trace)"));
    }
    if header[4] != BINARY_VERSION {
        return Err(corrupt(4, "unsupported binary trace version"));
    }
    let mut out = Vec::new();
    let mut record = [0u8; BINARY_RECORD_BYTES as usize];
    let mut n = 0u64;
    loop {
        let record_offset = BINARY_HEADER_BYTES + BINARY_RECORD_BYTES * n;
        // Peek one byte to distinguish clean EOF from truncation.
        let mut first = [0u8; 1];
        match reader.read(&mut first) {
            Ok(0) => {
                nm_telemetry::counter_add(crate::names::TRACE_RECORDS, out.len() as u64);
                return Ok(out);
            }
            Ok(_) => {}
            Err(e) => return Err(TraceError::Io(e)),
        }
        n += 1;
        if n > limit {
            return Err(TraceError::TooLarge {
                records: n - 1,
                limit,
            });
        }
        record[0] = first[0];
        reader
            .read_exact(&mut record[1..])
            .map_err(|_| corrupt(record_offset, "truncated record"))?;
        let kind = match record[0] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            _ => return Err(corrupt(record_offset, "bad kind byte")),
        };
        let mut addr_bytes = [0u8; 8];
        addr_bytes.copy_from_slice(&record[1..]);
        let addr = u64::from_le_bytes(addr_bytes);
        out.push(Access { addr, kind });
    }
}

/// A [`Workload`] that replays a recorded trace, cycling when exhausted.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    accesses: Vec<Access>,
    position: usize,
}

impl TraceWorkload {
    /// Wraps a recorded trace.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace — an endless generator needs at least one
    /// reference. Use [`try_new`](Self::try_new) where an empty trace is
    /// an input error rather than a bug.
    pub fn new(accesses: Vec<Access>) -> Self {
        Self::try_new(accesses).unwrap_or_else(|_| panic!("trace must contain at least one access"))
    }

    /// Wraps a recorded trace, rejecting an empty one with a typed error.
    ///
    /// # Errors
    ///
    /// [`TraceError::Empty`] when `accesses` holds no references.
    pub fn try_new(accesses: Vec<Access>) -> Result<Self, TraceError> {
        if accesses.is_empty() {
            return Err(TraceError::Empty);
        }
        Ok(TraceWorkload {
            accesses,
            position: 0,
        })
    }

    /// Number of recorded references.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Always `false` (construction rejects empty traces).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Workload for TraceWorkload {
    fn next_access(&mut self) -> Access {
        let a = self.accesses[self.position];
        self.position = (self.position + 1) % self.accesses.len();
        a
    }

    fn name(&self) -> &'static str {
        "trace-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = vec![
            Access::read(0x1000),
            Access::write(0x2040),
            Access::read(64),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, trace.clone()).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn parses_hex_and_decimal_and_case() {
        let text = "R 0x40\nw 0X80\nR 4096\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t[0], Access::read(0x40));
        assert_eq!(t[1], Access::write(0x80));
        assert_eq!(t[2], Access::read(4096));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\nR 0x40\n   \n# tail\nW 0x80\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn reports_malformed_line_numbers() {
        let text = "R 0x40\nX 0x80\n";
        match read_trace(text.as_bytes()) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(read_trace("R\n".as_bytes()).is_err());
        assert!(read_trace("R 0x40 extra\n".as_bytes()).is_err());
        assert!(read_trace("R zz\n".as_bytes()).is_err());
    }

    #[test]
    fn replay_cycles() {
        let mut w = TraceWorkload::new(vec![Access::read(1), Access::read(2)]);
        assert_eq!(w.next_access().addr, 1);
        assert_eq!(w.next_access().addr, 2);
        assert_eq!(w.next_access().addr, 1);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.name(), "trace-replay");
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn empty_trace_rejected() {
        let _ = TraceWorkload::new(vec![]);
    }

    #[test]
    fn binary_roundtrip() {
        let trace = vec![
            Access::read(0),
            Access::write(u64::MAX),
            Access::read(0xdead_beef),
        ];
        let mut buf = Vec::new();
        write_trace_binary(&mut buf, trace.clone()).unwrap();
        assert_eq!(buf.len(), 5 + 9 * trace.len());
        let back = read_trace_binary(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn binary_rejects_bad_headers_with_offsets() {
        match read_trace_binary(&b"XXXX\x01"[..]) {
            Err(TraceError::Corrupt { offset: 0, detail }) => {
                assert!(detail.contains("magic"), "{detail}");
            }
            other => panic!("expected corrupt magic, got {other:?}"),
        }
        match read_trace_binary(&b"NMTR\x09"[..]) {
            Err(TraceError::Corrupt { offset: 4, detail }) => {
                assert!(detail.contains("version"), "{detail}");
            }
            other => panic!("expected corrupt version, got {other:?}"),
        }
        match read_trace_binary(&b"NMT"[..]) {
            Err(TraceError::Corrupt { offset: 0, detail }) => {
                assert!(detail.contains("header"), "{detail}");
            }
            other => panic!("expected truncated header, got {other:?}"),
        }
    }

    #[test]
    fn binary_truncation_reports_the_record_offset() {
        let mut buf = Vec::new();
        write_trace_binary(&mut buf, vec![Access::read(7), Access::write(8)]).unwrap();
        buf.truncate(buf.len() - 3); // truncate record 2 mid-address
        match read_trace_binary(buf.as_slice()) {
            // Record 2 starts at 5 + 9·1 = 14.
            Err(TraceError::Corrupt { offset: 14, detail }) => {
                assert!(detail.contains("truncated"), "{detail}");
            }
            other => panic!("expected truncation at offset 14, got {other:?}"),
        }
    }

    #[test]
    fn binary_bad_kind_reports_the_record_offset() {
        let mut bad_kind = Vec::new();
        write_trace_binary(&mut bad_kind, vec![Access::read(7), Access::read(9)]).unwrap();
        bad_kind[14] = 9; // corrupt record 2's kind byte
        match read_trace_binary(bad_kind.as_slice()) {
            Err(TraceError::Corrupt { offset: 14, detail }) => {
                assert!(detail.contains("kind"), "{detail}");
            }
            other => panic!("expected bad kind at offset 14, got {other:?}"),
        }
    }

    #[test]
    fn binary_record_cap_rejects_oversized_inputs() {
        let trace: Vec<Access> = (0..10).map(Access::read).collect();
        let mut buf = Vec::new();
        write_trace_binary(&mut buf, trace.clone()).unwrap();
        // Under the cap: fine.
        assert_eq!(
            read_trace_binary_limited(buf.as_slice(), 10).unwrap(),
            trace
        );
        // One over: typed error, not unbounded allocation.
        match read_trace_binary_limited(buf.as_slice(), 9) {
            Err(TraceError::TooLarge {
                records: 9,
                limit: 9,
            }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn corruption_errors_display_the_offset() {
        let e = TraceError::Corrupt {
            offset: 14,
            detail: "truncated record",
        };
        let text = e.to_string();
        assert!(text.contains("offset 14"), "{text}");
        assert!(TraceError::Empty.to_string().contains("at least one"));
    }

    #[test]
    fn try_new_rejects_empty_traces_with_a_typed_error() {
        assert!(matches!(
            TraceWorkload::try_new(vec![]),
            Err(TraceError::Empty)
        ));
        let w = TraceWorkload::try_new(vec![Access::read(1)]).unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn empty_binary_trace_is_legal() {
        let mut buf = Vec::new();
        write_trace_binary(&mut buf, Vec::<Access>::new()).unwrap();
        assert!(read_trace_binary(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn replay_feeds_simulator() {
        use crate::cache::{CacheParams, CacheSim, Replacement};
        let mut w = TraceWorkload::new(vec![Access::read(0), Access::read(0x40)]);
        let mut sim = CacheSim::new(CacheParams::new(1024, 64, 2).unwrap(), Replacement::Lru);
        for _ in 0..10 {
            sim.access(w.next_access());
        }
        // Two compulsory misses then pure hits.
        assert_eq!(sim.stats().misses, 2);
    }
}
