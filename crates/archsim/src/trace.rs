//! Reading, writing and replaying reference traces.
//!
//! The synthetic generators in [`crate::workload`] stand in for the
//! paper's benchmark suites, but users with real traces (e.g. from a
//! full-system simulator) can feed them through the same pipeline. The
//! format is one reference per line, `R` or `W` followed by a hex or
//! decimal byte address:
//!
//! ```text
//! R 0x7fff0040
//! W 0x1000
//! R 4096
//! ```
//!
//! Blank lines and lines starting with `#` are ignored.

use crate::access::{Access, AccessKind};
use crate::workload::Workload;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Errors from trace parsing.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o: {e}"),
            TraceError::Parse { line, text } => {
                write!(f, "trace line {line} is malformed: {text:?}")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Parses one trace line (without comment/blank filtering).
fn parse_line(line: &str, number: usize) -> Result<Access, TraceError> {
    let malformed = || TraceError::Parse {
        line: number,
        text: line.to_owned(),
    };
    let mut parts = line.split_whitespace();
    let kind = match parts.next().ok_or_else(malformed)? {
        "R" | "r" => AccessKind::Read,
        "W" | "w" => AccessKind::Write,
        _ => return Err(malformed()),
    };
    let addr_text = parts.next().ok_or_else(malformed)?;
    if parts.next().is_some() {
        return Err(malformed());
    }
    let addr = if let Some(hex) = addr_text
        .strip_prefix("0x")
        .or_else(|| addr_text.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).map_err(|_| malformed())?
    } else {
        addr_text.parse().map_err(|_| malformed())?
    };
    Ok(Access { addr, kind })
}

/// Reads a whole trace from any reader (note a `&mut R` also works, per
/// the usual `Read` blanket impl).
///
/// # Errors
///
/// [`TraceError::Io`] on read failure, [`TraceError::Parse`] on a
/// malformed line.
pub fn read_trace<R: Read>(reader: R) -> Result<Vec<Access>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(parse_line(trimmed, i + 1)?);
    }
    Ok(out)
}

/// Writes a trace to any writer in the canonical hex format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write, I: IntoIterator<Item = Access>>(
    mut writer: W,
    accesses: I,
) -> io::Result<()> {
    for a in accesses {
        writeln!(writer, "{} {:#x}", a.kind, a.addr)?;
    }
    Ok(())
}

/// Magic bytes opening a binary trace file.
pub const BINARY_MAGIC: [u8; 4] = *b"NMTR";

/// Binary trace format version.
pub const BINARY_VERSION: u8 = 1;

/// Writes a trace in the compact binary format: the magic, a version
/// byte, then 9 bytes per record (1 kind byte: `0` read / `1` write, then
/// the address little-endian).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace_binary<W: Write, I: IntoIterator<Item = Access>>(
    mut writer: W,
    accesses: I,
) -> io::Result<()> {
    writer.write_all(&BINARY_MAGIC)?;
    writer.write_all(&[BINARY_VERSION])?;
    for a in accesses {
        let kind = match a.kind {
            AccessKind::Read => 0u8,
            AccessKind::Write => 1u8,
        };
        writer.write_all(&[kind])?;
        writer.write_all(&a.addr.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a binary trace written by [`write_trace_binary`].
///
/// # Errors
///
/// [`TraceError::Io`] on read failure; [`TraceError::Parse`] on a bad
/// magic, unsupported version, bad kind byte, or truncated record (the
/// reported "line" is the 1-based record number, 0 for the header).
pub fn read_trace_binary<R: Read>(mut reader: R) -> Result<Vec<Access>, TraceError> {
    let bad = |record: usize, what: &str| TraceError::Parse {
        line: record,
        text: what.to_owned(),
    };
    let mut header = [0u8; 5];
    reader
        .read_exact(&mut header)
        .map_err(|_| bad(0, "missing or truncated header"))?;
    if header[..4] != BINARY_MAGIC {
        return Err(bad(0, "bad magic (not an nmcache binary trace)"));
    }
    if header[4] != BINARY_VERSION {
        return Err(bad(0, "unsupported binary trace version"));
    }
    let mut out = Vec::new();
    let mut record = [0u8; 9];
    let mut n = 0usize;
    loop {
        // Peek one byte to distinguish clean EOF from truncation.
        let mut first = [0u8; 1];
        match reader.read(&mut first) {
            Ok(0) => return Ok(out),
            Ok(_) => {}
            Err(e) => return Err(TraceError::Io(e)),
        }
        n += 1;
        record[0] = first[0];
        reader
            .read_exact(&mut record[1..])
            .map_err(|_| bad(n, "truncated record"))?;
        let kind = match record[0] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            _ => return Err(bad(n, "bad kind byte")),
        };
        let addr = u64::from_le_bytes(record[1..].try_into().expect("8 bytes"));
        out.push(Access { addr, kind });
    }
}

/// A [`Workload`] that replays a recorded trace, cycling when exhausted.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    accesses: Vec<Access>,
    position: usize,
}

impl TraceWorkload {
    /// Wraps a recorded trace.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace — an endless generator needs at least one
    /// reference.
    pub fn new(accesses: Vec<Access>) -> Self {
        assert!(
            !accesses.is_empty(),
            "trace must contain at least one access"
        );
        TraceWorkload {
            accesses,
            position: 0,
        }
    }

    /// Number of recorded references.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Always `false` (construction rejects empty traces).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Workload for TraceWorkload {
    fn next_access(&mut self) -> Access {
        let a = self.accesses[self.position];
        self.position = (self.position + 1) % self.accesses.len();
        a
    }

    fn name(&self) -> &'static str {
        "trace-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = vec![
            Access::read(0x1000),
            Access::write(0x2040),
            Access::read(64),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, trace.clone()).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn parses_hex_and_decimal_and_case() {
        let text = "R 0x40\nw 0X80\nR 4096\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t[0], Access::read(0x40));
        assert_eq!(t[1], Access::write(0x80));
        assert_eq!(t[2], Access::read(4096));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\nR 0x40\n   \n# tail\nW 0x80\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn reports_malformed_line_numbers() {
        let text = "R 0x40\nX 0x80\n";
        match read_trace(text.as_bytes()) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(read_trace("R\n".as_bytes()).is_err());
        assert!(read_trace("R 0x40 extra\n".as_bytes()).is_err());
        assert!(read_trace("R zz\n".as_bytes()).is_err());
    }

    #[test]
    fn replay_cycles() {
        let mut w = TraceWorkload::new(vec![Access::read(1), Access::read(2)]);
        assert_eq!(w.next_access().addr, 1);
        assert_eq!(w.next_access().addr, 2);
        assert_eq!(w.next_access().addr, 1);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.name(), "trace-replay");
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn empty_trace_rejected() {
        let _ = TraceWorkload::new(vec![]);
    }

    #[test]
    fn binary_roundtrip() {
        let trace = vec![
            Access::read(0),
            Access::write(u64::MAX),
            Access::read(0xdead_beef),
        ];
        let mut buf = Vec::new();
        write_trace_binary(&mut buf, trace.clone()).unwrap();
        assert_eq!(buf.len(), 5 + 9 * trace.len());
        let back = read_trace_binary(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn binary_rejects_bad_headers_and_records() {
        assert!(read_trace_binary(&b"XXXX\x01"[..]).is_err()); // bad magic
        assert!(read_trace_binary(&b"NMTR\x09"[..]).is_err()); // bad version
        assert!(read_trace_binary(&b"NMT"[..]).is_err()); // truncated header

        let mut buf = Vec::new();
        write_trace_binary(&mut buf, vec![Access::read(7)]).unwrap();
        buf.truncate(buf.len() - 3); // truncate mid-record
        match read_trace_binary(buf.as_slice()) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }

        let mut bad_kind = Vec::new();
        write_trace_binary(&mut bad_kind, vec![Access::read(7)]).unwrap();
        bad_kind[5] = 9; // corrupt the kind byte
        assert!(read_trace_binary(bad_kind.as_slice()).is_err());
    }

    #[test]
    fn empty_binary_trace_is_legal() {
        let mut buf = Vec::new();
        write_trace_binary(&mut buf, Vec::<Access>::new()).unwrap();
        assert!(read_trace_binary(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn replay_feeds_simulator() {
        use crate::cache::{CacheParams, CacheSim, Replacement};
        let mut w = TraceWorkload::new(vec![Access::read(0), Access::read(0x40)]);
        let mut sim = CacheSim::new(CacheParams::new(1024, 64, 2).unwrap(), Replacement::Lru);
        for _ in 0..10 {
            sim.access(w.next_access());
        }
        // Two compulsory misses then pure hits.
        assert_eq!(sim.stats().misses, 2);
    }
}
