//! Memory reference records.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load (read).
    Read,
    /// A store (write).
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// One memory reference: a byte address and its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
}

impl Access {
    /// Creates a read access.
    pub fn read(addr: u64) -> Self {
        Access {
            addr,
            kind: AccessKind::Read,
        }
    }

    /// Creates a write access.
    pub fn write(addr: u64) -> Self {
        Access {
            addr,
            kind: AccessKind::Write,
        }
    }

    /// `true` for stores.
    pub fn is_write(self) -> bool {
        self.kind == AccessKind::Write
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#x}", self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert!(!Access::read(0x1000).is_write());
        assert!(Access::write(0x1000).is_write());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Access::read(0x40).to_string(), "R 0x40");
        assert_eq!(Access::write(0x40).to_string(), "W 0x40");
    }
}
