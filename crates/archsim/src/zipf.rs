//! A deterministic Zipf-distributed sampler (CDF inversion).
//!
//! Database- and web-style reference streams are classically modelled as
//! Zipfian over records/documents; the TPC-C- and SPECWEB-like generators
//! in [`crate::workload`] build on this sampler.

use rand::Rng;

/// Samples ranks `0..n` with probability ∝ `1/(rank+1)^s`.
///
/// Construction precomputes the normalised CDF (`O(n)` memory); sampling
/// is a binary search (`O(log n)`).
///
/// ```
/// use nm_archsim::zipf::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let z = Zipf::new(1000, 1.0);
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut head = 0;
/// for _ in 0..10_000 {
///     if z.sample(&mut rng) < 10 {
///         head += 1;
///     }
/// }
/// // The top 1 % of ranks draws a large share of samples.
/// assert!(head > 2000, "head = {head}");
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite — both are
    /// static configuration errors.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for value in &mut cdf {
            *value /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the sampler has a single rank (never empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|probe| probe.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8000..12000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn rank_zero_most_popular() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn samples_within_range() {
        let z = Zipf::new(7, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let z = Zipf::new(1000, 1.0);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
