//! # nm-archsim — trace-driven multi-level cache simulation
//!
//! The paper (Section 5) uses "architectural simulations to gather cache
//! access statistics for each L1 and L2 cache size combination", collected
//! over SPEC2000, SPECWEB and TPC/C. This crate supplies that substrate:
//!
//! * [`cache::CacheSim`] — a set-associative cache with LRU/FIFO/random
//!   replacement and write-back/write-allocate semantics,
//! * [`hierarchy::MultiLevel`] — an N-level miss-chain hierarchy with
//!   per-level demand accounting ([`hierarchy::TwoLevel`] is the L1 + L2
//!   view over it),
//! * [`workload`] — synthetic trace generators standing in for the
//!   benchmark suites (loop-locality "spec-like", Zipf-working-set
//!   "tpcc-like", request-stream "web-like", and a pointer chaser),
//! * [`missrates`] — sweeps of (L1 size × L2 size) producing the
//!   miss-rate tables the optimisation studies consume.
//!
//! The downstream studies only need miss-rate tables whose *shape* matches
//! the paper's observations — low, flat local L1 miss rates from 4 K to
//! 64 K, and L2 miss rates that fall steeply with size before saturating —
//! which these generators produce by construction (see `DESIGN.md`).
//!
//! ```
//! use nm_archsim::cache::{CacheParams, CacheSim, Replacement};
//! use nm_archsim::workload::{SpecLoops, Workload};
//!
//! let params = CacheParams::new(16 * 1024, 64, 4)?;
//! let mut sim = CacheSim::new(params, Replacement::Lru);
//! let mut gen = SpecLoops::default_suite(42);
//! for _ in 0..10_000 {
//!     sim.access(gen.next_access());
//! }
//! let stats = sim.stats();
//! assert!(stats.accesses == 10_000);
//! assert!(stats.miss_rate() < 0.5);
//! # Ok::<(), nm_archsim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod cache;
pub mod decay;
pub mod hierarchy;
pub mod missrates;
pub mod names;
pub mod splitl1;
pub mod stats;
pub mod trace;
pub mod workload;
pub mod zipf;

mod error;

pub use access::{Access, AccessKind};
pub use cache::{CacheParams, CacheSim, Replacement};
pub use decay::{DecaySim, DecayStats};
pub use error::SimError;
pub use hierarchy::{HierarchyStats, MultiLevel, MultiLevelStats, TwoLevel};
pub use missrates::{simulate_chain, ChainStats, MissRateTable, PairStats};
pub use trace::{TraceError, TraceWorkload};
