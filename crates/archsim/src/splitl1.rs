//! Split L1 (instruction + data) hierarchy with a unified L2.
//!
//! The paper's "L1 cache" is generic; real paper-era processors split it
//! into an instruction cache and a data cache backed by one unified L2.
//! This module adds the missing pieces: a synthetic instruction-fetch
//! stream ([`InstStream`]) and a three-cache hierarchy
//! ([`SplitHierarchy`]) whose statistics drive the split-L1 study in
//! `nm-cache-core`.

use crate::access::Access;
use crate::cache::{CacheParams, CacheSim, CacheStats, Replacement};
use crate::workload::Workload;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Base address of the code segment (disjoint from every data region).
const CODE_BASE: u64 = 0x0040_0000;

/// A synthetic instruction-fetch stream: sequential fetch through basic
/// blocks, branches to Zipf-popular functions, and tight loops.
///
/// Instruction working sets are small and strongly looped, so I-cache
/// miss rates are low (a couple of percent at 16 KB) and fall quickly
/// with size — the standard paper-era picture.
#[derive(Debug, Clone)]
pub struct InstStream {
    rng: StdRng,
    /// Function popularity (Zipf over function indices).
    functions: Zipf,
    /// Bytes per function body.
    function_bytes: u64,
    /// Current fetch address.
    pc: u64,
    /// Instructions left in the current basic block.
    block_left: u32,
    /// Loop state: remaining iterations and loop start.
    loop_left: u32,
    loop_start: u64,
    loop_len: u64,
}

impl InstStream {
    /// The default parameterisation: 256 functions of 2 KB (512 KB of
    /// code) with Zipf(1.1) popularity — a hot inner core with a long
    /// tail.
    pub fn default_suite(seed: u64) -> Self {
        InstStream {
            rng: StdRng::seed_from_u64(seed ^ 0x1f57),
            functions: Zipf::new(256, 1.1),
            function_bytes: 2 * 1024,
            pc: CODE_BASE,
            block_left: 8,
            loop_left: 0,
            loop_start: CODE_BASE,
            loop_len: 0,
        }
    }

    fn branch(&mut self) {
        if self.loop_left > 0 {
            // Loop back-edge.
            self.loop_left -= 1;
            self.pc = self.loop_start;
            return;
        }
        let p: f64 = self.rng.gen();
        if p < 0.55 {
            // Start a loop over the last few blocks.
            self.loop_len = u64::from(self.rng.gen_range(4..32u32)) * 4;
            self.loop_start = self.pc.saturating_sub(self.loop_len).max(CODE_BASE);
            self.loop_left = self.rng.gen_range(4..64);
            self.pc = self.loop_start;
        } else {
            // Call a (Zipf-popular) function.
            let f = self.functions.sample(&mut self.rng) as u64;
            self.pc = CODE_BASE + f * self.function_bytes;
        }
    }
}

impl Workload for InstStream {
    fn next_access(&mut self) -> Access {
        if self.block_left == 0 {
            self.block_left = self.rng.gen_range(4..16);
            self.branch();
        }
        self.block_left -= 1;
        let a = Access::read(self.pc);
        self.pc += 4; // one 32-bit instruction
        a
    }

    fn name(&self) -> &'static str {
        "inst-stream"
    }
}

/// Statistics of a split hierarchy: both L1s over their own streams, the
/// unified L2 over the merged demand stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SplitStats {
    /// Instruction-cache statistics.
    pub icache: CacheStats,
    /// Data-cache statistics.
    pub dcache: CacheStats,
    /// Unified L2 statistics over the merged demand stream.
    pub l2: CacheStats,
}

impl SplitStats {
    /// I-cache miss rate.
    pub fn icache_miss_rate(&self) -> f64 {
        self.icache.miss_rate()
    }

    /// D-cache miss rate.
    pub fn dcache_miss_rate(&self) -> f64 {
        self.dcache.miss_rate()
    }

    /// Local L2 miss rate over the merged demand stream.
    pub fn l2_local_miss_rate(&self) -> f64 {
        self.l2.miss_rate()
    }
}

/// An I$ + D$ + unified-L2 hierarchy.
#[derive(Debug, Clone)]
pub struct SplitHierarchy {
    icache: CacheSim,
    dcache: CacheSim,
    l2: CacheSim,
    demand_l2: CacheStats,
}

impl SplitHierarchy {
    /// Builds a cold split hierarchy (LRU everywhere).
    pub fn new(icache: CacheParams, dcache: CacheParams, l2: CacheParams) -> Self {
        SplitHierarchy {
            icache: CacheSim::new(icache, Replacement::Lru),
            dcache: CacheSim::new(dcache, Replacement::Lru),
            l2: CacheSim::new(l2, Replacement::Lru),
            demand_l2: CacheStats::default(),
        }
    }

    /// Issues an instruction fetch.
    pub fn fetch(&mut self, access: Access) -> bool {
        let hit = self.icache.access(access).is_hit();
        if !hit {
            self.probe_l2(access);
        }
        hit
    }

    /// Issues a data reference.
    pub fn data(&mut self, access: Access) -> bool {
        let out = self.dcache.access(access);
        if let crate::cache::Outcome::Miss {
            victim_writeback: true,
        } = out
        {
            self.l2.access(Access::write(access.addr));
        }
        if !out.is_hit() {
            self.probe_l2(access);
        }
        out.is_hit()
    }

    fn probe_l2(&mut self, access: Access) {
        let out = self.l2.access(access);
        self.demand_l2.accesses += 1;
        if !out.is_hit() {
            self.demand_l2.misses += 1;
        }
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> SplitStats {
        SplitStats {
            icache: self.icache.stats(),
            dcache: self.dcache.stats(),
            l2: self.demand_l2,
        }
    }

    /// Clears statistics, keeping contents warm.
    pub fn reset_stats(&mut self) {
        self.icache.reset_stats();
        self.dcache.reset_stats();
        self.l2.reset_stats();
        self.demand_l2 = CacheStats::default();
    }
}

/// Runs an interleaved instruction/data simulation: every step fetches
/// one instruction and, with probability `data_per_inst`, issues one data
/// reference. Returns steady-state statistics after a warm-up half.
pub fn simulate_split(
    icache: CacheParams,
    dcache: CacheParams,
    l2: CacheParams,
    data_workload: &mut (dyn Workload + Send),
    seed: u64,
    steps: u64,
    data_per_inst: f64,
) -> SplitStats {
    let mut h = SplitHierarchy::new(icache, dcache, l2);
    let mut inst = InstStream::default_suite(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1ce);
    let warmup = steps / 2;
    for step in 0..steps {
        if step == warmup {
            h.reset_stats();
        }
        h.fetch(inst.next_access());
        if rng.gen_bool(data_per_inst) {
            h.data(data_workload.next_access());
        }
    }
    h.stats()
}

/// Runs the same interleaved stream through a *unified* L1 (instructions
/// and data share one cache) + L2, for comparison against the split
/// organisation. Returns `(l1_stats, l2_demand_stats)`.
pub fn simulate_unified(
    l1: CacheParams,
    l2: CacheParams,
    data_workload: &mut (dyn Workload + Send),
    seed: u64,
    steps: u64,
    data_per_inst: f64,
) -> (CacheStats, CacheStats) {
    let mut l1_sim = CacheSim::new(l1, Replacement::Lru);
    let mut l2_sim = CacheSim::new(l2, Replacement::Lru);
    let mut demand = CacheStats::default();
    let mut inst = InstStream::default_suite(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1ce);
    let warmup = steps / 2;
    let probe =
        |l1_sim: &mut CacheSim, l2_sim: &mut CacheSim, demand: &mut CacheStats, a: Access| {
            let out = l1_sim.access(a);
            if let crate::cache::Outcome::Miss {
                victim_writeback: true,
            } = out
            {
                l2_sim.access(Access::write(a.addr));
            }
            if !out.is_hit() {
                demand.accesses += 1;
                if !l2_sim.access(a).is_hit() {
                    demand.misses += 1;
                }
            }
        };
    for step in 0..steps {
        if step == warmup {
            l1_sim.reset_stats();
            l2_sim.reset_stats();
            demand = CacheStats::default();
        }
        probe(&mut l1_sim, &mut l2_sim, &mut demand, inst.next_access());
        if rng.gen_bool(data_per_inst) {
            probe(
                &mut l1_sim,
                &mut l2_sim,
                &mut demand,
                data_workload.next_access(),
            );
        }
    }
    (l1_sim.stats(), demand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SpecLoops;

    fn params(kb: u64, ways: u64) -> CacheParams {
        CacheParams::new(kb * 1024, 64, ways).unwrap()
    }

    #[test]
    fn inst_stream_is_deterministic_and_code_resident() {
        let mut a = InstStream::default_suite(3);
        let mut b = InstStream::default_suite(3);
        for _ in 0..1000 {
            let x = a.next_access();
            assert_eq!(x, b.next_access());
            assert!(x.addr >= CODE_BASE);
            assert!(!x.is_write(), "instruction fetches are reads");
        }
    }

    #[test]
    fn icache_miss_rate_low_and_falls_with_size() {
        let run = |kb: u64| {
            let mut sim = CacheSim::new(params(kb, 2), Replacement::Lru);
            let mut w = InstStream::default_suite(5);
            for _ in 0..100_000 {
                sim.access(w.next_access());
            }
            sim.reset_stats();
            for _ in 0..100_000 {
                sim.access(w.next_access());
            }
            sim.stats().miss_rate()
        };
        let m8 = run(8);
        let m32 = run(32);
        assert!(m8 < 0.08, "8K I$ miss rate = {m8}");
        assert!(m32 <= m8, "m32 {m32} > m8 {m8}");
    }

    #[test]
    fn split_simulation_produces_consistent_stats() {
        let mut data = SpecLoops::default_suite(7);
        let s = simulate_split(
            params(16, 2),
            params(16, 4),
            params(512, 8),
            &mut data,
            11,
            120_000,
            0.35,
        );
        assert!(s.icache.accesses > 0);
        assert!(s.dcache.accesses > 0);
        // Roughly data_per_inst ratio between the streams.
        let ratio = s.dcache.accesses as f64 / s.icache.accesses as f64;
        assert!((0.25..0.45).contains(&ratio), "ratio = {ratio}");
        // L2 demand equals the two levels' misses combined.
        assert_eq!(s.l2.accesses, s.icache.misses + s.dcache.misses);
        assert!(s.icache_miss_rate() < s.dcache_miss_rate() + 0.2);
    }

    #[test]
    fn unified_and_split_see_the_same_stream() {
        // The unified run must process the same reference count and its
        // miss rate should land in a sane band (split vs unified is the
        // study question, not a fixed ordering).
        let mut data_a = SpecLoops::default_suite(7);
        let mut data_b = SpecLoops::default_suite(7);
        let split = simulate_split(
            params(16, 2),
            params(16, 4),
            params(512, 8),
            &mut data_a,
            11,
            120_000,
            0.35,
        );
        let (unified, _) = simulate_unified(
            params(32, 4),
            params(512, 8),
            &mut data_b,
            11,
            120_000,
            0.35,
        );
        let split_total = split.icache.accesses + split.dcache.accesses;
        assert_eq!(unified.accesses, split_total);
        assert!(unified.miss_rate() < 0.3);
    }

    #[test]
    fn l2_helps_both_streams() {
        let mut data = SpecLoops::default_suite(9);
        let s = simulate_split(
            params(8, 2),
            params(8, 4),
            params(1024, 8),
            &mut data,
            13,
            150_000,
            0.35,
        );
        assert!(
            s.l2_local_miss_rate() < 0.9,
            "L2 local mr = {}",
            s.l2_local_miss_rate()
        );
    }
}
