//! Multi-level cache hierarchies with inclusive filtering.
//!
//! [`MultiLevel`] simulates an arbitrary-depth miss chain: each reference
//! probes level 0, misses fall through to the next level, and misses at
//! the last level go to main memory. Dirty victims are written back into
//! the next level down (and propagate further when the writeback itself
//! evicts a dirty line). [`TwoLevel`] is the classic L1 + L2 shape as a
//! thin wrapper — bit-for-bit the same behaviour and statistics as the
//! dedicated two-level simulator it replaced.

use crate::access::Access;
use crate::cache::{CacheParams, CacheSim, CacheStats, Outcome, Replacement};
use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// Hierarchy-level statistics.
///
/// `l1` covers every CPU reference; `l2` covers the *demand* stream only
/// (L1 misses). L1 dirty-victim writebacks are serviced by L2 but excluded
/// from the demand statistics, since the AMAT model prices demand misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 statistics over all references.
    pub l1: CacheStats,
    /// L2 statistics over the demand stream (L1 misses).
    pub l2: CacheStats,
    /// L1 dirty victims written back into L2 (not part of `l2`).
    pub l1_writebacks: u64,
}

impl HierarchyStats {
    /// L1 miss rate over all references.
    pub fn l1_miss_rate(&self) -> f64 {
        self.l1.miss_rate()
    }

    /// Local L2 miss rate (misses per L2 demand probe).
    pub fn l2_local_miss_rate(&self) -> f64 {
        self.l2.miss_rate()
    }

    /// Global L2 miss rate (main-memory accesses per CPU reference).
    pub fn l2_global_miss_rate(&self) -> f64 {
        self.l1_miss_rate() * self.l2_local_miss_rate()
    }
}

/// Per-level statistics of an N-level hierarchy.
///
/// `levels[0]` covers every CPU reference; `levels[i]` for `i > 0` covers
/// level *i*'s *demand* stream only (misses falling through from level
/// *i−1*). Writeback traffic is tallied separately in `writebacks`, so the
/// local miss rates stay demand miss rates — the quantities the AMAT
/// weight chain multiplies.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MultiLevelStats {
    /// Demand-stream statistics per level, outermost (L1) first.
    pub levels: Vec<CacheStats>,
    /// Dirty victims written out of each level into the next (the last
    /// level's victims go to main memory).
    pub writebacks: Vec<u64>,
}

impl MultiLevelStats {
    /// Local (per-demand-probe) miss rate of each level, outermost first.
    pub fn local_miss_rates(&self) -> Vec<f64> {
        self.levels.iter().map(CacheStats::miss_rate).collect()
    }

    /// Validated [`local_miss_rates`](Self::local_miss_rates): every rate
    /// checked finite and in `[0, 1]` before it can feed delay weights.
    ///
    /// # Errors
    ///
    /// [`SimError::MissRateOutOfRange`] naming the first offending level.
    pub fn try_local_miss_rates(&self) -> Result<Vec<f64>, SimError> {
        let rates = self.local_miss_rates();
        for (level, &value) in rates.iter().enumerate() {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(SimError::MissRateOutOfRange { level, value });
            }
        }
        Ok(rates)
    }

    /// Global miss rate: main-memory accesses per CPU reference (the
    /// product of the local rates).
    pub fn global_miss_rate(&self) -> f64 {
        self.levels.iter().map(CacheStats::miss_rate).product()
    }
}

/// An N-level miss-chain cache hierarchy.
///
/// ```
/// use nm_archsim::{MultiLevel, CacheParams, Replacement, Access};
///
/// let mut h = MultiLevel::new(
///     vec![
///         CacheParams::new(16 * 1024, 64, 4)?,
///         CacheParams::new(256 * 1024, 64, 8)?,
///         CacheParams::new(4 * 1024 * 1024, 64, 16)?,
///     ],
///     Replacement::Lru,
/// )?;
/// for i in 0..1000u64 {
///     h.access(Access::read(i * 64));
/// }
/// assert_eq!(h.stats().levels.len(), 3);
/// # Ok::<(), nm_archsim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiLevel {
    levels: Vec<CacheSim>,
    demand: Vec<CacheStats>,
    victim_writebacks: Vec<u64>,
}

impl MultiLevel {
    /// Builds a cold hierarchy, outermost (L1) level first, with a shared
    /// replacement policy.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyHierarchy`] when `levels` is empty.
    pub fn new(levels: Vec<CacheParams>, policy: Replacement) -> Result<Self, SimError> {
        if levels.is_empty() {
            return Err(SimError::EmptyHierarchy);
        }
        let n = levels.len();
        Ok(MultiLevel {
            levels: levels
                .into_iter()
                .map(|p| CacheSim::new(p, policy))
                .collect(),
            demand: vec![CacheStats::default(); n],
            victim_writebacks: vec![0; n],
        })
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Parameters of level `i` (0 = L1).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn params(&self, i: usize) -> CacheParams {
        self.levels[i].params()
    }

    /// Issues one CPU reference through the miss chain.
    ///
    /// Returns `Some(i)` when level `i` hit, `None` when the reference
    /// fell through every level to main memory.
    pub fn access(&mut self, access: Access) -> Option<usize> {
        let n = self.levels.len();
        for i in 0..n {
            let out = self.levels[i].access(access);
            if i > 0 {
                let d = &mut self.demand[i];
                d.accesses += 1;
                if access.is_write() {
                    d.writes += 1;
                }
                if !out.is_hit() {
                    d.misses += 1;
                }
                if matches!(
                    out,
                    Outcome::Miss {
                        victim_writeback: true
                    }
                ) {
                    d.writebacks += 1;
                }
            }
            if out.is_hit() {
                return Some(i);
            }
            if matches!(
                out,
                Outcome::Miss {
                    victim_writeback: true
                }
            ) {
                // The victim's address is unknown to the cache model (tags
                // only); write back to the same set region — lower levels
                // are large enough that this approximation does not
                // disturb the demand stream. A writeback that itself
                // evicts a dirty line propagates one level further.
                self.victim_writebacks[i] += 1;
                for j in i + 1..n {
                    let wb = self.levels[j].access(Access::write(access.addr));
                    if matches!(
                        wb,
                        Outcome::Miss {
                            victim_writeback: true
                        }
                    ) {
                        self.victim_writebacks[j] += 1;
                    } else {
                        break;
                    }
                }
            }
        }
        None
    }

    /// Runs a whole access iterator; returns references processed.
    pub fn run<I: IntoIterator<Item = Access>>(&mut self, accesses: I) -> u64 {
        let mut n = 0;
        for a in accesses {
            self.access(a);
            n += 1;
        }
        n
    }

    /// Snapshot of the per-level statistics.
    pub fn stats(&self) -> MultiLevelStats {
        let mut levels: Vec<CacheStats> = self.demand.clone();
        levels[0] = self.levels[0].stats();
        MultiLevelStats {
            levels,
            writebacks: self.victim_writebacks.clone(),
        }
    }

    /// Clears statistics after warm-up, keeping contents.
    pub fn reset_stats(&mut self) {
        for sim in &mut self.levels {
            sim.reset_stats();
        }
        for d in &mut self.demand {
            *d = CacheStats::default();
        }
        for w in &mut self.victim_writebacks {
            *w = 0;
        }
    }
}

/// An L1 + L2 hierarchy: the two-level view over [`MultiLevel`].
///
/// ```
/// use nm_archsim::{TwoLevel, CacheParams, Replacement, Access};
///
/// let mut h = TwoLevel::new(
///     CacheParams::new(16 * 1024, 64, 4)?,
///     CacheParams::new(1024 * 1024, 64, 8)?,
///     Replacement::Lru,
/// );
/// for i in 0..1000u64 {
///     h.access(Access::read(i * 64));
/// }
/// assert!(h.stats().l1_miss_rate() > 0.9); // pure cold streaming
/// # Ok::<(), nm_archsim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevel {
    inner: MultiLevel,
}

impl TwoLevel {
    /// Builds a cold hierarchy with a shared replacement policy.
    #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: two levels are non-zero
    pub fn new(l1: CacheParams, l2: CacheParams, policy: Replacement) -> Self {
        TwoLevel {
            inner: MultiLevel::new(vec![l1, l2], policy).expect("two levels are not zero"),
        }
    }

    /// L1 parameters.
    pub fn l1_params(&self) -> CacheParams {
        self.inner.params(0)
    }

    /// L2 parameters.
    pub fn l2_params(&self) -> CacheParams {
        self.inner.params(1)
    }

    /// Issues one CPU reference through the hierarchy.
    ///
    /// Returns `(l1_hit, l2_hit)`; `l2_hit` is `None` when L1 hit and the
    /// reference never reached L2.
    pub fn access(&mut self, access: Access) -> (bool, Option<bool>) {
        match self.inner.access(access) {
            Some(0) => (true, None),
            Some(_) => (false, Some(true)),
            None => (false, Some(false)),
        }
    }

    /// Runs a whole access iterator; returns references processed.
    pub fn run<I: IntoIterator<Item = Access>>(&mut self, accesses: I) -> u64 {
        self.inner.run(accesses)
    }

    /// Snapshot of the hierarchy statistics.
    pub fn stats(&self) -> HierarchyStats {
        let s = self.inner.stats();
        HierarchyStats {
            l1: s.levels[0],
            l2: s.levels[1],
            l1_writebacks: s.writebacks[0],
        }
    }

    /// Clears statistics after warm-up, keeping contents.
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy(l1: u64, l2: u64) -> TwoLevel {
        TwoLevel::new(
            CacheParams::new(l1, 64, 4).unwrap(),
            CacheParams::new(l2, 64, 8).unwrap(),
            Replacement::Lru,
        )
    }

    #[test]
    fn l1_hit_never_reaches_l2() {
        let mut h = hierarchy(16 * 1024, 256 * 1024);
        h.access(Access::read(0x40));
        let (hit, l2) = h.access(Access::read(0x40));
        assert!(hit);
        assert_eq!(l2, None);
        assert_eq!(h.stats().l2.accesses, 1); // only the initial miss
    }

    #[test]
    fn l2_catches_l1_capacity_misses() {
        let mut h = hierarchy(4 * 1024, 1024 * 1024);
        // 64 KB working set: misses L1, fits L2.
        let blocks = 64 * 1024 / 64;
        for _round in 0..4 {
            for b in 0..blocks {
                h.access(Access::read(b * 64));
            }
        }
        let s = h.stats();
        assert!(s.l1_miss_rate() > 0.5, "l1 mr = {}", s.l1_miss_rate());
        assert!(
            s.l2_local_miss_rate() < 0.35,
            "l2 local mr = {}",
            s.l2_local_miss_rate()
        );
    }

    #[test]
    fn global_rate_is_product_of_locals() {
        let mut h = hierarchy(4 * 1024, 64 * 1024);
        for i in 0..20_000u64 {
            h.access(Access::read((i * 2654435761) % (1 << 21)));
        }
        let s = h.stats();
        let expected = s.l1_miss_rate() * s.l2_local_miss_rate();
        assert!((s.l2_global_miss_rate() - expected).abs() < 1e-12);
    }

    #[test]
    fn bigger_l2_has_lower_local_miss_rate() {
        let run = |l2_size: u64| {
            let mut h = hierarchy(8 * 1024, l2_size);
            for i in 0..200_000u64 {
                // 1 MB working set with strided reuse.
                h.access(Access::read((i.wrapping_mul(0x9e3779b9)) % (1 << 20)));
            }
            h.stats().l2_local_miss_rate()
        };
        let small = run(128 * 1024);
        let big = run(1024 * 1024);
        assert!(big < small, "big {big} ≥ small {small}");
    }

    #[test]
    fn writebacks_counted_separately_from_demand() {
        let mut h = hierarchy(4 * 1024, 256 * 1024);
        // Write a large working set so L1 evicts dirty lines.
        for round in 0..3u64 {
            for b in 0..512u64 {
                h.access(Access::write(b * 64 + round));
            }
        }
        let s = h.stats();
        assert!(s.l1_writebacks > 0);
        // Demand accesses equal L1 misses exactly.
        assert_eq!(s.l2.accesses, s.l1.misses);
    }

    #[test]
    fn reset_stats_keeps_warm_contents() {
        let mut h = hierarchy(16 * 1024, 256 * 1024);
        for b in 0..64u64 {
            h.access(Access::read(b * 64));
        }
        h.reset_stats();
        for b in 0..64u64 {
            h.access(Access::read(b * 64));
        }
        assert!(h.stats().l1_miss_rate() < 0.01);
        assert_eq!(h.stats().l2.accesses, 0);
    }

    fn chain(sizes: &[u64], ways: &[u64]) -> MultiLevel {
        MultiLevel::new(
            sizes
                .iter()
                .zip(ways)
                .map(|(&s, &w)| CacheParams::new(s, 64, w).unwrap())
                .collect(),
            Replacement::Lru,
        )
        .unwrap()
    }

    #[test]
    fn empty_hierarchy_is_a_typed_error() {
        assert_eq!(
            MultiLevel::new(vec![], Replacement::Lru).unwrap_err(),
            SimError::EmptyHierarchy
        );
    }

    #[test]
    fn three_level_chain_filters_monotonically() {
        let mut h = chain(&[4 * 1024, 64 * 1024, 1024 * 1024], &[4, 8, 16]);
        // Uniform random reuse over a 128 KB working set: mostly misses
        // the 4 KB L1, half-fits the 64 KB L2, fits the 1 MB L3.
        let mut x = 0x2545_f491_4f6c_dd1d_u64;
        for _ in 0..200_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.access(Access::read((x >> 33) % (1 << 17)));
        }
        let s = h.stats();
        assert_eq!(s.levels.len(), 3);
        // Demand streams shrink level by level.
        assert!(s.levels[0].accesses > s.levels[1].accesses);
        assert!(s.levels[1].accesses > s.levels[2].accesses);
        // Each level's demand accesses equal the previous level's misses.
        assert_eq!(s.levels[1].accesses, s.levels[0].misses);
        assert_eq!(s.levels[2].accesses, s.levels[1].misses);
        // The big L3 absorbs most of what reaches it.
        let rates = s.try_local_miss_rates().unwrap();
        assert!(rates[2] < rates[0], "L3 {} vs L1 {}", rates[2], rates[0]);
        // Global rate is the product of locals.
        let product: f64 = rates.iter().product();
        assert!((s.global_miss_rate() - product).abs() < 1e-12);
    }

    #[test]
    fn hit_level_is_reported() {
        let mut h = chain(&[4 * 1024, 64 * 1024], &[4, 8]);
        assert_eq!(h.access(Access::read(0x40)), None); // cold: memory
        assert_eq!(h.access(Access::read(0x40)), Some(0)); // L1 hit
                                                           // Evict 0x40 from tiny L1 with conflicting lines, then re-read: L2.
        let stride = 64 * h.params(0).sets();
        for k in 1..=8u64 {
            h.access(Access::read(0x40 + k * stride));
        }
        assert_eq!(h.access(Access::read(0x40)), Some(1));
        assert_eq!(h.depth(), 2);
    }

    #[test]
    fn two_level_wrapper_is_bit_identical_to_multilevel() {
        let l1 = CacheParams::new(4 * 1024, 64, 4).unwrap();
        let l2 = CacheParams::new(64 * 1024, 64, 8).unwrap();
        let mut two = TwoLevel::new(l1, l2, Replacement::Lru);
        let mut multi = MultiLevel::new(vec![l1, l2], Replacement::Lru).unwrap();
        for i in 0..50_000u64 {
            let addr = (i.wrapping_mul(0x9e3779b9)) % (1 << 20);
            let access = if i % 3 == 0 {
                Access::write(addr)
            } else {
                Access::read(addr)
            };
            let (l1_hit, l2_hit) = two.access(access);
            let level = multi.access(access);
            match level {
                Some(0) => assert!(l1_hit),
                Some(1) => assert_eq!((l1_hit, l2_hit), (false, Some(true))),
                None => assert_eq!((l1_hit, l2_hit), (false, Some(false))),
                Some(_) => unreachable!(),
            }
        }
        let t = two.stats();
        let m = multi.stats();
        assert_eq!(t.l1, m.levels[0]);
        assert_eq!(t.l2, m.levels[1]);
        assert_eq!(t.l1_writebacks, m.writebacks[0]);
    }

    #[test]
    fn miss_rate_validation_accepts_simulated_stats() {
        let mut h = chain(&[4 * 1024, 64 * 1024, 512 * 1024], &[4, 8, 8]);
        for i in 0..10_000u64 {
            h.access(Access::read((i * 2654435761) % (1 << 20)));
        }
        assert!(h.stats().try_local_miss_rates().is_ok());
        // A corrupted stats block (misses > accesses) is rejected.
        let bad = MultiLevelStats {
            levels: vec![CacheStats {
                accesses: 10,
                misses: 20,
                writebacks: 0,
                writes: 0,
            }],
            writebacks: vec![0],
        };
        assert_eq!(
            bad.try_local_miss_rates().unwrap_err(),
            SimError::MissRateOutOfRange {
                level: 0,
                value: 2.0
            }
        );
    }
}
