//! A two-level (L1 + L2) cache hierarchy with inclusive filtering.

use crate::access::Access;
use crate::cache::{CacheParams, CacheSim, CacheStats, Replacement};
use serde::{Deserialize, Serialize};

/// Hierarchy-level statistics.
///
/// `l1` covers every CPU reference; `l2` covers the *demand* stream only
/// (L1 misses). L1 dirty-victim writebacks are serviced by L2 but excluded
/// from the demand statistics, since the AMAT model prices demand misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 statistics over all references.
    pub l1: CacheStats,
    /// L2 statistics over the demand stream (L1 misses).
    pub l2: CacheStats,
    /// L1 dirty victims written back into L2 (not part of `l2`).
    pub l1_writebacks: u64,
}

impl HierarchyStats {
    /// L1 miss rate over all references.
    pub fn l1_miss_rate(&self) -> f64 {
        self.l1.miss_rate()
    }

    /// Local L2 miss rate (misses per L2 demand probe).
    pub fn l2_local_miss_rate(&self) -> f64 {
        self.l2.miss_rate()
    }

    /// Global L2 miss rate (main-memory accesses per CPU reference).
    pub fn l2_global_miss_rate(&self) -> f64 {
        self.l1_miss_rate() * self.l2_local_miss_rate()
    }
}

/// An L1 + L2 hierarchy.
///
/// ```
/// use nm_archsim::{TwoLevel, CacheParams, Replacement, Access};
///
/// let mut h = TwoLevel::new(
///     CacheParams::new(16 * 1024, 64, 4)?,
///     CacheParams::new(1024 * 1024, 64, 8)?,
///     Replacement::Lru,
/// );
/// for i in 0..1000u64 {
///     h.access(Access::read(i * 64));
/// }
/// assert!(h.stats().l1_miss_rate() > 0.9); // pure cold streaming
/// # Ok::<(), nm_archsim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevel {
    l1: CacheSim,
    l2: CacheSim,
    demand_l2: CacheStats,
    l1_writebacks: u64,
}

impl TwoLevel {
    /// Builds a cold hierarchy with a shared replacement policy.
    pub fn new(l1: CacheParams, l2: CacheParams, policy: Replacement) -> Self {
        TwoLevel {
            l1: CacheSim::new(l1, policy),
            l2: CacheSim::new(l2, policy),
            demand_l2: CacheStats::default(),
            l1_writebacks: 0,
        }
    }

    /// L1 parameters.
    pub fn l1_params(&self) -> CacheParams {
        self.l1.params()
    }

    /// L2 parameters.
    pub fn l2_params(&self) -> CacheParams {
        self.l2.params()
    }

    /// Issues one CPU reference through the hierarchy.
    ///
    /// Returns `(l1_hit, l2_hit)`; `l2_hit` is `None` when L1 hit and the
    /// reference never reached L2.
    pub fn access(&mut self, access: Access) -> (bool, Option<bool>) {
        let l1_out = self.l1.access(access);
        if l1_out.is_hit() {
            return (true, None);
        }
        if let crate::cache::Outcome::Miss {
            victim_writeback: true,
        } = l1_out
        {
            // The victim's address is unknown to the L1 model (tags only);
            // write back to the same set region — L2 is large enough that
            // this approximation does not disturb the demand stream.
            self.l1_writebacks += 1;
            self.l2.access(Access::write(access.addr));
        }
        let l2_out = self.l2.access(access);
        self.demand_l2.accesses += 1;
        if access.is_write() {
            self.demand_l2.writes += 1;
        }
        if !l2_out.is_hit() {
            self.demand_l2.misses += 1;
        }
        if matches!(
            l2_out,
            crate::cache::Outcome::Miss {
                victim_writeback: true
            }
        ) {
            self.demand_l2.writebacks += 1;
        }
        (false, Some(l2_out.is_hit()))
    }

    /// Runs a whole access iterator; returns references processed.
    pub fn run<I: IntoIterator<Item = Access>>(&mut self, accesses: I) -> u64 {
        let mut n = 0;
        for a in accesses {
            self.access(a);
            n += 1;
        }
        n
    }

    /// Snapshot of the hierarchy statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1.stats(),
            l2: self.demand_l2,
            l1_writebacks: self.l1_writebacks,
        }
    }

    /// Clears statistics after warm-up, keeping contents.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.demand_l2 = CacheStats::default();
        self.l1_writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy(l1: u64, l2: u64) -> TwoLevel {
        TwoLevel::new(
            CacheParams::new(l1, 64, 4).unwrap(),
            CacheParams::new(l2, 64, 8).unwrap(),
            Replacement::Lru,
        )
    }

    #[test]
    fn l1_hit_never_reaches_l2() {
        let mut h = hierarchy(16 * 1024, 256 * 1024);
        h.access(Access::read(0x40));
        let (hit, l2) = h.access(Access::read(0x40));
        assert!(hit);
        assert_eq!(l2, None);
        assert_eq!(h.stats().l2.accesses, 1); // only the initial miss
    }

    #[test]
    fn l2_catches_l1_capacity_misses() {
        let mut h = hierarchy(4 * 1024, 1024 * 1024);
        // 64 KB working set: misses L1, fits L2.
        let blocks = 64 * 1024 / 64;
        for _round in 0..4 {
            for b in 0..blocks {
                h.access(Access::read(b * 64));
            }
        }
        let s = h.stats();
        assert!(s.l1_miss_rate() > 0.5, "l1 mr = {}", s.l1_miss_rate());
        assert!(
            s.l2_local_miss_rate() < 0.35,
            "l2 local mr = {}",
            s.l2_local_miss_rate()
        );
    }

    #[test]
    fn global_rate_is_product_of_locals() {
        let mut h = hierarchy(4 * 1024, 64 * 1024);
        for i in 0..20_000u64 {
            h.access(Access::read((i * 2654435761) % (1 << 21)));
        }
        let s = h.stats();
        let expected = s.l1_miss_rate() * s.l2_local_miss_rate();
        assert!((s.l2_global_miss_rate() - expected).abs() < 1e-12);
    }

    #[test]
    fn bigger_l2_has_lower_local_miss_rate() {
        let run = |l2_size: u64| {
            let mut h = hierarchy(8 * 1024, l2_size);
            for i in 0..200_000u64 {
                // 1 MB working set with strided reuse.
                h.access(Access::read((i.wrapping_mul(0x9e3779b9)) % (1 << 20)));
            }
            h.stats().l2_local_miss_rate()
        };
        let small = run(128 * 1024);
        let big = run(1024 * 1024);
        assert!(big < small, "big {big} ≥ small {small}");
    }

    #[test]
    fn writebacks_counted_separately_from_demand() {
        let mut h = hierarchy(4 * 1024, 256 * 1024);
        // Write a large working set so L1 evicts dirty lines.
        for round in 0..3u64 {
            for b in 0..512u64 {
                h.access(Access::write(b * 64 + round));
            }
        }
        let s = h.stats();
        assert!(s.l1_writebacks > 0);
        // Demand accesses equal L1 misses exactly.
        assert_eq!(s.l2.accesses, s.l1.misses);
    }

    #[test]
    fn reset_stats_keeps_warm_contents() {
        let mut h = hierarchy(16 * 1024, 256 * 1024);
        for b in 0..64u64 {
            h.access(Access::read(b * 64));
        }
        h.reset_stats();
        for b in 0..64u64 {
            h.access(Access::read(b * 64));
        }
        assert!(h.stats().l1_miss_rate() < 0.01);
        assert_eq!(h.stats().l2.accesses, 0);
    }
}
