//! Telemetry names emitted by the architectural simulator.
//!
//! Every fixed metric name this crate records lives here as a `pub
//! const`, and each one must also appear in the workspace-root
//! `telemetry_names.txt` manifest — the D6 static-analysis rule
//! (`nmcache analyze`) checks both directions, so a typo'd literal can
//! never silently fork a time series.

/// Span: one text-trace parse.
pub const TRACE_READ: &str = "trace.read";
/// Span: one binary-trace parse.
pub const TRACE_READ_BINARY: &str = "trace.read_binary";
/// Counter: access records parsed from traces.
pub const TRACE_RECORDS: &str = "trace.records";
