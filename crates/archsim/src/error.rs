use std::error::Error;
use std::fmt;

/// Errors from cache-simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A cache parameter was not a power of two.
    NotPowerOfTwo {
        /// Which parameter.
        which: &'static str,
        /// Offending value.
        value: u64,
    },
    /// Size, block and associativity are mutually inconsistent.
    InconsistentShape {
        /// Cache size in bytes.
        size: u64,
        /// Block size in bytes.
        block: u64,
        /// Associativity.
        ways: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotPowerOfTwo { which, value } => {
                write!(f, "cache {which} must be a power of two, got {value}")
            }
            SimError::InconsistentShape { size, block, ways } => write!(
                f,
                "cache shape impossible: {size} B with {block} B blocks and {ways} ways"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_values() {
        let e = SimError::InconsistentShape {
            size: 1024,
            block: 64,
            ways: 64,
        };
        assert!(e.to_string().contains("1024"));
    }
}
