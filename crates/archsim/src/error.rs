use std::error::Error;
use std::fmt;

/// Errors from cache-simulator configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A cache parameter was not a power of two.
    NotPowerOfTwo {
        /// Which parameter.
        which: &'static str,
        /// Offending value.
        value: u64,
    },
    /// Size, block and associativity are mutually inconsistent.
    InconsistentShape {
        /// Cache size in bytes.
        size: u64,
        /// Block size in bytes.
        block: u64,
        /// Associativity.
        ways: u64,
    },
    /// A hierarchy was built with zero cache levels.
    EmptyHierarchy,
    /// A per-level miss rate was not a probability (non-finite or outside
    /// `[0, 1]`), so it must not feed AMAT delay weights.
    MissRateOutOfRange {
        /// Zero-based level index.
        level: usize,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotPowerOfTwo { which, value } => {
                write!(f, "cache {which} must be a power of two, got {value}")
            }
            SimError::InconsistentShape { size, block, ways } => write!(
                f,
                "cache shape impossible: {size} B with {block} B blocks and {ways} ways"
            ),
            SimError::EmptyHierarchy => {
                write!(f, "cache hierarchy needs at least one level")
            }
            SimError::MissRateOutOfRange { level, value } => write!(
                f,
                "level {level} miss rate is {value}: must be finite and in [0, 1]"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_values() {
        let e = SimError::InconsistentShape {
            size: 1024,
            block: 64,
            ways: 64,
        };
        assert!(e.to_string().contains("1024"));
    }

    #[test]
    fn miss_rate_error_names_the_level() {
        let e = SimError::MissRateOutOfRange {
            level: 2,
            value: f64::NAN,
        };
        let text = e.to_string();
        assert!(text.contains("level 2") && text.contains("NaN"), "{text}");
        assert!(e.to_string().contains("[0, 1]"));
        assert_eq!(SimError::EmptyHierarchy, SimError::EmptyHierarchy);
    }
}
