//! Miss-rate tables over (L1 size × L2 size) combinations — the
//! architectural statistics the paper's Section 5 optimisations consume.

use crate::cache::{CacheParams, Replacement};
use crate::error::SimError;
use crate::hierarchy::{MultiLevel, TwoLevel};
use crate::workload::{SuiteKind, Workload};
use nm_sweep::ParallelSweep;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Steady-state statistics for one (L1, L2) size combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairStats {
    /// L1 miss rate over all CPU references.
    pub l1_miss_rate: f64,
    /// Local L2 miss rate over the demand stream.
    pub l2_local_miss_rate: f64,
    /// L1 writebacks per CPU reference.
    pub l1_writeback_rate: f64,
    /// Store fraction of the CPU reference stream.
    pub write_fraction: f64,
    /// References measured (after warm-up).
    pub measured: u64,
}

impl PairStats {
    /// Global miss rate: main-memory accesses per CPU reference.
    pub fn global_miss_rate(&self) -> f64 {
        self.l1_miss_rate * self.l2_local_miss_rate
    }
}

/// Simulates one (L1, L2) pair against a workload: `warmup` references to
/// populate the hierarchy, then `measure` references of statistics.
pub fn simulate_pair(
    l1: CacheParams,
    l2: CacheParams,
    workload: &mut (dyn Workload + Send),
    warmup: u64,
    measure: u64,
) -> PairStats {
    let mut h = TwoLevel::new(l1, l2, Replacement::Lru);
    for _ in 0..warmup {
        h.access(workload.next_access());
    }
    h.reset_stats();
    for _ in 0..measure {
        h.access(workload.next_access());
    }
    let s = h.stats();
    PairStats {
        l1_miss_rate: s.l1_miss_rate(),
        l2_local_miss_rate: s.l2_local_miss_rate(),
        l1_writeback_rate: if measure == 0 {
            0.0
        } else {
            s.l1_writebacks as f64 / measure as f64
        },
        write_fraction: if s.l1.accesses == 0 {
            0.0
        } else {
            s.l1.writes as f64 / s.l1.accesses as f64
        },
        measured: measure,
    }
}

/// Steady-state statistics for one N-level size chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainStats {
    /// Local (per-demand-probe) miss rate of each level, outermost first.
    pub local_miss_rates: Vec<f64>,
    /// Store fraction of the CPU reference stream.
    pub write_fraction: f64,
    /// References measured (after warm-up).
    pub measured: u64,
}

impl ChainStats {
    /// Global miss rate: main-memory accesses per CPU reference.
    pub fn global_miss_rate(&self) -> f64 {
        self.local_miss_rates.iter().product()
    }
}

/// Simulates an N-level size chain against a workload: `warmup`
/// references to populate the hierarchy, then `measure` references of
/// statistics. The returned miss rates are validated (finite, in
/// `[0, 1]`) before they can feed AMAT delay weights.
///
/// # Errors
///
/// [`SimError::EmptyHierarchy`] for a zero-level chain;
/// [`SimError::MissRateOutOfRange`] should a measured rate fall outside
/// `[0, 1]`.
pub fn simulate_chain(
    levels: &[CacheParams],
    workload: &mut (dyn Workload + Send),
    warmup: u64,
    measure: u64,
) -> Result<ChainStats, SimError> {
    let mut h = MultiLevel::new(levels.to_vec(), Replacement::Lru)?;
    for _ in 0..warmup {
        h.access(workload.next_access());
    }
    h.reset_stats();
    for _ in 0..measure {
        h.access(workload.next_access());
    }
    let s = h.stats();
    Ok(ChainStats {
        local_miss_rates: s.try_local_miss_rates()?,
        write_fraction: if s.levels[0].accesses == 0 {
            0.0
        } else {
            s.levels[0].writes as f64 / s.levels[0].accesses as f64
        },
        measured: measure,
    })
}

/// A table of [`PairStats`] keyed by `(l1_bytes, l2_bytes)`, averaged over
/// a suite mix.
///
/// Built once per study and then queried by the optimisers; construction
/// parallelises across size pairs on the shared bounded executor
/// ([`nm_sweep::ParallelSweep`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRateTable {
    entries: BTreeMap<(u64, u64), PairStats>,
    suites: Vec<String>,
}

impl MissRateTable {
    /// Simulates every (L1, L2) size combination over every suite in
    /// `suites`, averaging the resulting rates per pair.
    ///
    /// Block size is 64 B; L1 is 4-way, L2 8-way (paper-era defaults).
    ///
    /// # Panics
    ///
    /// Panics if a size is not a legal [`CacheParams`] (power of two and
    /// large enough for its associativity), naming the offending size —
    /// table construction is static study configuration, and every size
    /// is validated before any simulation thread starts.
    pub fn build(
        l1_sizes: &[u64],
        l2_sizes: &[u64],
        suites: &[SuiteKind],
        seed: u64,
        warmup: u64,
        measure: u64,
    ) -> Self {
        // Validate the grid up front, naming the offending level and
        // size, before delegating to the fallible path.
        for &b in l1_sizes {
            if let Err(e) = CacheParams::new(b, 64, 4) {
                panic!("illegal L1 size {b} B: {e}");
            }
        }
        for &b in l2_sizes {
            if let Err(e) = CacheParams::new(b, 64, 8) {
                panic!("illegal L2 size {b} B: {e}");
            }
        }
        match Self::try_build(l1_sizes, l2_sizes, suites, seed, warmup, measure) {
            Ok(table) => table,
            Err(e) => panic!("illegal cache size in miss-rate grid: {e}"),
        }
    }

    /// Fallible [`build`](Self::build): rejects an illegal L1/L2 size
    /// with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] from validating the size grid, in L1-then-L2
    /// order.
    pub fn try_build(
        l1_sizes: &[u64],
        l2_sizes: &[u64],
        suites: &[SuiteKind],
        seed: u64,
        warmup: u64,
        measure: u64,
    ) -> Result<Self, SimError> {
        // Validate the whole grid up front so an illegal size fails fast
        // with its value, instead of surfacing as a worker-thread panic.
        let l1_params: Vec<(u64, CacheParams)> = l1_sizes
            .iter()
            .map(|&b| CacheParams::new(b, 64, 4).map(|p| (b, p)))
            .collect::<Result<_, _>>()?;
        let l2_params: Vec<(u64, CacheParams)> = l2_sizes
            .iter()
            .map(|&b| CacheParams::new(b, 64, 8).map(|p| (b, p)))
            .collect::<Result<_, _>>()?;
        let pairs: Vec<((u64, CacheParams), (u64, CacheParams))> = l1_params
            .iter()
            .flat_map(|&l1| l2_params.iter().map(move |&l2| (l1, l2)))
            .collect();

        let results = ParallelSweep::new().labeled("missrate-table").map(
            &pairs,
            |&((l1, l1p), (l2, l2p))| {
                let mut acc = PairStats {
                    l1_miss_rate: 0.0,
                    l2_local_miss_rate: 0.0,
                    l1_writeback_rate: 0.0,
                    write_fraction: 0.0,
                    measured: 0,
                };
                for &suite in suites {
                    let mut w = suite.build(seed);
                    let s = simulate_pair(l1p, l2p, w.as_mut(), warmup, measure);
                    acc.l1_miss_rate += s.l1_miss_rate;
                    acc.l2_local_miss_rate += s.l2_local_miss_rate;
                    acc.l1_writeback_rate += s.l1_writeback_rate;
                    acc.write_fraction += s.write_fraction;
                    acc.measured += s.measured;
                }
                let n = suites.len().max(1) as f64;
                acc.l1_miss_rate /= n;
                acc.l2_local_miss_rate /= n;
                acc.l1_writeback_rate /= n;
                acc.write_fraction /= n;
                ((l1, l2), acc)
            },
        );

        Ok(MissRateTable {
            entries: results.into_iter().collect(),
            suites: suites.iter().map(|s| s.name().to_owned()).collect(),
        })
    }

    /// Looks up the stats for an exact (L1, L2) byte-size pair.
    pub fn get(&self, l1_bytes: u64, l2_bytes: u64) -> Option<&PairStats> {
        self.entries.get(&(l1_bytes, l2_bytes))
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&(u64, u64), &PairStats)> {
        self.entries.iter()
    }

    /// Names of the suites averaged into this table.
    pub fn suites(&self) -> &[String] {
        &self.suites
    }

    /// Number of (L1, L2) pairs in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no pairs were simulated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SpecLoops;

    #[test]
    fn simulate_pair_reports_rates() {
        let mut w = SpecLoops::default_suite(11);
        let s = simulate_pair(
            CacheParams::new(8 * 1024, 64, 4).unwrap(),
            CacheParams::new(256 * 1024, 64, 8).unwrap(),
            &mut w,
            20_000,
            50_000,
        );
        assert!(s.l1_miss_rate > 0.0 && s.l1_miss_rate < 0.3);
        assert!(s.l2_local_miss_rate >= 0.0 && s.l2_local_miss_rate <= 1.0);
        assert_eq!(s.measured, 50_000);
        assert!((s.global_miss_rate() - s.l1_miss_rate * s.l2_local_miss_rate).abs() < 1e-15);
    }

    #[test]
    fn simulate_chain_matches_pair_for_two_levels() {
        let l1 = CacheParams::new(8 * 1024, 64, 4).unwrap();
        let l2 = CacheParams::new(256 * 1024, 64, 8).unwrap();
        let mut w = SpecLoops::default_suite(11);
        let pair = simulate_pair(l1, l2, &mut w, 20_000, 50_000);
        let mut w = SpecLoops::default_suite(11);
        let chain = simulate_chain(&[l1, l2], &mut w, 20_000, 50_000).unwrap();
        // Same workload seed, same hierarchy: bit-identical rates.
        assert_eq!(
            chain.local_miss_rates[0].to_bits(),
            pair.l1_miss_rate.to_bits()
        );
        assert_eq!(
            chain.local_miss_rates[1].to_bits(),
            pair.l2_local_miss_rate.to_bits()
        );
        assert_eq!(
            chain.write_fraction.to_bits(),
            pair.write_fraction.to_bits()
        );
        assert_eq!(chain.measured, pair.measured);
    }

    #[test]
    fn simulate_chain_three_levels() {
        let mut w = SpecLoops::default_suite(5);
        let s = simulate_chain(
            &[
                CacheParams::new(8 * 1024, 64, 4).unwrap(),
                CacheParams::new(128 * 1024, 64, 8).unwrap(),
                CacheParams::new(2 * 1024 * 1024, 64, 16).unwrap(),
            ],
            &mut w,
            20_000,
            50_000,
        )
        .unwrap();
        assert_eq!(s.local_miss_rates.len(), 3);
        for &m in &s.local_miss_rates {
            assert!((0.0..=1.0).contains(&m));
        }
        let product: f64 = s.local_miss_rates.iter().product();
        assert!((s.global_miss_rate() - product).abs() < 1e-15);
        // Empty chains are typed errors, not panics.
        let mut w = SpecLoops::default_suite(5);
        assert_eq!(
            simulate_chain(&[], &mut w, 0, 0).unwrap_err(),
            SimError::EmptyHierarchy
        );
    }

    #[test]
    fn table_covers_all_pairs() {
        let t = MissRateTable::build(
            &[4 * 1024, 16 * 1024],
            &[128 * 1024, 512 * 1024],
            &[SuiteKind::Spec2000],
            7,
            5_000,
            10_000,
        );
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert!(t.get(4 * 1024, 128 * 1024).is_some());
        assert!(t.get(4 * 1024, 999).is_none());
        assert_eq!(t.suites(), ["spec2000-like"]);
    }

    #[test]
    fn l2_miss_rate_falls_with_l2_size() {
        let t = MissRateTable::build(
            &[16 * 1024],
            &[128 * 1024, 512 * 1024, 2 * 1024 * 1024],
            &[SuiteKind::TpcC],
            13,
            100_000,
            150_000,
        );
        let m128 = t.get(16 * 1024, 128 * 1024).unwrap().l2_local_miss_rate;
        let m2m = t
            .get(16 * 1024, 2 * 1024 * 1024)
            .unwrap()
            .l2_local_miss_rate;
        assert!(m2m < m128, "2M {m2m} ≥ 128K {m128}");
    }

    #[test]
    fn l1_miss_rate_monotone_in_l1_size() {
        let t = MissRateTable::build(
            &[4 * 1024, 64 * 1024],
            &[512 * 1024],
            &[SuiteKind::Spec2000, SuiteKind::SpecWeb],
            17,
            50_000,
            80_000,
        );
        let m4 = t.get(4 * 1024, 512 * 1024).unwrap().l1_miss_rate;
        let m64 = t.get(64 * 1024, 512 * 1024).unwrap().l1_miss_rate;
        assert!(m64 <= m4, "64K {m64} > 4K {m4}");
    }

    #[test]
    #[should_panic(expected = "illegal L1 size 3000 B")]
    fn illegal_l1_size_is_named_before_any_simulation() {
        let _ = MissRateTable::build(&[3000], &[256 * 1024], &[SuiteKind::Spec2000], 1, 10, 10);
    }

    #[test]
    #[should_panic(expected = "illegal L2 size 100000 B")]
    fn illegal_l2_size_is_named_before_any_simulation() {
        let _ = MissRateTable::build(&[16 * 1024], &[100_000], &[SuiteKind::Spec2000], 1, 10, 10);
    }

    #[test]
    fn deterministic_tables() {
        let build = || {
            MissRateTable::build(
                &[8 * 1024],
                &[256 * 1024],
                &[SuiteKind::SpecWeb],
                3,
                5_000,
                10_000,
            )
        };
        assert_eq!(build(), build());
    }
}
